"""InstanceCoordinator behaviour over the timing-free MultiCluster bus:
lane leadership, round-robin unification, per-lane view-change isolation,
skip-certificate balancing, steering, and typed proposal errors."""

import pytest

from repro.consensus import NotPrimaryError, ProposalError, QuorumConfig
from repro.consensus.messages import NULL_BATCH_DIGEST
from repro.multi import InstanceCoordinator, check_unified_execution
from repro.multi.unifier import unify_commit_logs

from tests.multi.harness import MultiCluster, make_request


def live(cluster):
    return [rid for rid in cluster.ids if rid not in cluster.crashed]


# ----------------------------------------------------------------------
# leadership and proposing
# ----------------------------------------------------------------------
def test_lane_k_is_led_by_replica_k():
    cluster = MultiCluster(n=4, m=3)
    assert cluster.replicas["r0"].lanes_led() == [0]
    assert cluster.replicas["r1"].lanes_led() == [1]
    assert cluster.replicas["r2"].lanes_led() == [2]
    assert cluster.replicas["r3"].lanes_led() == []
    assert not cluster.replicas["r3"].leads_any()


def test_propose_without_leading_any_lane_raises_typed_error():
    cluster = MultiCluster(n=4, m=2)
    request = make_request("c1", 1)
    with pytest.raises(NotPrimaryError):
        cluster.replicas["r3"].propose(request.digest, request)
    # NotPrimaryError is a ProposalError, so hosts can catch the base type
    with pytest.raises(ProposalError):
        cluster.replicas["r3"].propose(request.digest, request)


def test_unified_execution_interleaves_lanes_round_robin():
    cluster = MultiCluster(n=4, m=2)
    a = make_request("c1", 1)
    b = make_request("c2", 1)
    pa = cluster.propose("r0", a)
    pb = cluster.propose("r1", b)
    assert (pa.instance, pa.sequence) == (0, 1)
    assert (pb.instance, pb.sequence) == (1, 2)
    cluster.run()
    for rid in cluster.ids:
        assert cluster.executed[rid] == [(1, a.digest), (2, b.digest)]
        coordinator = cluster.replicas[rid]
        assert coordinator.frontier == [1, 1]
        check_unified_execution(
            cluster.executed[rid], coordinator.commit_log, 2
        )


def test_execution_stalls_on_lane_hole_until_balance_fills_it():
    cluster = MultiCluster(n=4, m=2)
    b = make_request("c2", 1)
    cluster.propose("r1", b)  # lane 1 only: global slot 1 stays empty
    cluster.run()
    for rid in cluster.ids:
        assert cluster.executed[rid] == []
        assert cluster.replicas[rid].frontier == [0, 1]
    # a balance pass on lane 0's primary fills the hole with a null batch
    cluster.balance("r0")
    cluster.run()
    for rid in cluster.ids:
        assert cluster.executed[rid] == [
            (1, NULL_BATCH_DIGEST),
            (2, b.digest),
        ]


def test_balance_is_noop_for_single_instance():
    coordinator = InstanceCoordinator(
        "r0", ("r0", "r1", "r2", "r3"), QuorumConfig.for_replicas(4), 1
    )
    assert coordinator.balance_actions() == []


# ----------------------------------------------------------------------
# view changes stay per-lane
# ----------------------------------------------------------------------
def _wedge_lane1(cluster, batches=4):
    """Crash lane 1's primary and push lane 0 ahead until watchdog
    view-change timers are armed for lane 1 on every live replica."""
    cluster.crashed.add("r1")
    for i in range(batches):
        cluster.propose("r0", make_request("c1", i + 1))
    cluster.run()


def test_watchdog_arms_when_lane_falls_rounds_behind():
    cluster = MultiCluster(n=4, m=2)
    _wedge_lane1(cluster)
    # lane 1's next needed slot is lane seq 1 == global 2
    for rid in live(cluster):
        assert 2 in cluster.timers[rid]


def test_view_change_touches_only_the_wedged_lane():
    cluster = MultiCluster(n=4, m=2)
    _wedge_lane1(cluster)
    cluster.fire_all_timers(2)
    cluster.run()
    for rid in live(cluster):
        coordinator = cluster.replicas[rid]
        assert coordinator.instances[0].view == 0  # lane 0 untouched
        assert coordinator.instances[1].view == 1
        assert not coordinator.in_view_change
    # lane 1's rotation is (r1, r2, r3, r0): view 1 elects r2
    assert cluster.replicas["r2"].lanes_led() == [1]
    assert cluster.replicas["r0"].lanes_led() == [0]


def test_unification_resumes_after_lane_view_change():
    cluster = MultiCluster(n=4, m=2)
    _wedge_lane1(cluster)
    cluster.fire_all_timers(2)
    cluster.run()
    # the new lane-1 primary levels the lanes with skip certificates...
    cluster.balance("r2")
    cluster.run()
    b = make_request("c9", 1)
    cluster.propose("r2", b)
    cluster.balance("r0")  # lane 0 may now trail by one
    cluster.run()
    logs = {}
    for rid in live(cluster):
        coordinator = cluster.replicas[rid]
        executed = cluster.executed[rid]
        # the full 4 lane-0 batches plus lane 1's fillers all execute
        assert len(executed) >= 8
        assert (
            check_unified_execution(executed, coordinator.commit_log, 2)
            == len(executed)
        )
        for lane, entries in coordinator.commit_log.items():
            logs.setdefault(lane, []).extend(entries)
    # and every live replica committed identical per-lane orders
    unify_commit_logs(logs, 2)


def test_timeout_for_committed_slot_is_ignored():
    cluster = MultiCluster(n=4, m=2)
    a = make_request("c1", 1)
    cluster.propose("r0", a)
    cluster.propose("r1", make_request("c2", 1))
    cluster.run()
    for rid in cluster.ids:
        assert cluster.replicas[rid].on_view_change_timeout(1) == []
        assert cluster.replicas[rid].on_view_change_timeout(2) == []
        assert cluster.replicas[rid].instances[0].view == 0


def test_repeated_fires_during_view_change_do_not_flap():
    cluster = MultiCluster(n=4, m=2)
    _wedge_lane1(cluster)
    coordinator = cluster.replicas["r3"]
    cluster.fire_timer("r3", 2)  # starts lane 1's view change
    assert coordinator.instances[1].in_view_change
    # fires while the rescue is in flight are swallowed...
    from repro.consensus import Broadcast

    for _ in range(coordinator.ESCALATE_EVERY - 1):
        assert coordinator.on_view_change_timeout(2) == []
    # ...but the N-th consecutive fire votes again (re-broadcasting the
    # rescue), keeping liveness when the first vote round went nowhere
    actions = coordinator.on_view_change_timeout(2)
    assert any(isinstance(action, Broadcast) for action in actions)
    assert coordinator.instances[0].view == 0  # lane 0 still untouched


# ----------------------------------------------------------------------
# steering
# ----------------------------------------------------------------------
def test_steering_is_deterministic_across_replicas():
    cluster = MultiCluster(n=4, m=3)
    for sender in ("c1", "c2", "kangaroo"):
        for request_id in (1, 2, 99):
            lanes = {
                cluster.replicas[rid].steer_instance(sender, request_id)
                for rid in cluster.ids
            }
            assert len(lanes) == 1
            targets = {
                cluster.replicas[rid].forward_target(sender, request_id)
                for rid in cluster.ids
            }
            assert len(targets) == 1
            # fault-free, the forward target is the steer lane's primary
            assert targets == {f"r{lanes.pop()}"}


def test_forward_target_skips_wedged_lane_primary():
    coordinator = InstanceCoordinator(
        "r0", ("r0", "r1", "r2", "r3"), QuorumConfig.for_replicas(4), 2
    )
    sender, request_id = "c1", 0
    lane = coordinator.steer_instance(sender, request_id)
    assert coordinator.forward_target(sender, request_id) == f"r{lane}"
    coordinator.instances[lane].in_view_change = True
    # mid view change the forward goes to the *next* view's primary
    expected = coordinator.instances[lane].primary_of(1)
    assert coordinator.forward_target(sender, request_id) == expected


# ----------------------------------------------------------------------
# envelope hygiene and checkpoints
# ----------------------------------------------------------------------
def test_out_of_range_instance_is_rejected_at_the_envelope():
    cluster = MultiCluster(n=4, m=2)
    request = make_request("c1", 1)
    proposal, actions = cluster.replicas["r0"].propose(request.digest, request)
    message = proposal.message
    message.instance = 7
    target = cluster.replicas["r1"]
    assert target.handle_preprepare(message) == []
    assert target.envelope_rejects == 1
    assert target.rejected_messages >= 1


def test_advance_stable_splits_global_horizon_across_lanes():
    cluster = MultiCluster(n=4, m=2)
    for i in range(3):
        cluster.propose("r0", make_request("c1", i + 1))
        cluster.propose("r1", make_request("c2", i + 1))
    cluster.run()
    coordinator = cluster.replicas["r2"]
    assert cluster.executed["r2"] and len(cluster.executed["r2"]) == 6
    coordinator.advance_stable(6)
    # global prefix 6 = lane seqs 3 + 3
    assert coordinator.instances[0].stable_sequence == 3
    assert coordinator.instances[1].stable_sequence == 3
    assert coordinator.frontier == [3, 3]
    # a global horizon mid-round stabilises the lanes asymmetrically
    other = cluster.replicas["r3"]
    other.advance_stable(5)
    assert other.instances[0].stable_sequence == 3
    assert other.instances[1].stable_sequence == 2
