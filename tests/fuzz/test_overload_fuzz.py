"""Fuzzing the overload-protection machinery (generator + oracle)."""

from repro.core.system import ResilientDBSystem
from repro.fuzz import fuzz_campaign, run_oracle_bank
from repro.fuzz.generator import (
    _overload_knobs,
    generate_overload_scenario,
    generate_scenario,
)
from repro.fuzz.scenario import Scenario
from repro.sim.queues import QUEUE_POLICIES
from repro.sim.rng import DeterministicRNG


# ----------------------------------------------------------------------
# generator
# ----------------------------------------------------------------------
def test_overload_generator_is_deterministic():
    assert generate_overload_scenario(5, 3) == generate_overload_scenario(5, 3)
    assert generate_overload_scenario(5, 3) != generate_overload_scenario(5, 4)
    assert generate_overload_scenario(5, 3) != generate_overload_scenario(6, 3)


def test_overload_generator_always_draws_protection_knobs():
    for index in range(20):
        scenario = generate_overload_scenario(1, index)
        assert scenario.has_overload_knobs
        assert scenario.label == f"overload-{index}"
        assert scenario.num_replicas == 4
        assert scenario.num_clients >= 48
        assert scenario.queue_policy in QUEUE_POLICIES
        assert scenario.batch_queue_capacity >= 4
        # shed requests must be recoverable inside the fuzz window
        assert scenario.client_retransmit_ms is not None
        # faults stay within f=1
        assert len(scenario.faulty_replicas) <= scenario.f


def test_mixed_campaign_includes_an_overload_slice():
    drawn = [
        generate_scenario(0, index).has_overload_knobs for index in range(60)
    ]
    # ~18% of scenarios carry protection knobs; 60 draws make a miss
    # astronomically unlikely, and most runs must stay unprotected
    assert any(drawn)
    assert drawn.count(True) < len(drawn) // 2


def test_overload_knobs_never_bound_protocol_queues():
    """Lossy policies may only apply to the batch queue + admission;
    work/checkpoint/output/inbox capacities must stay unset."""
    for index in range(20):
        scenario = generate_overload_scenario(2, index)
        config = scenario.to_config()
        assert config.work_queue_capacity is None
        assert config.checkpoint_queue_capacity is None
        assert config.output_queue_capacity is None
        assert config.inbox_capacity is None
    rng = DeterministicRNG(4).fork("knobs")
    for _ in range(20):
        knobs = _overload_knobs(rng, batch_size=8)
        assert set(knobs) == {
            "queue_policy",
            "batch_queue_capacity",
            "admission_max_inflight",
            "admission_max_per_client",
            "client_retransmit_ms",
            "client_window_initial",
        }


def test_scenario_overload_knobs_round_trip_json():
    scenario = generate_overload_scenario(7, 0)
    assert Scenario.from_json(scenario.to_json()) == scenario


def test_old_artifacts_without_overload_fields_still_load():
    payload = Scenario(seed=3).to_dict()
    for key in (
        "queue_policy",
        "batch_queue_capacity",
        "admission_max_inflight",
        "admission_max_per_client",
        "client_retransmit_ms",
        "client_window_initial",
    ):
        payload.pop(key)
    loaded = Scenario.from_dict(payload)
    assert loaded.queue_policy == "block"
    assert not loaded.has_overload_knobs


# ----------------------------------------------------------------------
# oracle
# ----------------------------------------------------------------------
def _run_small(scenario):
    system = ResilientDBSystem(scenario.to_config())
    system.run()
    return system


def test_overload_oracle_flags_sequenced_shed():
    scenario = Scenario(
        seed=1, num_clients=8, client_groups=1, warmup_ms=10.0, measure_ms=20.0
    )
    system = _run_small(scenario)
    try:
        assert not run_oracle_bank(system, scenario, None)
        # tripwire: pretend r0 shed a request it had already sequenced
        system.replicas["r0"].flow.shed_sequenced.append(("client0", 1))
        violations = run_oracle_bank(system, scenario, None)
    finally:
        system.close()
    assert any(v.oracle == "overload-protection" for v in violations)


def test_overload_oracle_flags_silent_shed():
    scenario = Scenario(
        seed=2, num_clients=8, client_groups=1, warmup_ms=10.0, measure_ms=20.0
    )
    system = _run_small(scenario)
    try:
        # a shed with no NACK for a request id the client never completed
        system.replicas["r0"].flow.shed_keys.append(("client0", 10**9))
        violations = run_oracle_bank(system, scenario, None)
    finally:
        system.close()
    assert any(v.oracle == "overload-protection" for v in violations)


# ----------------------------------------------------------------------
# campaign slice
# ----------------------------------------------------------------------
def test_overload_campaign_slice_passes_oracles():
    report = fuzz_campaign(
        runs=4, master_seed=17, scenario_source=generate_overload_scenario
    )
    assert report.ok
    assert len(report.outcomes) == 4
    # the slice genuinely exercised protection on at least one run
    assert any(
        outcome.scenario.has_overload_knobs for outcome in report.outcomes
    )
