"""Analysis helpers: compare figures, compute speedups, render markdown.

Used by EXPERIMENTS.md regeneration and by users comparing their own
sweeps against the committed baselines.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bench.report import FigureResult, Series


def speedup(series: Series, baseline_x, target_x) -> float:
    """Throughput at ``target_x`` divided by throughput at ``baseline_x``."""
    by_x = dict(zip(series.xs(), series.throughputs()))
    if baseline_x not in by_x or target_x not in by_x:
        raise KeyError(
            f"series {series.name!r} lacks points at {baseline_x!r}/{target_x!r}"
        )
    baseline = by_x[baseline_x]
    if baseline <= 0:
        raise ValueError(f"baseline throughput at {baseline_x!r} is {baseline}")
    return by_x[target_x] / baseline


def crossover(first: Series, second: Series) -> Optional[object]:
    """First x where ``second`` overtakes ``first`` (None if never).

    Useful for "where does the protocol-centric system lose" questions.
    """
    for x, a, b in zip(first.xs(), first.throughputs(), second.throughputs()):
        if b > a:
            return x
    return None


def peak(series: Series) -> Tuple[object, float]:
    """(x, throughput) of the series' best point."""
    best_index = max(
        range(len(series.points)),
        key=lambda i: series.points[i].throughput_txns_per_s,
    )
    point = series.points[best_index]
    return point.x, point.throughput_txns_per_s


def degradation(series: Series) -> float:
    """Fractional drop from the series' peak to its last point (the
    over-batching / over-padding signature)."""
    _x, best = peak(series)
    last = series.points[-1].throughput_txns_per_s
    return 1.0 - last / best if best > 0 else 0.0


def to_markdown(figure: FigureResult) -> str:
    """Render a figure as a GitHub-flavoured markdown table."""
    lines = [f"### {figure.figure_id}: {figure.title}", ""]
    header = [figure.x_label] + [series.name for series in figure.series]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    xs = figure.series[0].xs() if figure.series else []
    for index, x in enumerate(xs):
        row = [str(x)]
        for series in figure.series:
            if index < len(series.points):
                point = series.points[index]
                row.append(
                    f"{point.throughput_txns_per_s / 1e3:.1f}K "
                    f"({point.latency_s * 1e3:.1f} ms)"
                )
            else:
                row.append("—")
        lines.append("| " + " | ".join(row) + " |")
    for note in figure.notes:
        lines.append(f"\n> {note}")
    return "\n".join(lines)


def compare_figures(
    ours: FigureResult, reference: FigureResult, tolerance: float = 0.25
) -> List[str]:
    """Report relative throughput deviations beyond ``tolerance`` between
    two runs of the same figure (regression checking across calibrations).
    """
    problems: List[str] = []
    for series in ours.series:
        try:
            ref_series = reference.get(series.name)
        except KeyError:
            problems.append(f"series {series.name!r} missing from reference")
            continue
        for point, ref_point in zip(series.points, ref_series.points):
            if ref_point.throughput_txns_per_s <= 0:
                continue
            ratio = point.throughput_txns_per_s / ref_point.throughput_txns_per_s
            if not (1 - tolerance) <= ratio <= (1 + tolerance):
                problems.append(
                    f"{series.name} @ {point.x}: {ratio:.2f}x reference"
                )
    return problems
