"""Signature schemes with broadcast-aware cost accounting.

A crucial asymmetry drives the paper's crypto lesson (§3, §5.6):

* A **digital signature** (ED25519, RSA) is computed once and every receiver
  can verify the same token — broadcast sign cost is O(1) — and it provides
  non-repudiation.
* A **MAC** (CMAC-AES) must be computed per receiver under the pairwise key
  — broadcast sign cost is O(n) — but each token is ~50–3000× cheaper, so
  for the n ≤ 32 deployments studied, MACs win decisively wherever
  non-repudiation is not needed (no replica forwards another replica's
  messages in PBFT, so it is not needed between replicas).

:meth:`SignatureScheme.authenticate` returns the real token(s) plus the
simulated cost; :meth:`SignatureScheme.check` verifies for real and returns
the simulated verification cost.
"""

from __future__ import annotations

import enum
import hmac
import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.crypto.costs import CryptoCosts, DEFAULT_COSTS
from repro.crypto.keys import KeyStore


class SchemeName(str, enum.Enum):
    """The four signing configurations of the paper's Fig. 13."""

    NULL = "none"
    ED25519 = "ed25519"
    RSA = "rsa"
    CMAC_AES = "cmac-aes"


@dataclass(frozen=True)
class AuthToken:
    """Authentication material attached to a message.

    ``tokens`` maps receiver identity to its MAC token; the special key
    ``None`` holds a universal digital-signature token valid for every
    receiver.
    """

    scheme: SchemeName
    signer: str
    tokens: Dict[Optional[str], bytes]

    def for_receiver(self, receiver: str) -> Optional[bytes]:
        if None in self.tokens:
            return self.tokens[None]
        return self.tokens.get(receiver)


class SignatureScheme:
    """Base class; concrete schemes fill in costs and token derivation."""

    name: SchemeName = SchemeName.NULL
    token_size_bytes: int = 0
    #: Whether a third party can verify a token it did not receive directly
    #: (digital signatures: yes; MACs: no).  PBFT view-change and Zyzzyva
    #: commit certificates need this from *client* messages only.
    non_repudiation: bool = False

    def __init__(self, keystore: KeyStore, costs: CryptoCosts = DEFAULT_COSTS):
        self.keystore = keystore
        self.costs = costs

    # -- cost model ----------------------------------------------------
    def sign_cost(self, size_bytes: int, receivers: int = 1) -> int:
        """Simulated ns to authenticate one message for ``receivers``."""
        raise NotImplementedError

    def verify_cost(self, size_bytes: int) -> int:
        """Simulated ns for one receiver to verify."""
        raise NotImplementedError

    # -- real tokens ---------------------------------------------------
    def authenticate(
        self, data: bytes, signer: str, receivers: Iterable[str]
    ) -> Tuple[AuthToken, int]:
        """Produce tokens for ``data`` from ``signer`` to ``receivers``.

        Returns ``(token, simulated_cost_ns)``.
        """
        raise NotImplementedError

    def check(
        self, data: bytes, token: Optional[AuthToken], signer: str, receiver: str
    ) -> Tuple[bool, int]:
        """Verify ``token`` on ``data``; returns ``(valid, cost_ns)``."""
        raise NotImplementedError


class NullScheme(SignatureScheme):
    """No authentication at all — the paper's upper-bound configuration.

    Attains the highest throughput but "does not fulfill the minimal
    requirements of a permissioned blockchain system" (§5.6).
    """

    name = SchemeName.NULL
    token_size_bytes = 0

    def sign_cost(self, size_bytes: int, receivers: int = 1) -> int:
        return 0

    def verify_cost(self, size_bytes: int) -> int:
        return 0

    def authenticate(self, data, signer, receivers):
        return AuthToken(self.name, signer, {}), 0

    def check(self, data, token, signer, receiver):
        return True, 0


class _DigitalSignatureScheme(SignatureScheme):
    """Shared machinery for the (simulated-cost) digital-signature schemes.

    The token is a real HMAC under the signer's private seed, so forged or
    tampered messages fail verification in tests; the asymmetric-crypto
    *time* comes from the cost table.
    """

    non_repudiation = True
    _sign_ns: int = 0
    _verify_ns: int = 0

    def sign_cost(self, size_bytes: int, receivers: int = 1) -> int:
        # one signature serves every receiver; hashing the payload to the
        # signing digest is charged per byte
        return self._sign_ns + self.costs.sha256_ns(size_bytes)

    def verify_cost(self, size_bytes: int) -> int:
        return self._verify_ns + self.costs.sha256_ns(size_bytes)

    def authenticate(self, data, signer, receivers):
        seed = self.keystore.signing_seed(signer)
        token = hmac.new(seed, data, hashlib.sha256).digest()
        return (
            AuthToken(self.name, signer, {None: token}),
            self.sign_cost(len(data), receivers=1),
        )

    def check(self, data, token, signer, receiver):
        cost = self.verify_cost(len(data))
        if token is None or token.signer != signer:
            return False, cost
        expected = hmac.new(
            self.keystore.signing_seed(signer), data, hashlib.sha256
        ).digest()
        supplied = token.for_receiver(receiver)
        return (supplied is not None and hmac.compare_digest(expected, supplied)), cost


class Ed25519Scheme(_DigitalSignatureScheme):
    """ED25519 digital signatures — the paper's client-side default."""

    name = SchemeName.ED25519
    token_size_bytes = 64

    def __init__(self, keystore, costs=DEFAULT_COSTS):
        super().__init__(keystore, costs)
        self._sign_ns = costs.ed25519_sign_ns
        self._verify_ns = costs.ed25519_verify_ns


class RsaScheme(_DigitalSignatureScheme):
    """RSA-2048 digital signatures — dramatically slower to sign."""

    name = SchemeName.RSA
    token_size_bytes = 256

    def __init__(self, keystore, costs=DEFAULT_COSTS):
        super().__init__(keystore, costs)
        self._sign_ns = costs.rsa_sign_ns
        self._verify_ns = costs.rsa_verify_ns


class CmacAesScheme(SignatureScheme):
    """CMAC+AES pairwise MACs — the paper's replica-to-replica default.

    Broadcast requires one MAC per receiver (cost O(n)) but each MAC is
    cheap; no non-repudiation."""

    name = SchemeName.CMAC_AES
    token_size_bytes = 16
    non_repudiation = False

    def sign_cost(self, size_bytes: int, receivers: int = 1) -> int:
        return self.costs.cmac_ns(size_bytes) * max(1, receivers)

    def verify_cost(self, size_bytes: int) -> int:
        return self.costs.cmac_ns(size_bytes)

    def authenticate(self, data, signer, receivers):
        receivers = list(receivers)
        tokens: Dict[Optional[str], bytes] = {}
        for receiver in receivers:
            key = self.keystore.pair_key(signer, receiver)
            tokens[receiver] = hmac.new(key, data, hashlib.sha256).digest()[:16]
        return (
            AuthToken(self.name, signer, tokens),
            self.sign_cost(len(data), receivers=len(receivers)),
        )

    def check(self, data, token, signer, receiver):
        cost = self.verify_cost(len(data))
        if token is None or token.signer != signer:
            return False, cost
        supplied = token.for_receiver(receiver)
        if supplied is None:
            return False, cost
        key = self.keystore.pair_key(signer, receiver)
        expected = hmac.new(key, data, hashlib.sha256).digest()[:16]
        return hmac.compare_digest(expected, supplied), cost


_SCHEMES = {
    SchemeName.NULL: NullScheme,
    SchemeName.ED25519: Ed25519Scheme,
    SchemeName.RSA: RsaScheme,
    SchemeName.CMAC_AES: CmacAesScheme,
}


def make_scheme(
    name: SchemeName, keystore: KeyStore, costs: CryptoCosts = DEFAULT_COSTS
) -> SignatureScheme:
    """Factory for the scheme named ``name``."""
    try:
        return _SCHEMES[SchemeName(name)](keystore, costs)
    except KeyError:
        raise ValueError(f"unknown signature scheme {name!r}") from None
