"""Tests for Resource semaphores and the CPU scheduler."""

import pytest

from repro.sim import CpuScheduler, Resource, Simulator, Timeout, micros


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_serialises_holders():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    grants = []

    def holder(name, hold):
        yield resource.acquire()
        grants.append((sim.now, name))
        yield Timeout(hold)
        resource.release()

    sim.spawn(holder("a", 100))
    sim.spawn(holder("b", 100))
    sim.run()
    assert grants == [(0, "a"), (100, "b")]


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        resource.release()


def test_cpu_single_core_serialises_work():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    done = []

    def worker(name):
        yield cpu.run(micros(100), name)
        done.append((sim.now, name))

    sim.spawn(worker("t1"))
    sim.spawn(worker("t2"))
    sim.run()
    assert done == [(micros(100), "t1"), (micros(200), "t2")]


def test_cpu_two_cores_run_in_parallel():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=2)
    done = []

    def worker(name):
        yield cpu.run(micros(100), name)
        done.append((sim.now, name))

    sim.spawn(worker("t1"))
    sim.spawn(worker("t2"))
    sim.run()
    assert done == [(micros(100), "t1"), (micros(100), "t2")]


def test_cpu_zero_cost_work_is_free():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    done = []

    def worker():
        yield cpu.run(0, "t")
        done.append(sim.now)

    sim.spawn(worker())
    sim.run()
    assert done == [0]
    assert cpu.busy_ns.get("t", 0) == 0


def test_cpu_negative_cost_rejected():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)
    with pytest.raises(ValueError):
        cpu.run(-5, "t")


def test_saturation_accounting():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=2)

    def busy_thread():
        # 50% duty cycle for 1ms
        for _ in range(5):
            yield cpu.run(micros(100), "busy")
            yield Timeout(micros(100))

    sim.spawn(busy_thread())
    sim.run()
    assert cpu.saturation("busy") == pytest.approx(0.5, abs=0.01)
    assert cpu.saturation("never-ran") == 0.0


def test_saturation_window_reset():
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=1)

    def worker():
        yield cpu.run(micros(500), "t")  # warmup burst
        cpu.reset_window()
        for _ in range(4):
            yield cpu.run(micros(25), "t")
            yield Timeout(micros(75))

    sim.spawn(worker())
    sim.run()
    # post-reset: 100µs busy over 400µs window
    assert cpu.saturation("t") == pytest.approx(0.25, abs=0.01)


def test_work_conserving_fifo_backlog():
    """With more threads than cores, total completion time equals total
    work divided by core count (no idle cores while work waits)."""
    sim = Simulator()
    cpu = CpuScheduler(sim, cores=2)
    completions = []

    def worker(name):
        yield cpu.run(micros(100), name)
        completions.append(sim.now)

    for i in range(6):
        sim.spawn(worker(f"t{i}"))
    sim.run()
    assert max(completions) == micros(300)  # 600µs of work on 2 cores
