"""A timing-free cluster harness for driving consensus state machines.

Delivers protocol messages between engine instances directly (no
simulator), with hooks for dropping, reordering, crashing and byzantine
mutation — the unit-level counterpart of the full-system simulation.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.consensus import (
    Broadcast,
    CancelViewChangeTimer,
    ClientRequest,
    PbftReplica,
    QuorumConfig,
    SendTo,
    StartViewChangeTimer,
    ZyzzyvaReplica,
)
from repro.consensus.base import EnterView, ExecuteReady
from repro.crypto import digest_bytes
from repro.workloads import Operation, OpType, Transaction


def make_request(client_id: str, request_id: int, txn_count: int = 1) -> ClientRequest:
    txns = tuple(
        Transaction(
            client_id=client_id,
            ops=(Operation(OpType.WRITE, f"key{request_id}-{i}", "value"),),
        )
        for i in range(txn_count)
    )
    request = ClientRequest(client_id, request_id, txns)
    request.digest = digest_bytes(request.batch_bytes())
    return request


class Cluster:
    """N engines plus an in-memory message bus."""

    def __init__(self, n: int = 4, protocol: str = "pbft"):
        from repro.consensus.poe import PoeReplica

        self.quorum = QuorumConfig.for_replicas(n)
        self.ids: Tuple[str, ...] = tuple(f"r{i}" for i in range(n))
        engine_cls = {
            "pbft": PbftReplica,
            "zyzzyva": ZyzzyvaReplica,
            "poe": PoeReplica,
        }[protocol]
        self.replicas: Dict[str, object] = {
            rid: engine_cls(rid, self.ids, self.quorum) for rid in self.ids
        }
        #: pending (src, dst, message) deliveries
        self.wire: deque = deque()
        #: committed-but-maybe-out-of-order ExecuteReady per replica
        self._ready: Dict[str, Dict[int, ExecuteReady]] = {rid: {} for rid in self.ids}
        self._next_exec: Dict[str, int] = {rid: 1 for rid in self.ids}
        #: ordered executed log per replica: [(sequence, digest)]
        self.executed: Dict[str, List[Tuple[int, str]]] = {rid: [] for rid in self.ids}
        #: armed view-change timers per replica
        self.timers: Dict[str, Set[int]] = {rid: set() for rid in self.ids}
        self.client_messages: List[Tuple[str, str, object]] = []
        self.crashed: Set[str] = set()
        #: optional mutation hook: fn(src, dst, message) -> message or None
        self.tamper: Optional[Callable] = None

    # ------------------------------------------------------------------
    def primary_id(self) -> str:
        any_replica = self.replicas[self.ids[0]]
        return any_replica.primary_of(any_replica.view)

    def propose(self, request: ClientRequest, sequence: Optional[int] = None):
        """Feed a request to the current primary."""
        primary = self.replicas[self.primary_id()]
        if isinstance(primary, PbftReplica):
            if sequence is None:
                sequence = max(primary.slots, default=0) + 1
            _msg, actions = primary.make_preprepare(
                sequence, request.digest, request
            )
        elif isinstance(primary, ZyzzyvaReplica):
            _msg, actions = primary.make_order_request(request.digest, request)
        else:
            _msg, actions = primary.make_propose(request.digest, request)
        self._apply(primary.replica_id, actions)
        return sequence

    # ------------------------------------------------------------------
    def _apply(self, rid: str, actions) -> None:
        for action in actions:
            if isinstance(action, Broadcast):
                for dst in self.ids:
                    if dst != rid:
                        self.wire.append((rid, dst, action.message))
            elif isinstance(action, SendTo):
                if action.dst in self.replicas:
                    self.wire.append((rid, action.dst, action.message))
                else:
                    self.client_messages.append((rid, action.dst, action.message))
            elif isinstance(action, ExecuteReady):
                self._ready[rid][action.sequence] = action
                self._drain_executions(rid)
            elif isinstance(action, StartViewChangeTimer):
                self.timers[rid].add(action.sequence)
            elif isinstance(action, CancelViewChangeTimer):
                self.timers[rid].discard(action.sequence)
            elif isinstance(action, EnterView):
                pass
            else:  # pragma: no cover - future action types
                raise AssertionError(f"unhandled action {action!r}")

    def _drain_executions(self, rid: str) -> None:
        """The harness's stand-in for the ordered execution layer."""
        ready = self._ready[rid]
        while self._next_exec[rid] in ready:
            action = ready.pop(self._next_exec[rid])
            self.executed[rid].append((action.sequence, action.request.digest))
            self._next_exec[rid] += 1

    # ------------------------------------------------------------------
    def deliver_one(self) -> bool:
        if not self.wire:
            return False
        src, dst, message = self.wire.popleft()
        if src in self.crashed or dst in self.crashed:
            return True
        if self.tamper is not None:
            message = self.tamper(src, dst, message)
            if message is None:
                return True
        replica = self.replicas[dst]
        handler = {
            "pre-prepare": "handle_preprepare",
            "prepare": "handle_prepare",
            "commit": "handle_commit",
            "view-change": "handle_view_change",
            "new-view": "handle_new_view",
            "order-request": "handle_order_request",
            "commit-certificate": "handle_commit_certificate",
            "poe-propose": "handle_propose",
            "poe-support": "handle_support",
        }[message.kind]
        actions = getattr(replica, handler)(message)
        self._apply(dst, actions)
        return True

    def run(self, max_steps: int = 100_000) -> None:
        steps = 0
        while self.deliver_one():
            steps += 1
            if steps > max_steps:
                raise AssertionError("message storm: cluster did not quiesce")

    def fire_timer(self, rid: str, sequence: int) -> None:
        self.timers[rid].discard(sequence)
        self._apply(rid, self.replicas[rid].on_view_change_timeout(sequence))

    def shuffle_wire(self, rng) -> None:
        items = list(self.wire)
        rng.shuffle(items)
        self.wire = deque(items)
