"""Buffer pools for message and transaction objects.

§4.8: "to avoid such frequent allocations and de-allocations, we adopt the
standard practice of maintaining a set of buffer pools … instead of doing a
malloc, these objects are extracted from their respective pools and are
placed back in the pool during the free operation."

In Python there is no malloc to save, so the pool's effect is expressed in
the cost model: acquiring a pooled object charges ``pooled_acquire_ns``,
while a pool miss (or a disabled pool) charges ``alloc_ns`` — calibrated to
a jemalloc-class allocation plus constructor work.  The pool itself is a
real free-list with hit/miss statistics so the ablation bench
(``test_ablation_bufferpool``) can report both cost and behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, List


class BufferPool:
    """A fixed-size free-list of reusable objects."""

    #: modelled cost of taking an object off the free-list
    pooled_acquire_ns: int = 40
    #: modelled cost of a fresh allocation (pool miss / pool disabled)
    alloc_ns: int = 600

    #: objects pre-created at initialisation; beyond this the pool warms
    #: up from released objects (bounds host memory for huge capacities)
    PREFILL_LIMIT = 10_000

    def __init__(
        self,
        factory: Callable[[], Any],
        capacity: int,
        enabled: bool = True,
    ):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.factory = factory
        self.capacity = capacity
        self.enabled = enabled
        prefill = min(capacity, self.PREFILL_LIMIT) if enabled else 0
        self._free: List[Any] = [factory() for _ in range(prefill)]
        self.hits = 0
        self.misses = 0
        self.returned = 0

    def acquire(self):
        """Take an object; returns ``(obj, cost_ns)``."""
        if self.enabled and self._free:
            self.hits += 1
            return self._free.pop(), self.pooled_acquire_ns
        self.misses += 1
        return self.factory(), self.alloc_ns

    def release(self, obj: Any) -> None:
        """Return an object to the pool (dropped if the pool is full)."""
        self.returned += 1
        if self.enabled and len(self._free) < self.capacity:
            self._free.append(obj)

    def acquire_bulk(self, count: int) -> int:
        """Take ``count`` objects at once; returns the total modelled cost.

        Used for per-transaction objects, where a batch needs hundreds of
        acquisitions and the caller only cares about the aggregate cost.
        """
        if count <= 0:
            return 0
        if not self.enabled:
            self.misses += count
            return count * self.alloc_ns
        hits = min(count, len(self._free))
        if hits:
            del self._free[len(self._free) - hits:]
        misses = count - hits
        self.hits += hits
        self.misses += misses
        return hits * self.pooled_acquire_ns + misses * self.alloc_ns

    def release_bulk(self, count: int) -> None:
        """Return ``count`` objects (e.g. after a batch executes)."""
        if count <= 0:
            return
        self.returned += count
        if self.enabled:
            space = self.capacity - len(self._free)
            if space > 0:
                self._free.extend(self.factory() for _ in range(min(space, count)))

    @property
    def available(self) -> int:
        return len(self._free)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
