"""Additional PBFT edge cases: message races the pipeline can produce."""

import pytest

from repro.consensus import PbftReplica, QuorumConfig
from repro.consensus.base import Broadcast, ExecuteReady
from repro.consensus.messages import Commit, Prepare, PrePrepare

from tests.consensus.harness import make_request


def build(rid="r1", n=4):
    quorum = QuorumConfig.for_replicas(n)
    ids = tuple(f"r{i}" for i in range(n))
    return PbftReplica(rid, ids, quorum)


def test_votes_before_preprepare_still_commit():
    """§4.3's race: a replica can receive Prepare and even Commit messages
    for a sequence before the primary's Pre-prepare reaches it."""
    replica = build()
    request = make_request("c", 1)
    replica.handle_prepare(Prepare("r2", 0, 1, request.digest))
    replica.handle_prepare(Prepare("r3", 0, 1, request.digest))
    replica.handle_commit(Commit("r2", 0, 1, request.digest))
    replica.handle_commit(Commit("r3", 0, 1, request.digest))
    assert not replica.slots[1].committed  # no pre-prepare yet
    actions = replica.handle_preprepare(
        PrePrepare("r0", 0, 1, request.digest, request)
    )
    # catching up: prepare broadcast, commit broadcast, and execution all
    # cascade from the one delayed pre-prepare
    kinds = [type(action).__name__ for action in actions]
    assert "ExecuteReady" in kinds
    assert replica.slots[1].committed


def test_commit_before_prepared_counts_later():
    replica = build()
    request = make_request("c", 1)
    replica.handle_preprepare(PrePrepare("r0", 0, 1, request.digest, request))
    # commits from two peers arrive before any prepares
    replica.handle_commit(Commit("r2", 0, 1, request.digest))
    replica.handle_commit(Commit("r3", 0, 1, request.digest))
    assert not replica.slots[1].committed
    # one prepare completes the prepare quorum -> own commit -> 2f+1 total
    actions = replica.handle_prepare(Prepare("r2", 0, 1, request.digest))
    assert any(isinstance(action, ExecuteReady) for action in actions)


def test_execute_emitted_exactly_once():
    replica = build()
    request = make_request("c", 1)
    replica.handle_preprepare(PrePrepare("r0", 0, 1, request.digest, request))
    replica.handle_prepare(Prepare("r2", 0, 1, request.digest))
    replica.handle_commit(Commit("r2", 0, 1, request.digest))
    first = replica.handle_commit(Commit("r0", 0, 1, request.digest))
    assert any(isinstance(action, ExecuteReady) for action in first)
    # further commits change nothing
    again = replica.handle_commit(Commit("r3", 0, 1, request.digest))
    assert not any(isinstance(action, ExecuteReady) for action in again)


def test_primary_cannot_propose_same_sequence_twice():
    primary = build("r0")
    request = make_request("c", 1)
    primary.make_preprepare(1, request.digest, request)
    with pytest.raises(RuntimeError):
        primary.make_preprepare(1, request.digest, request)


def test_primary_cannot_propose_during_view_change():
    primary = build("r0")
    primary.in_view_change = True
    with pytest.raises(RuntimeError):
        primary.make_preprepare(1, "d", make_request("c", 1))


def test_backup_cannot_propose():
    backup = build("r2")
    with pytest.raises(RuntimeError):
        backup.make_preprepare(1, "d", make_request("c", 1))


def test_commit_proof_capped_at_quorum_size():
    replica = build(n=7)
    request = make_request("c", 1)
    replica.handle_preprepare(PrePrepare("r0", 0, 1, request.digest, request))
    for peer in ("r2", "r3", "r4", "r5"):
        replica.handle_prepare(Prepare(peer, 0, 1, request.digest))
    execute = None
    for peer in ("r2", "r3", "r4", "r5", "r6", "r0"):
        for action in replica.handle_commit(Commit(peer, 0, 1, request.digest)):
            if isinstance(action, ExecuteReady):
                execute = action
    assert execute is not None
    assert len(execute.commit_proof) == replica.quorum.commit_quorum


def test_suspect_primary_idempotent_during_view_change():
    replica = build()
    first = replica.suspect_primary()
    assert any(isinstance(action, Broadcast) for action in first)
    assert replica.in_view_change
    assert replica.suspect_primary() == []


def test_rejoining_via_f_plus_1_votes_uses_highest_view():
    from repro.consensus.messages import ViewChange

    replica = build(n=4)
    # f+1 = 2 peers vote for view 3 straight away
    replica.handle_view_change(ViewChange("r2", 3, 0, ()))
    replica.handle_view_change(ViewChange("r3", 3, 0, ()))
    assert replica.in_view_change
    votes = replica._view_change_votes[3]
    assert replica.replica_id in votes  # joined the later view directly
