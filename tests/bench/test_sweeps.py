"""Tests for generic parameter sweeps."""

import pytest

from repro.bench.runner import base_config
from repro.bench.sweeps import grid, sweep
from repro.sim.clock import millis


@pytest.fixture
def tiny():
    return base_config(
        num_replicas=4,
        num_clients=48,
        client_groups=4,
        batch_size=6,
        ycsb_records=300,
        warmup=millis(30),
        measure=millis(60),
    )


def test_sweep_produces_one_point_per_value(tiny):
    series = sweep("batch_size", [4, 8], base=tiny)
    assert series.xs() == [4, 8]
    assert all(point.throughput_txns_per_s > 0 for point in series.points)
    assert "messages" in series.points[0].extra


def test_sweep_unknown_parameter_rejected(tiny):
    with pytest.raises(AttributeError):
        sweep("warp_factor", [1, 2], base=tiny)


def test_sweep_custom_name(tiny):
    series = sweep("num_clients", [32], base=tiny, name="clients")
    assert series.name == "clients"


def test_grid_cartesian_product(tiny):
    configs = grid({"batch_size": [4, 8], "num_replicas": [4, 7]}, base=tiny)
    assert len(configs) == 4
    combos = {(config.batch_size, config.num_replicas) for config in configs}
    assert combos == {(4, 4), (4, 7), (8, 4), (8, 7)}


def test_grid_unknown_parameter_rejected(tiny):
    with pytest.raises(AttributeError):
        grid({"nope": [1]}, base=tiny)
