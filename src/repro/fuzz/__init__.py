"""Deterministic scenario fuzzing for the consensus engines (ISSUE 2).

The paper's robustness story (Fig. 17) rests on the engines staying safe
across the cross-product of faults, byzantine behaviours and config
knobs — far more scenarios than hand-written tests enumerate.  Because a
run here is fully determined by its ``(config, seed)`` pair, randomized
testing comes with perfect reproducibility: this package generates
randomized deployments (:mod:`~repro.fuzz.generator`), runs each one
(:mod:`~repro.fuzz.runner`), judges it against a bank of safety and
liveness oracles (:mod:`~repro.fuzz.oracles`), and on violation emits a
self-contained JSON repro (:mod:`~repro.fuzz.corpus`) shrunk to a minimal
fault plan by delta debugging (:mod:`~repro.fuzz.shrinker`).

CLI: ``python -m repro fuzz --runs 50 --seed 0 --shrink``; see
``docs/TESTING.md`` for the replay workflow.
"""

from repro.fuzz.corpus import load_scenario, save_artifact
from repro.fuzz.generator import generate_overload_scenario, generate_scenario
from repro.fuzz.oracles import Violation, check_client_replies, run_oracle_bank
from repro.fuzz.runner import (
    BUG_REGISTRY,
    CampaignReport,
    RunOutcome,
    apply_events,
    fuzz_campaign,
    run_scenario,
)
from repro.fuzz.scenario import FaultEvent, Scenario
from repro.fuzz.shrinker import ShrinkResult, shrink_scenario

__all__ = [
    "BUG_REGISTRY",
    "CampaignReport",
    "FaultEvent",
    "RunOutcome",
    "Scenario",
    "ShrinkResult",
    "Violation",
    "apply_events",
    "check_client_replies",
    "fuzz_campaign",
    "generate_overload_scenario",
    "generate_scenario",
    "load_scenario",
    "run_oracle_bank",
    "run_scenario",
    "save_artifact",
    "shrink_scenario",
]
