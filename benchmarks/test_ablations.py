"""Ablations of ResilientDB's individual design choices (§4).

The paper motivates each mechanism qualitatively; these benches measure
each one in isolation on the standard 16-replica setup:

- §4.5 out-of-order consensus vs one-consensus-at-a-time;
- §4.8 buffer pools vs malloc/free per object;
- §4.3 one digest per batch vs a digest per request;
- §4.6 commit-certificate blocks vs hash-the-previous-block chaining.
"""

from repro.bench.report import FigureResult, Series, SeriesPoint
from repro.bench.runner import base_config, run_config
from repro.storage.blockchain import CertificationMode


def _pair_figure(figure_id, title, label_a, result_a, label_b, result_b):
    series = Series("PBFT 2B 1E")
    for label, result in ((label_a, result_a), (label_b, result_b)):
        series.points.append(
            SeriesPoint(
                x=label,
                throughput_txns_per_s=result.throughput_txns_per_s,
                latency_s=result.latency_mean_s,
            )
        )
    return FigureResult(figure_id, title, "variant", [series])


def test_ablation_out_of_order(benchmark, record_figure):
    """§4.5: parallel consensus instances vs strict one-at-a-time.

    Paper: out-of-order processing buys ~60% more throughput.
    """

    def run():
        # a modest batch keeps the serialised variant's round-trips visible
        config = base_config(batch_size=50, num_clients=4_000)
        parallel = run_config(config)
        serialised = run_config(config.with_options(out_of_order=False))
        return _pair_figure(
            "ablation-ooo", "out-of-order consensus (§4.5)",
            "out-of-order", parallel, "serialised", serialised,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(figure)
    ooo, serial = figure.series[0].points
    assert ooo.throughput_txns_per_s > 1.4 * serial.throughput_txns_per_s
    figure.note(
        f"out-of-order gain: "
        f"{(ooo.throughput_txns_per_s / serial.throughput_txns_per_s - 1) * 100:.0f}% "
        f"(paper: ~60%)"
    )


def test_ablation_buffer_pool(benchmark, record_figure):
    """§4.8: recycled object pools vs allocation per message/transaction."""

    def run():
        config = base_config()
        pooled = run_config(config)
        malloc = run_config(config.with_options(buffer_pool=False))
        return _pair_figure(
            "ablation-bufferpool", "buffer pools (§4.8)",
            "pooled", pooled, "malloc/free", malloc,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(figure)
    pooled, malloc = figure.series[0].points
    assert pooled.throughput_txns_per_s >= malloc.throughput_txns_per_s


def test_ablation_per_batch_digest(benchmark, record_figure):
    """§4.3: hash the batch string once vs hashing every request."""

    def run():
        config = base_config()
        batched = run_config(config)
        per_request = run_config(config.with_options(per_request_digests=True))
        return _pair_figure(
            "ablation-digest", "per-batch digest (§4.3)",
            "per-batch", batched, "per-request", per_request,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(figure)
    batched, per_request = figure.series[0].points
    assert batched.throughput_txns_per_s >= per_request.throughput_txns_per_s


def test_ablation_block_certification(benchmark, record_figure):
    """§4.6: commit-certificate blocks vs hashing the previous block."""

    def run():
        config = base_config()
        certificate = run_config(config)
        prev_hash = run_config(
            config.with_options(certification=CertificationMode.PREV_HASH)
        )
        return _pair_figure(
            "ablation-certification", "block certification (§4.6)",
            "commit-certificate", certificate, "prev-hash", prev_hash,
        )

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure(figure)
    certificate, prev_hash = figure.series[0].points
    # hashing the previous block burdens the execute-thread; with the
    # execute stage unsaturated the effect is small but never positive
    assert certificate.throughput_txns_per_s >= 0.98 * prev_hash.throughput_txns_per_s
