"""Fault injection: crashes, message drops, partitions.

The replica-failure experiment (Fig. 17) crashes one or five backup
replicas and observes that PBFT's throughput barely moves while Zyzzyva's
collapses (its clients wait for responses from *all* n replicas).  The
fault plan supports that experiment plus the adversarial scenarios the
test suite uses (drops, partitions, scheduled crashes).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.sim.rng import DeterministicRNG


class FaultPlan:
    """Mutable description of which endpoints/links are currently faulty."""

    def __init__(self, rng: Optional[DeterministicRNG] = None):
        self._crashed: Set[str] = set()
        self._crash_at: Dict[str, int] = {}
        self._recover_at: Dict[str, int] = {}
        self._drop_probability: Dict[Tuple[str, str], float] = {}
        self._drop_until: Dict[Tuple[str, str], int] = {}
        self._partitions: Set[frozenset] = set()
        self._rng = rng or DeterministicRNG(0)

    # ------------------------------------------------------------------
    # crashes
    # ------------------------------------------------------------------
    def crash(self, node: str) -> None:
        """Crash ``node`` immediately: it stops sending and receiving."""
        self._crashed.add(node)

    def crash_at(self, node: str, when_ns: int) -> None:
        """Schedule ``node`` to be considered crashed from ``when_ns`` on."""
        self._crash_at[node] = when_ns

    def recover(self, node: str) -> None:
        self._crashed.discard(node)
        self._crash_at.pop(node, None)
        self._recover_at.pop(node, None)

    def recover_at(self, node: str, when_ns: int) -> None:
        """Declare the crash heals (at the delivery level) from
        ``when_ns`` on — crash-for-a-duration without runner bookkeeping.
        State-transfer recovery remains a host decision
        (:meth:`repro.core.system.ResilientDBSystem.recover_replica`)."""
        self._recover_at[node] = when_ns

    def is_crashed(self, node: str, now: int) -> bool:
        healed_at = self._recover_at.get(node)
        if healed_at is not None and now >= healed_at:
            return False
        if node in self._crashed:
            return True
        when = self._crash_at.get(node)
        return when is not None and now >= when

    def crashed_nodes(self, now: int) -> Set[str]:
        late = {node for node, when in self._crash_at.items() if now >= when}
        return {
            node
            for node in (self._crashed | late)
            if self.is_crashed(node, now)
        }

    # ------------------------------------------------------------------
    # link faults
    # ------------------------------------------------------------------
    def drop_link(self, src: str, dst: str, probability: float = 1.0) -> None:
        """Drop messages src→dst with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self._drop_probability[(src, dst)] = probability

    def heal_link(self, src: str, dst: str) -> None:
        self._drop_probability.pop((src, dst), None)
        self._drop_until.pop((src, dst), None)

    def heal_link_at(self, src: str, dst: str, when_ns: int) -> None:
        """Declare a lossy link healthy again from ``when_ns`` on —
        partition-for-a-duration without a scheduled callback."""
        self._drop_until[(src, dst)] = when_ns

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Sever all links between the two groups (both directions)."""
        self._partitions.add(frozenset((frozenset(group_a), frozenset(group_b))))

    def heal_partitions(self) -> None:
        self._partitions.clear()

    # ------------------------------------------------------------------
    # the transport's question
    # ------------------------------------------------------------------
    def should_deliver(self, src: str, dst: str, now: int) -> bool:
        if self.is_crashed(src, now) or self.is_crashed(dst, now):
            return False
        for pair in self._partitions:
            side_a, side_b = tuple(pair) if len(pair) == 2 else (next(iter(pair)),) * 2
            if (src in side_a and dst in side_b) or (src in side_b and dst in side_a):
                return False
        probability = self._drop_probability.get((src, dst), 0.0)
        if probability:
            until = self._drop_until.get((src, dst))
            if until is not None and now >= until:
                probability = 0.0  # declaratively healed; no rng draw
        if probability and self._rng.random() < probability:
            return False
        return True
