"""Tests for transaction-lifecycle spans (repro.obs.spans)."""

import pytest

from repro.core import ResilientDBSystem, SystemConfig
from repro.obs.spans import STAGES, SpanRecorder, validate_stage_order
from repro.sim.clock import millis


def small_config(**overrides):
    defaults = dict(
        num_replicas=4,
        num_clients=32,
        client_groups=2,
        batch_size=4,
        ycsb_records=200,
        warmup=millis(20),
        measure=millis(40),
        real_auth_tokens=False,
        apply_state=False,
        lifecycle_spans=True,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


# ----------------------------------------------------------------------
# unit behaviour
# ----------------------------------------------------------------------
def test_basic_span_lifecycle():
    recorder = SpanRecorder(enabled=True)
    key = ("client0", 1)
    recorder.begin(key, 100)
    recorder.stamp(key, "input", 150)
    recorder.stamp(key, "batch", 200)
    recorder.finish(key, 300)
    table = recorder.stage_table()
    assert list(table) == ["input", "batch", "reply", "total"]
    assert table["input"]["mean_s"] == pytest.approx(50e-9)
    assert table["batch"]["mean_s"] == pytest.approx(50e-9)
    assert table["reply"]["mean_s"] == pytest.approx(100e-9)
    assert table["total"]["mean_s"] == pytest.approx(200e-9)
    assert recorder.spans_completed == 1
    assert recorder.open_spans == 0


def test_first_stamp_wins():
    recorder = SpanRecorder(enabled=True)
    key = ("client0", 1)
    recorder.begin(key, 0)
    recorder.stamp(key, "input", 10)
    recorder.stamp(key, "input", 99)  # retransmission must not move it
    recorder.finish(key, 100)
    assert recorder.stage_table()["input"]["mean_s"] == pytest.approx(10e-9)


def test_stamp_and_finish_without_begin_are_noops():
    recorder = SpanRecorder(enabled=True)
    recorder.stamp(("nobody", 7), "input", 10)
    recorder.finish(("nobody", 7), 20)
    assert recorder.stage_table() == {}
    assert recorder.spans_completed == 0


def test_batch_link_fans_out_and_is_released_on_execute():
    recorder = SpanRecorder(enabled=True)
    keys = (("client0", 1), ("client1", 5))
    for key in keys:
        recorder.begin(key, 0)
    recorder.link_batch(42, keys)
    recorder.stamp_sequence(42, "propose", 10)
    recorder.stamp_sequence(42, "commit", 20)
    recorder.stamp_sequence(42, "execute", 30)
    assert 42 not in recorder._by_sequence  # link released at execute
    recorder.stamp_sequence(42, "execute", 99)  # late stamp: no-op
    for key in keys:
        recorder.finish(key, 40)
    table = recorder.stage_table()
    assert table["propose"]["count"] == 2
    assert table["execute"]["mean_s"] == pytest.approx(10e-9)


def test_abandon_drops_without_recording():
    recorder = SpanRecorder(enabled=True)
    recorder.begin(("client0", 1), 0)
    recorder.abandon(("client0", 1))
    assert recorder.open_spans == 0
    assert recorder.spans_abandoned == 1
    assert recorder.stage_table() == {}


def test_reset_window_clears_aggregates_but_keeps_open_spans():
    recorder = SpanRecorder(enabled=True, keep_finished=10)
    recorder.begin(("a", 1), 0)
    recorder.finish(("a", 1), 10)
    recorder.begin(("a", 2), 5)
    recorder.reset_window()
    assert recorder.stage_table() == {}
    assert not recorder.finished
    assert recorder.open_spans == 1  # in-flight request survives the reset
    recorder.finish(("a", 2), 30)
    assert recorder.stage_table()["total"]["count"] == 1


def test_keep_finished_bounds_retention():
    recorder = SpanRecorder(enabled=True, keep_finished=2)
    for i in range(5):
        recorder.begin(("a", i), i)
        recorder.finish(("a", i), i + 10)
    assert len(recorder.finished) == 2
    assert [key for key, _stamps in recorder.finished] == [("a", 3), ("a", 4)]


def test_validate_stage_order():
    assert validate_stage_order({"submit": 0, "input": 5, "reply": 9}) is None
    violation = validate_stage_order({"submit": 10, "input": 5})
    assert violation is not None and "input" in violation


# ----------------------------------------------------------------------
# stage-ordering invariants on a real run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["pbft", "zyzzyva", "poe"])
def test_system_stage_table_per_protocol(protocol):
    system = ResilientDBSystem(
        small_config(protocol=protocol, span_keep_finished=500)
    )
    result = system.run()
    table = result.stage_latency
    assert result.completed_requests > 0
    # every protocol reaches these hand-offs
    for stage in ("input", "batch", "execute", "reply", "total"):
        assert stage in table, f"{protocol} missing stage {stage}"
    # zyzzyva's fast path has no prepare phase
    if protocol == "zyzzyva":
        assert "prepare" not in table
    else:
        assert "prepare" in table
    # table keys follow pipeline order, with "total" last
    order = [stage for stage in STAGES[1:] if stage in table] + ["total"]
    assert list(table) == order
    # the total-span histogram is the request-latency histogram: same
    # completions, same timestamps
    assert table["total"]["count"] == result.completed_requests
    assert table["total"]["mean_s"] == result.latency_mean_s
    # every retained span satisfies the ordering invariant
    assert len(system.spans.finished) > 0
    for _key, stamps in system.spans.finished:
        assert validate_stage_order(stamps) is None, stamps


def test_stage_latency_table_renders():
    system = ResilientDBSystem(small_config())
    result = system.run()
    text = result.stage_latency_table()
    assert "stage latency" in text
    assert "total" in text and "p99" in text


def test_spans_disabled_collects_nothing():
    system = ResilientDBSystem(small_config(lifecycle_spans=False))
    result = system.run()
    assert result.completed_requests > 0
    assert result.stage_latency == {}
    assert system.spans.open_spans == 0
    assert result.stage_latency_table() == ""
