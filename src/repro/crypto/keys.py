"""Key material for a deployment.

The key store plays the role of the PKI that a permissioned deployment sets
up out of band (identities are known a priori — that is what *permissioned*
means).  It derives, deterministically from the system seed:

* a private signing seed per identity (clients and replicas), and
* a pairwise symmetric key per unordered identity pair, for MACs.

Byzantine-behaviour tests rely on the framework invariant that a node may
request signatures only under its own identity; the store enforces the
lookup discipline that a real PKI's private-key custody would.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple


class UnknownIdentityError(KeyError):
    """Raised when signing or verifying against an unregistered identity."""


class KeyStore:
    """Deterministic key registry for one deployment."""

    def __init__(self, system_seed: int):
        self.system_seed = system_seed
        self._signing_seeds: Dict[str, bytes] = {}
        self._pair_keys: Dict[Tuple[str, str], bytes] = {}

    def register(self, identity: str) -> None:
        """Provision key material for ``identity`` (idempotent)."""
        if identity in self._signing_seeds:
            return
        self._signing_seeds[identity] = self._derive(f"sign:{identity}")

    def signing_seed(self, identity: str) -> bytes:
        """Private signing seed — custody belongs to ``identity`` alone."""
        try:
            return self._signing_seeds[identity]
        except KeyError:
            raise UnknownIdentityError(identity) from None

    def pair_key(self, a: str, b: str) -> bytes:
        """Symmetric key shared by identities ``a`` and ``b`` (order-free)."""
        if a not in self._signing_seeds:
            raise UnknownIdentityError(a)
        if b not in self._signing_seeds:
            raise UnknownIdentityError(b)
        pair = (a, b) if a <= b else (b, a)
        key = self._pair_keys.get(pair)
        if key is None:
            key = self._derive(f"pair:{pair[0]}:{pair[1]}")
            self._pair_keys[pair] = key
        return key

    def identities(self) -> Tuple[str, ...]:
        return tuple(sorted(self._signing_seeds))

    def _derive(self, label: str) -> bytes:
        return hashlib.blake2b(
            f"{self.system_seed}:{label}".encode("utf-8"), digest_size=32
        ).digest()
