"""Benchmark harness: one canonical experiment per paper figure.

Each ``figXX_*`` function in :mod:`repro.bench.experiments` regenerates the
corresponding figure of the paper's evaluation (§5) as a
:class:`~repro.bench.report.FigureResult` — the same series the paper
plots, printed as text tables.  ``benchmarks/`` wraps each in a
pytest-benchmark target.

Scale: simulated windows are hundreds of milliseconds (the paper measures
120 s, but the DES is deterministic, so short stationary windows carry the
same information) and client counts are scaled down ~4× by default.  Set
``REPRO_BENCH_FULL=1`` for paper-scale sweeps.
"""

from repro.bench.experiments import (
    fig01_headline,
    fig07_upper_bound,
    fig08_threading,
    fig09_saturation,
    fig10_batching,
    fig11_multiop,
    fig12_message_size,
    fig13_crypto,
    fig14_storage,
    fig15_clients,
    fig16_cores,
    fig17_failures,
    fig18_rcc_scaling,
    fig19_overload_degradation,
)
from repro.bench.report import FigureResult, Series, SeriesPoint
from repro.bench.runner import run_config

__all__ = [
    "FigureResult",
    "Series",
    "SeriesPoint",
    "fig01_headline",
    "fig07_upper_bound",
    "fig08_threading",
    "fig09_saturation",
    "fig10_batching",
    "fig11_multiop",
    "fig12_message_size",
    "fig13_crypto",
    "fig14_storage",
    "fig15_clients",
    "fig16_cores",
    "fig17_failures",
    "fig18_rcc_scaling",
    "fig19_overload_degradation",
    "run_config",
]
