"""Client-side congestion control: AIMD window + backoff schedule.

Both classes are plain arithmetic over simulated time — no simulator
coupling — so they unit-test directly and the client manager drives them
from its reply/NACK handlers.
"""

from __future__ import annotations

from typing import Optional


class AIMDWindow:
    """Additive-increase / multiplicative-decrease pending-request window.

    The window bounds how many requests a client group keeps in flight.
    One full window of successful replies grows it by ``additive``; a
    congestion signal (Busy NACK) multiplies it by ``decrease``.  The
    ``cooldown`` guard collapses a burst of NACKs — one per in-flight
    request is typical when a primary sheds — into a single decrease, the
    standard once-per-RTT rule.
    """

    __slots__ = (
        "size",
        "min_size",
        "max_size",
        "additive",
        "decrease",
        "cooldown",
        "_credit",
        "_last_decrease",
        "increases",
        "decreases",
    )

    def __init__(
        self,
        initial: int,
        min_size: int = 1,
        max_size: Optional[int] = None,
        additive: int = 1,
        decrease: float = 0.5,
        cooldown: int = 0,
    ):
        if initial < 1:
            raise ValueError(f"initial window must be >= 1, got {initial}")
        if min_size < 1:
            raise ValueError(f"min window must be >= 1, got {min_size}")
        if max_size is not None and max_size < min_size:
            raise ValueError(f"max window {max_size} < min window {min_size}")
        if not 0.0 < decrease < 1.0:
            raise ValueError(f"decrease factor must be in (0, 1), got {decrease}")
        if additive < 1:
            raise ValueError(f"additive step must be >= 1, got {additive}")
        self.size = initial
        self.min_size = min_size
        self.max_size = max_size
        self.additive = additive
        self.decrease = decrease
        self.cooldown = cooldown
        self._credit = 0
        self._last_decrease: Optional[int] = None
        self.increases = 0
        self.decreases = 0

    def has_room(self, in_flight: int) -> bool:
        return in_flight < self.size

    def on_success(self) -> None:
        """One completed request; a full window of them earns +additive."""
        if self.max_size is not None and self.size >= self.max_size:
            self._credit = 0
            return
        self._credit += 1
        if self._credit >= self.size:
            self._credit = 0
            self.size += self.additive
            if self.max_size is not None and self.size > self.max_size:
                self.size = self.max_size
            self.increases += 1

    def on_congestion(self, now: int = 0) -> bool:
        """Shrink multiplicatively; returns False inside the cooldown."""
        if (
            self._last_decrease is not None
            and now - self._last_decrease < self.cooldown
        ):
            return False
        self._last_decrease = now
        self._credit = 0
        self.size = max(self.min_size, int(self.size * self.decrease))
        self.decreases += 1
        return True


class RetransmitBackoff:
    """Exponential retransmission backoff with deterministic jitter.

    ``delay(attempt)`` = ``min(base * factor**attempt, cap)`` plus a
    jitter fraction drawn from the supplied deterministic RNG — spreading
    retries so a NACKed burst does not re-arrive as a synchronised wave.
    """

    __slots__ = ("base", "factor", "cap", "jitter", "rng")

    def __init__(
        self,
        base: int,
        factor: float = 2.0,
        cap: Optional[int] = None,
        jitter: float = 0.1,
        rng=None,
    ):
        if base < 1:
            raise ValueError(f"backoff base must be >= 1 tick, got {base}")
        if factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1.0, got {factor}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter fraction must be in [0, 1], got {jitter}")
        self.base = base
        self.factor = factor
        self.cap = cap if cap is not None else base * 16
        self.jitter = jitter
        self.rng = rng

    def delay(self, attempt: int = 0) -> int:
        delay = min(self.base * self.factor ** max(0, attempt), self.cap)
        if self.jitter and self.rng is not None:
            delay += delay * self.jitter * self.rng.random()
        return max(1, int(delay))
