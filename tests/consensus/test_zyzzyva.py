"""Tests for the Zyzzyva state machine: speculation, history, slow path."""

import pytest

from repro.consensus import QuorumConfig, ZyzzyvaReplica
from repro.consensus.base import ExecuteReady, SendTo
from repro.consensus.messages import CommitCertificate, LocalCommit, OrderRequest
from repro.consensus.safety import check_execution_consistency
from repro.consensus.zyzzyva import GENESIS_HISTORY, extend_history

from tests.consensus.harness import Cluster, make_request


def test_primary_orders_and_executes_speculatively():
    cluster = Cluster(4, protocol="zyzzyva")
    request = make_request("client0", 1)
    cluster.propose(request)
    # the primary executed before any network round-trip
    assert cluster.executed["r0"] == [(1, request.digest)]
    cluster.run()
    for rid in cluster.ids:
        assert cluster.executed[rid] == [(1, request.digest)]


def test_single_linear_phase():
    """Zyzzyva sends exactly n-1 protocol messages per request (one
    OrderRequest to each backup) — no prepare or commit traffic."""
    cluster = Cluster(4, protocol="zyzzyva")
    cluster.propose(make_request("client0", 1))
    assert len(cluster.wire) == 3
    assert all(entry[2].kind == "order-request" for entry in cluster.wire)
    cluster.run()
    assert not cluster.wire


def test_sequences_are_dense_and_ordered():
    cluster = Cluster(4, protocol="zyzzyva")
    requests = [make_request("client0", i) for i in range(1, 8)]
    for request in requests:
        cluster.propose(request)
    cluster.run()
    expected = [(i, requests[i - 1].digest) for i in range(1, 8)]
    for rid in cluster.ids:
        assert cluster.executed[rid] == expected
    check_execution_consistency(cluster.executed)


def test_history_hash_chains():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    primary = ZyzzyvaReplica("r0", ids, quorum)
    first, _ = primary.make_order_request("d1", make_request("c", 1))
    second, _ = primary.make_order_request("d2", make_request("c", 2))
    assert first.history_hash == extend_history(GENESIS_HISTORY, "d1")
    assert second.history_hash == extend_history(first.history_hash, "d2")
    assert first.history_hash != second.history_hash


def test_non_primary_cannot_order():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    backup = ZyzzyvaReplica("r1", ids, quorum)
    with pytest.raises(RuntimeError):
        backup.make_order_request("d", make_request("c", 1))


def test_order_request_from_non_primary_rejected():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    backup = ZyzzyvaReplica("r2", ids, quorum)
    request = make_request("c", 1)
    forged = OrderRequest("r1", 0, 1, request.digest, "h", request)
    assert backup.handle_order_request(forged) == []
    assert backup.rejected_messages == 1


def test_duplicate_order_request_executes_once():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    backup = ZyzzyvaReplica("r1", ids, quorum)
    request = make_request("c", 1)
    message = OrderRequest("r0", 0, 1, request.digest, "h", request)
    first = backup.handle_order_request(message)
    second = backup.handle_order_request(message)
    assert len(first) == 1 and isinstance(first[0], ExecuteReady)
    assert second == []


def test_equivocating_order_request_rejected():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    backup = ZyzzyvaReplica("r1", ids, quorum)
    request_a = make_request("c", 1)
    request_b = make_request("c", 2)
    backup.handle_order_request(OrderRequest("r0", 0, 1, request_a.digest, "h", request_a))
    backup.handle_order_request(OrderRequest("r0", 0, 1, request_b.digest, "h", request_b))
    assert backup.accepted[1] == request_a.digest
    assert backup.rejected_messages == 1


def test_speculative_flag_set():
    cluster = Cluster(4, protocol="zyzzyva")
    request = make_request("client0", 1)
    primary = cluster.replicas["r0"]
    _msg, actions = primary.make_order_request(request.digest, request)
    execute = [a for a in actions if isinstance(a, ExecuteReady)][0]
    assert execute.speculative
    assert execute.commit_proof == ()


# ----------------------------------------------------------------------
# slow path: commit certificates
# ----------------------------------------------------------------------
def test_commit_certificate_acknowledged():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = ZyzzyvaReplica("r1", ids, quorum)
    certificate = CommitCertificate("client0", 0, 5, "result", ("r0", "r1", "r2"))
    actions = replica.handle_commit_certificate(certificate)
    assert len(actions) == 1
    action = actions[0]
    assert isinstance(action, SendTo)
    assert action.dst == "client0"
    assert isinstance(action.message, LocalCommit)
    assert action.message.sequence == 5
    assert replica.max_committed == 5


def test_thin_certificate_rejected():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = ZyzzyvaReplica("r1", ids, quorum)
    thin = CommitCertificate("client0", 0, 5, "result", ("r0", "r1"))
    assert replica.handle_commit_certificate(thin) == []
    assert replica.max_committed == 0


def test_certificate_with_unknown_responders_rejected():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = ZyzzyvaReplica("r1", ids, quorum)
    bogus = CommitCertificate("client0", 0, 5, "result", ("r0", "r1", "intruder"))
    assert replica.handle_commit_certificate(bogus) == []


def test_advance_stable_gc():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    primary = ZyzzyvaReplica("r0", ids, quorum)
    for i in range(1, 6):
        primary.make_order_request(f"d{i}", make_request("c", i))
    assert primary.advance_stable(3) == 3
    assert sorted(primary.accepted) == [4, 5]


def test_sequence_window_rejection():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    backup = ZyzzyvaReplica("r1", ids, quorum, sequence_window=10)
    request = make_request("c", 1)
    far = OrderRequest("r0", 0, 500, request.digest, "h", request)
    assert backup.handle_order_request(far) == []
