"""Safety-invariant checkers used by tests, fuzzing, and property harnesses.

The fundamental BFT guarantee the paper leans on (§4.5–4.6): all non-faulty
replicas establish *a single common order* — the sequences of executed
batch digests at any two non-faulty replicas must be consistent prefixes of
one another, with no gaps and no divergence.

Beyond execution-order consistency this module provides the standalone
oracles the scenario fuzzer (:mod:`repro.fuzz`) composes into its bank:
state convergence, checkpoint consistency across replicas, and bounded
liveness (everything committed eventually executes while faults stay
within ``f``).  Each checker takes plain data, so it is equally usable
against a live :class:`~repro.core.system.ResilientDBSystem`, a replayed
trace, or hand-built fixtures in unit tests.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple


class SafetyViolation(AssertionError):
    """Raised when replica execution logs contradict BFT safety."""


class LivenessViolation(AssertionError):
    """Raised when committed work failed to execute within the allowed lag."""


def check_execution_consistency(
    logs: Dict[str, Sequence[Tuple[int, str]]],
    faulty: Sequence[str] = (),
) -> int:
    """Validate the executed (sequence, digest) logs of a deployment.

    ``logs`` maps replica id to its executed log, in execution order.
    Checks, for every non-faulty replica:

    1. execution order equals sequence order, starting at 1, with no gaps
       and no duplicates;
    2. any two replicas agree on the digest of every sequence both
       executed (prefix consistency).

    Returns the length of the shortest non-faulty log (the common prefix
    length proven identical).
    """
    non_faulty = {rid: log for rid, log in logs.items() if rid not in set(faulty)}
    if not non_faulty:
        raise SafetyViolation("no non-faulty logs to check")

    for rid, log in non_faulty.items():
        expected = 1
        for sequence, _digest in log:
            if sequence != expected:
                raise SafetyViolation(
                    f"replica {rid} executed sequence {sequence}, expected "
                    f"{expected} (out-of-order or gap)"
                )
            expected += 1

    reference: Dict[int, Tuple[str, str]] = {}
    for rid, log in non_faulty.items():
        for sequence, digest in log:
            if sequence in reference:
                ref_rid, ref_digest = reference[sequence]
                if digest != ref_digest:
                    raise SafetyViolation(
                        f"divergence at sequence {sequence}: replica {ref_rid} "
                        f"executed {ref_digest!r}, replica {rid} executed "
                        f"{digest!r}"
                    )
            else:
                reference[sequence] = (rid, digest)

    return min(len(log) for log in non_faulty.values())


def check_state_convergence(states: Dict[str, Dict[str, str]], faulty=()) -> None:
    """All non-faulty replicas that executed the same prefix must hold the
    same record store contents."""
    items = [
        (rid, state) for rid, state in states.items() if rid not in set(faulty)
    ]
    if len(items) < 2:
        return
    ref_rid, reference = items[0]
    for rid, state in items[1:]:
        if state != reference:
            differing = {
                key
                for key in set(reference) | set(state)
                if reference.get(key) != state.get(key)
            }
            sample = sorted(differing)[:5]
            raise SafetyViolation(
                f"state divergence between {ref_rid} and {rid} on "
                f"{len(differing)} keys (sample: {sample})"
            )


def check_checkpoint_consistency(
    histories: Mapping[str, Mapping[int, str]],
    faulty: Sequence[str] = (),
) -> int:
    """Validate the checkpoints a deployment's replicas have emitted.

    ``histories`` maps replica id to ``{checkpoint sequence: state digest}``
    — the digest the replica attested to after executing that sequence
    (§4.7).  Because the state digest is a deterministic fold of the
    executed batches, any two non-faulty replicas reaching the same
    checkpoint sequence must attest to the same digest; a mismatch means
    their states silently diverged even if their logs look consistent.

    Returns the number of distinct checkpoint sequences cross-checked.
    """
    non_faulty = {
        rid: history
        for rid, history in histories.items()
        if rid not in set(faulty)
    }
    reference: Dict[int, Tuple[str, str]] = {}
    for rid, history in sorted(non_faulty.items()):
        for sequence, digest in history.items():
            if sequence in reference:
                ref_rid, ref_digest = reference[sequence]
                if digest != ref_digest:
                    raise SafetyViolation(
                        f"checkpoint divergence at sequence {sequence}: "
                        f"replica {ref_rid} attested {ref_digest!r}, replica "
                        f"{rid} attested {digest!r}"
                    )
            else:
                reference[sequence] = (rid, digest)
    return len(reference)


def check_bounded_liveness(
    committed: Mapping[str, int],
    executed: Mapping[str, int],
    faulty: Sequence[str] = (),
    max_lag: int = 0,
) -> int:
    """Every committed sequence must eventually execute (faults within f).

    ``committed`` maps replica id to the highest sequence that replica has
    locally committed (handed to its execution layer); ``executed`` maps it
    to the highest sequence actually executed.  The caller samples
    ``committed`` at some instant, gives the system time to quiesce, then
    samples ``executed`` — a non-faulty replica still more than ``max_lag``
    sequences behind its own earlier commit point is wedged (typically
    parked behind an execution gap that nothing will ever fill).

    Returns the highest committed sequence among non-faulty replicas.
    """
    faulty_set = set(faulty)
    highest = 0
    for rid in sorted(committed):
        if rid in faulty_set:
            continue
        committed_seq = committed[rid]
        executed_seq = executed.get(rid, 0)
        highest = max(highest, committed_seq)
        if executed_seq < committed_seq - max_lag:
            raise LivenessViolation(
                f"replica {rid} committed through sequence {committed_seq} "
                f"but executed only through {executed_seq} "
                f"(allowed lag {max_lag})"
            )
    return highest
