"""Observability must be free when disabled and inert when enabled.

Two properties:

1. **Guard idiom** — with observability disabled, hot paths never call
   into the recorder at all (the ``spans.enabled`` check is the entire
   cost).  Verified by making every recorder entry point explode.
2. **Result invariance** — spans, sampling and tracing only *read* the
   simulation, so enabling all of them yields bit-identical
   ``ExperimentResult`` numbers for the same seed.
"""

import pytest

from repro.core import ResilientDBSystem, SystemConfig
from repro.obs.spans import SpanRecorder
from repro.sim.clock import millis


def config(**overrides):
    defaults = dict(
        num_replicas=4,
        num_clients=32,
        client_groups=2,
        batch_size=4,
        ycsb_records=200,
        warmup=millis(20),
        measure=millis(40),
        real_auth_tokens=False,
        apply_state=False,
        seed=11,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


RESULT_FIELDS = (
    "throughput_txns_per_s",
    "throughput_ops_per_s",
    "latency_mean_s",
    "latency_p50_s",
    "latency_p99_s",
    "latency_max_s",
    "completed_requests",
    "completed_txns",
    "primary_saturation",
    "backup_saturation",
    "messages_sent",
    "bytes_sent",
    "dropped_messages",
    "chain_height",
    "stable_checkpoint",
)


def run_once(**overrides):
    system = ResilientDBSystem(config(**overrides))
    try:
        return system.run()
    finally:
        system.close()


def test_disabled_observability_never_calls_the_recorder(monkeypatch):
    """The guard test: every hook must check ``enabled`` before calling in."""

    def explode(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("observability hook ran while disabled")

    for method in ("begin", "stamp", "stamp_sequence", "link_batch", "finish"):
        monkeypatch.setattr(SpanRecorder, method, explode)
    result = run_once()  # all observability off by default
    assert result.completed_requests > 0


@pytest.mark.parametrize("protocol", ["pbft", "zyzzyva"])
def test_enabling_observability_changes_no_results(protocol):
    baseline = run_once(protocol=protocol)
    observed = run_once(
        protocol=protocol,
        lifecycle_spans=True,
        span_keep_finished=100,
        sample_interval=millis(5),
        trace=True,
    )
    for field in RESULT_FIELDS:
        assert getattr(baseline, field) == getattr(observed, field), field
    assert observed.stage_latency and not baseline.stage_latency


def test_fixed_seed_is_bit_identical_across_runs():
    first = run_once()
    second = run_once()
    for field in RESULT_FIELDS:
        assert getattr(first, field) == getattr(second, field), field
