"""Zyzzyva [36]: speculative BFT (§2.1, "Speculative Execution").

The fast path has a single linear phase: the primary orders a request and
broadcasts ``OrderRequest``; every backup executes *speculatively* on
receipt — before knowing whether the order is agreed — and responds to the
client directly.  The client considers the request complete only after all
3f+1 replicas answer with identical (sequence, history-hash, result)
values.

When fewer than 3f+1 (but at least 2f+1) matching responses arrive before
the client's timer fires, the client assembles the matching responses into
a ``CommitCertificate``, sends it to all replicas, and completes on 2f+1
``LocalCommit`` acknowledgements.  This two-extra-phases-plus-timeout slow
path is why a single crashed backup devastates Zyzzyva's throughput
(Fig. 17) — every request must now wait out the client timer.

Ordering integrity comes from the *history hash*: ``h_n = H(h_{n-1} ‖
d_n)``.  Replicas that diverge from the primary's order produce different
history hashes and the client's matching test fails.

View change is not modelled: the paper's failure experiments crash only
backup replicas, which in Zyzzyva never triggers a view change — the
damage is entirely client-side timeouts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.consensus.base import Action, Broadcast, ExecuteReady, QuorumConfig, SendTo
from repro.consensus.messages import (
    ClientRequest,
    CommitCertificate,
    LocalCommit,
    OrderRequest,
)
from repro.crypto.hashing import digest_bytes

#: history hash of the empty history
GENESIS_HISTORY = digest_bytes(b"zyzzyva-genesis")


def extend_history(history_hash: str, digest: str) -> str:
    """``h_n = H(h_{n-1} ‖ d_n)`` — the caller pays the digest cost."""
    return digest_bytes(f"{history_hash}|{digest}".encode("utf-8"))


class ZyzzyvaReplica:
    """One replica's Zyzzyva engine.  I/O-free; returns actions."""

    def __init__(
        self,
        replica_id: str,
        replica_ids: Tuple[str, ...],
        quorum: QuorumConfig,
        sequence_window: int = 100_000,
    ):
        if replica_id not in replica_ids:
            raise ValueError(f"{replica_id!r} not in replica set")
        if len(replica_ids) != quorum.n:
            raise ValueError(
                f"replica set size {len(replica_ids)} != quorum n {quorum.n}"
            )
        self.replica_id = replica_id
        self.replica_ids = tuple(replica_ids)
        self.quorum = quorum
        self.sequence_window = sequence_window
        self.view = 0
        #: primary-side ordered history (the primary computes the chain as
        #: it assigns sequence numbers)
        self.history_hash = GENESIS_HISTORY
        self.next_order_sequence = 1
        #: backup-side record of accepted order-requests
        self.accepted: Dict[int, str] = {}
        #: highest sequence covered by a commit certificate we have seen
        self.max_committed = 0
        self.stable_sequence = 0
        self.rejected_messages = 0

    def primary_of(self, view: int) -> str:
        return self.replica_ids[view % len(self.replica_ids)]

    @property
    def is_primary(self) -> bool:
        return self.primary_of(self.view) == self.replica_id

    # ------------------------------------------------------------------
    # primary side
    # ------------------------------------------------------------------
    def make_order_request(
        self, digest: str, request: ClientRequest
    ) -> Tuple[OrderRequest, List[Action]]:
        """Primary only: assign the next sequence number and order the
        request.  The primary extends the history chain here, so sequence
        assignment and history are atomic."""
        if not self.is_primary:
            raise RuntimeError(f"{self.replica_id} is not primary of view {self.view}")
        sequence = self.next_order_sequence
        self.next_order_sequence += 1
        self.history_hash = extend_history(self.history_hash, digest)
        message = OrderRequest(
            self.replica_id, self.view, sequence, digest, self.history_hash, request
        )
        self.accepted[sequence] = digest
        # the primary executes speculatively too and answers the client
        return message, [
            Broadcast(message),
            ExecuteReady(
                sequence=sequence,
                view=self.view,
                request=request,
                speculative=True,
            ),
        ]

    # ------------------------------------------------------------------
    # backup side
    # ------------------------------------------------------------------
    def handle_order_request(self, message: OrderRequest) -> List[Action]:
        if message.view != self.view:
            self.rejected_messages += 1
            return []
        if message.sender != self.primary_of(message.view):
            self.rejected_messages += 1
            return []
        if not (
            self.stable_sequence
            < message.sequence
            <= self.stable_sequence + self.sequence_window
        ):
            self.rejected_messages += 1
            return []
        known = self.accepted.get(message.sequence)
        if known is not None:
            if known != message.digest:
                self.rejected_messages += 1  # equivocation: keep first
            return []
        self.accepted[message.sequence] = message.digest
        return [
            ExecuteReady(
                sequence=message.sequence,
                view=self.view,
                request=message.request,
                speculative=True,
            )
        ]

    def handle_commit_certificate(self, message: CommitCertificate) -> List[Action]:
        """Client slow path: acknowledge a 2f+1 certificate."""
        responders = set(message.responders)
        if len(responders) < self.quorum.certificate_quorum:
            self.rejected_messages += 1
            return []
        if not responders.issubset(set(self.replica_ids)):
            self.rejected_messages += 1
            return []
        self.max_committed = max(self.max_committed, message.sequence)
        return [
            SendTo(
                message.sender,
                LocalCommit(self.replica_id, message.view, message.sequence),
            )
        ]

    # ------------------------------------------------------------------
    # checkpoint integration
    # ------------------------------------------------------------------
    def advance_stable(self, sequence: int) -> int:
        if sequence <= self.stable_sequence:
            return 0
        self.stable_sequence = sequence
        old = [s for s in self.accepted if s <= sequence]
        for s in old:
            del self.accepted[s]
        return len(old)
