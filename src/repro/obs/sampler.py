"""Periodic pipeline sampling: queue depths, CPU and network over time.

End-of-run scalars (Fig. 9's saturation bars) say *that* a stage was the
bottleneck; they cannot show queue build-up over the run, which is how
FastFabric-style analyses localise *when* a pipeline saturates.  The
:class:`PipelineSampler` is a simulation process that wakes every
``interval`` ticks and snapshots, per replica:

- the depth of every inter-stage queue (batch, work, checkpoint, output,
  network inbox) via :meth:`repro.sim.queues.SimQueue.stats`,
- CPU occupancy (cores busy now, plus cumulative busy ns per thread),
- and global network counters (messages, bytes, drops).

Samples land in bounded :class:`TimeSeries` (oldest dropped beyond
``max_points``), cheap enough to leave on for whole experiments and
exportable as CSV (:func:`repro.obs.exporters.sampler_csv`) for plotting
queue-growth curves.

Sampling is read-only and consumes no simulated CPU or queue capacity, so
enabling it never changes experiment results.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple


class TimeSeries:
    """A bounded (time, value) series for one sampled quantity."""

    __slots__ = ("name", "points", "dropped")

    def __init__(self, name: str, max_points: int = 4_096):
        if max_points < 1:
            raise ValueError(f"max_points must be >= 1, got {max_points}")
        self.name = name
        self.points: Deque[Tuple[int, float]] = deque(maxlen=max_points)
        self.dropped = 0

    def append(self, at: int, value: float) -> None:
        if len(self.points) == self.points.maxlen:
            self.dropped += 1
        self.points.append((at, value))

    def times(self) -> List[int]:
        return [at for at, _value in self.points]

    def values(self) -> List[float]:
        return [value for _at, value in self.points]

    def __len__(self) -> int:
        return len(self.points)


class PipelineSampler:
    """Samples a :class:`~repro.core.system.ResilientDBSystem` periodically.

    The system spawns :meth:`run` as a simulation process when
    ``config.sample_interval`` is set; :meth:`sample` can also be called
    directly (tests, custom probes) at any simulated moment.
    """

    def __init__(self, system, interval: int, max_points: int = 4_096):
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1 tick, got {interval}")
        self.system = system
        self.interval = interval
        self.max_points = max_points
        self.series: Dict[str, TimeSeries] = {}
        self.samples_taken = 0

    # ------------------------------------------------------------------
    def _series(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = TimeSeries(name, max_points=self.max_points)
            self.series[name] = series
        return series

    def _record(self, at: int, name: str, value: float) -> None:
        self._series(name).append(at, value)

    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Snapshot every probe at the current simulated time."""
        system = self.system
        at = system.sim.now
        for replica_id, replica in system.replicas.items():
            self._record(
                at, f"{replica_id}.inbox.depth", replica.endpoint.inbox.depth
            )
            self._record(
                at, f"{replica_id}.batch-q.depth", replica.batch_queue.depth
            )
            self._record(at, f"{replica_id}.work-q.depth", replica.work_queue.depth)
            self._record(
                at, f"{replica_id}.ckpt-q.depth", replica.checkpoint_queue.depth
            )
            self._record(
                at,
                f"{replica_id}.out-q.depth",
                sum(queue.depth for queue in replica.output_queues),
            )
            self._record(
                at, f"{replica_id}.exec-pending", len(replica.exec_pending)
            )
            flow = replica.flow
            self._record(
                at,
                f"{replica_id}.flow.shed",
                flow.shed_requests + flow.shed_messages,
            )
            self._record(at, f"{replica_id}.flow.nacks", flow.nacks_sent)
            self._record(
                at, f"{replica_id}.flow.inflight", replica.admission.inflight
            )
            self._record(at, f"{replica_id}.cpu.busy_cores", replica.cpu.busy_cores)
            self._record(
                at,
                f"{replica_id}.cpu.busy_ns_total",
                sum(replica.cpu.busy_ns.values()),
            )
        network = system.network
        self._record(at, "net.messages_sent", network.messages_sent)
        self._record(at, "net.bytes_sent", network.bytes_sent)
        self._record(at, "net.dropped_messages", network.dropped_messages)
        self.samples_taken += 1

    def run(self):
        """The sampling process: one snapshot every ``interval`` ticks."""
        while True:
            yield self.interval
            self.sample()

    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple[int, str, float]]:
        """All samples as (time, series, value) rows, sorted by time then
        series name — a stable long-format table for CSV export."""
        out: List[Tuple[int, str, float]] = []
        for name in sorted(self.series):
            for at, value in self.series[name].points:
                out.append((at, name, value))
        out.sort(key=lambda row: (row[0], row[1]))
        return out
