"""Byzantine policies against the speculative engines (Zyzzyva, PoE).

``tests/core/test_byzantine.py`` pins the PBFT behaviours; these tests
cover the same adversary policies under the two speculative protocols,
where the safety story is different: replicas execute before agreement
completes, so the guarantee lives in the *client* quorums — the all-n
fast path, the commit-certificate fallback (Zyzzyva), and the support
quorum (PoE).
"""

import pytest

from repro.core import ResilientDBSystem
from repro.fuzz.oracles import check_client_replies
from repro.sim.clock import millis


@pytest.fixture
def zyzzyva_config(small_config):
    # n=7 tolerates f=2; the 4s default client timeout must shrink far
    # below the measurement window or the certificate fallback never runs
    return small_config.with_options(
        protocol="zyzzyva",
        num_replicas=7,
        num_clients=48,
        batch_size=6,
        zyzzyva_client_timeout=millis(10),
        record_completions=True,
    )


@pytest.fixture
def poe_config(small_config):
    return small_config.with_options(
        protocol="poe",
        num_replicas=7,
        num_clients=48,
        batch_size=6,
        record_completions=True,
    )


def _assert_client_replies_safe(system, faulty):
    executed_logs = {
        rid: replica.executed_log for rid, replica in system.replicas.items()
    }
    for group in system.client_groups:
        check_client_replies(group.completion_log, executed_logs, faulty=faulty)


# ----------------------------------------------------------------------
# Zyzzyva
# ----------------------------------------------------------------------
def test_zyzzyva_conflicting_voter_forces_slow_path(zyzzyva_config):
    """A backup corrupting its spec-response digests denies the all-n
    fast path; clients must still complete via commit certificates."""
    system = ResilientDBSystem(zyzzyva_config)
    system.make_byzantine("r6", "conflicting-voter")
    result = system.run()
    assert result.completed_requests > 50
    fast = sum(group.fast_path_completions for group in system.client_groups)
    assert fast == 0  # every reply set contained the corrupted digest
    system.validate_safety(faulty=("r6",))
    _assert_client_replies_safe(system, faulty=("r6",))


def test_zyzzyva_fast_path_without_byzantine_control(zyzzyva_config):
    """Sanity for the previous test: with every replica honest the same
    deployment completes on the fast path."""
    system = ResilientDBSystem(zyzzyva_config)
    result = system.run()
    assert result.completed_requests > 50
    fast = sum(group.fast_path_completions for group in system.client_groups)
    assert fast > 0
    system.validate_safety()


def test_zyzzyva_equivocating_primary_rejected_by_rehash(zyzzyva_config):
    """Forged digests fail the backups' re-hash check; whatever the
    clients saw must match an honest execution."""
    system = ResilientDBSystem(zyzzyva_config)
    system.make_byzantine("r0", "equivocating-primary")
    system.run()
    rejected = sum(
        replica.invalid_messages
        for rid, replica in system.replicas.items()
        if rid != "r0"
    )
    assert rejected > 0
    system.validate_safety(faulty=("r0",))
    _assert_client_replies_safe(system, faulty=("r0",))


def test_zyzzyva_two_faced_primary_cannot_complete_conflicting_replies(
    zyzzyva_config,
):
    """Both proposals are internally valid, so speculative executions
    genuinely diverge — Zyzzyva permits that.  What it forbids is a
    client acting on the split: neither side can assemble the all-n fast
    quorum or a commit certificate, and no completed reply may contradict
    every honest execution."""
    system = ResilientDBSystem(zyzzyva_config)
    system.make_byzantine("r0", "two-faced-primary")
    result = system.run()
    assert result.completed_requests == 0
    _assert_client_replies_safe(system, faulty=("r0",))


# ----------------------------------------------------------------------
# PoE
# ----------------------------------------------------------------------
def test_poe_conflicting_voters_cannot_break_agreement(poe_config):
    system = ResilientDBSystem(poe_config)
    system.make_byzantine("r5", "conflicting-voter")
    system.make_byzantine("r6", "conflicting-voter")
    result = system.run()
    assert result.completed_requests > 50
    system.validate_safety(faulty=("r5", "r6"))
    _assert_client_replies_safe(system, faulty=("r5", "r6"))


def test_poe_equivocating_primary_rejected_by_rehash(poe_config):
    system = ResilientDBSystem(poe_config)
    system.make_byzantine("r0", "equivocating-primary")
    system.run()
    rejected = sum(
        replica.invalid_messages
        for rid, replica in system.replicas.items()
        if rid != "r0"
    )
    assert rejected > 0
    system.validate_safety(faulty=("r0",))
    _assert_client_replies_safe(system, faulty=("r0",))


def test_poe_two_faced_primary_cannot_complete_conflicting_replies(poe_config):
    """Neither side of the split reaches PoE's support quorum (5 of 7),
    so no batch certifies and no client may act on the equivocation."""
    system = ResilientDBSystem(poe_config)
    system.make_byzantine("r0", "two-faced-primary")
    result = system.run()
    assert result.completed_requests == 0
    _assert_client_replies_safe(system, faulty=("r0",))
