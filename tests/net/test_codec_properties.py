"""Property tests: every codec-supported message survives the wire.

For each of the six message kinds the binary codec handles, hypothesis
generates arbitrary field values and asserts

1. field-level round-trip: ``decode(encode(m))`` reproduces every field,
2. canonical stability: re-encoding the decoded message yields the
   identical frame (no information is lost or invented in flight), and
3. size accounting: ``encoded_size(m) == len(encode(m))``.
"""

import hypothesis.strategies as st
from hypothesis import given

from repro.consensus.messages import (
    Checkpoint,
    ClientRequest,
    ClientResponse,
    Commit,
    Prepare,
    PrePrepare,
    RequestBatch,
)
from repro.net.codec import decode, encode, encoded_size
from repro.workloads.transactions import Operation, OpType, Transaction

# identifiers and digests travel as length-prefixed UTF-8; any text that
# UTF-8 can carry must survive (hypothesis excludes lone surrogates)
names = st.text(min_size=1, max_size=16)
digests = st.text(max_size=64)
u64 = st.integers(min_value=0, max_value=2**64 - 1)
sequences = st.integers(min_value=0, max_value=2**32)


@st.composite
def operations(draw):
    if draw(st.booleans()):
        return Operation(OpType.WRITE, draw(names), draw(st.text(max_size=24)))
    return Operation(OpType.READ, draw(names))


@st.composite
def transactions(draw):
    return Transaction(
        draw(names),
        tuple(draw(st.lists(operations(), min_size=1, max_size=4))),
        padding_bytes=draw(st.integers(min_value=0, max_value=64)),
    )


@st.composite
def client_requests(draw):
    return ClientRequest(
        draw(names),
        draw(u64),
        tuple(draw(st.lists(transactions(), max_size=3))),
    )


def assert_wire_stable(message):
    frame = encode(message)
    assert encoded_size(message) == len(frame)
    assert encode(decode(frame)) == frame


@given(request=client_requests())
def test_client_request_roundtrip(request):
    decoded = decode(encode(request))
    assert decoded.sender == request.sender
    assert decoded.request_id == request.request_id
    assert decoded.txns == request.txns
    assert_wire_stable(request)


@given(
    sender=names,
    view=sequences,
    sequence=sequences,
    digest=digests,
    requests=st.lists(client_requests(), max_size=3),
)
def test_preprepare_roundtrip(sender, view, sequence, digest, requests):
    batch = RequestBatch(tuple(requests))
    batch.digest = digest
    message = PrePrepare(sender, view, sequence, digest, batch)
    decoded = decode(encode(message))
    assert (decoded.sender, decoded.view, decoded.sequence) == (
        sender, view, sequence,
    )
    assert decoded.digest == digest
    # ClientRequest compares by identity, so check the wire fields
    assert len(decoded.request.requests) == len(batch.requests)
    for got, want in zip(decoded.request.requests, batch.requests):
        assert (got.sender, got.request_id, got.txns) == (
            want.sender, want.request_id, want.txns,
        )
    assert decoded.request.batch_bytes() == batch.batch_bytes()
    assert_wire_stable(message)


@given(
    cls=st.sampled_from([Prepare, Commit]),
    sender=names,
    view=sequences,
    sequence=sequences,
    digest=digests,
)
def test_vote_roundtrip(cls, sender, view, sequence, digest):
    message = cls(sender, view, sequence, digest)
    decoded = decode(encode(message))
    assert type(decoded) is cls
    assert (decoded.sender, decoded.view, decoded.sequence, decoded.digest) == (
        sender, view, sequence, digest,
    )
    assert_wire_stable(message)


@given(
    sender=names,
    request_ids=st.lists(u64, max_size=8),
    view=sequences,
    sequence=sequences,
    digest=digests,
)
def test_client_response_roundtrip(sender, request_ids, view, sequence, digest):
    message = ClientResponse(sender, tuple(request_ids), view, sequence, digest)
    decoded = decode(encode(message))
    assert decoded.request_ids == tuple(request_ids)
    assert (decoded.view, decoded.sequence, decoded.result_digest) == (
        view, sequence, digest,
    )
    assert_wire_stable(message)


@given(
    sender=names,
    sequence=sequences,
    digest=digests,
    blocks=st.integers(min_value=0, max_value=4),
)
def test_checkpoint_roundtrip(sender, sequence, digest, blocks):
    # default block_bytes: the codec ships blocks as literal padding and
    # the decoder reconstructs with the default size model
    message = Checkpoint(sender, sequence, digest, blocks_included=blocks)
    frame = encode(message)
    assert len(frame) >= blocks * message.block_bytes
    decoded = decode(frame)
    assert (decoded.sender, decoded.sequence) == (sender, sequence)
    assert decoded.state_digest == digest
    assert decoded.blocks_included == blocks
    assert_wire_stable(message)
