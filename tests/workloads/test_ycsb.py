"""Tests for the YCSB workload, Zipfian keys and transactions."""

import pytest

from repro.sim.rng import DeterministicRNG
from repro.workloads import (
    Operation,
    OpType,
    Transaction,
    UniformGenerator,
    YCSBWorkload,
    ZipfianGenerator,
)


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def test_zipfian_keys_in_range():
    generator = ZipfianGenerator(1000, DeterministicRNG(1))
    keys = [generator.next_key() for _ in range(5000)]
    assert all(0 <= key < 1000 for key in keys)


def test_zipfian_is_skewed_toward_low_keys():
    generator = ZipfianGenerator(10_000, DeterministicRNG(2), theta=0.99)
    keys = [generator.next_key() for _ in range(20_000)]
    hot = sum(1 for key in keys if key < 100)  # 1% of the keyspace
    assert hot > 0.3 * len(keys)  # gets far more than 1% of accesses


def test_zipfian_low_theta_flattens():
    skewed = ZipfianGenerator(10_000, DeterministicRNG(3), theta=0.99)
    flat = ZipfianGenerator(10_000, DeterministicRNG(3), theta=0.1)
    hot_skewed = sum(1 for _ in range(10_000) if skewed.next_key() < 100)
    hot_flat = sum(1 for _ in range(10_000) if flat.next_key() < 100)
    assert hot_skewed > 2 * hot_flat


def test_uniform_covers_keyspace():
    generator = UniformGenerator(100, DeterministicRNG(4))
    keys = {generator.next_key() for _ in range(5000)}
    assert len(keys) > 90


def test_generator_validation():
    rng = DeterministicRNG(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(0, rng)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, rng, theta=1.5)
    with pytest.raises(ValueError):
        UniformGenerator(0, rng)


def test_generators_deterministic():
    first = ZipfianGenerator(1000, DeterministicRNG(7))
    second = ZipfianGenerator(1000, DeterministicRNG(7))
    assert [first.next_key() for _ in range(100)] == [
        second.next_key() for _ in range(100)
    ]


# ----------------------------------------------------------------------
# transactions
# ----------------------------------------------------------------------
def test_transaction_requires_ops():
    with pytest.raises(ValueError):
        Transaction(client_id="c", ops=())


def test_write_requires_value():
    with pytest.raises(ValueError):
        Operation(OpType.WRITE, "key")


def test_wire_bytes_accounts_ops_and_padding():
    txn = Transaction(
        client_id="c",
        ops=(Operation(OpType.WRITE, "key1", "value1"),),
        padding_bytes=500,
    )
    bare = Transaction(
        client_id="c", ops=(Operation(OpType.WRITE, "key1", "value1"),)
    )
    assert txn.wire_bytes() == bare.wire_bytes() + 500


def test_canonical_bytes_distinguish_content():
    one = Transaction("c", (Operation(OpType.WRITE, "k", "v1"),))
    two = Transaction("c", (Operation(OpType.WRITE, "k", "v2"),))
    assert one.canonical_bytes() != two.canonical_bytes()


# ----------------------------------------------------------------------
# YCSB workload
# ----------------------------------------------------------------------
def test_initial_table_size_and_shape():
    workload = YCSBWorkload(DeterministicRNG(1), record_count=100)
    table = workload.initial_table()
    assert len(table) == 100
    assert "user0" in table and "user99" in table
    assert all(len(value) >= 100 for value in table.values())


def test_write_only_by_default():
    workload = YCSBWorkload(DeterministicRNG(1), record_count=100, ops_per_txn=3)
    txn = workload.next_transaction("client0")
    assert txn.op_count == 3
    assert all(op.op_type is OpType.WRITE for op in txn.ops)


def test_read_fraction_respected():
    workload = YCSBWorkload(
        DeterministicRNG(1), record_count=100, write_fraction=0.0
    )
    txn = workload.next_transaction("client0")
    assert all(op.op_type is OpType.READ for op in txn.ops)


def test_keys_reference_table():
    workload = YCSBWorkload(DeterministicRNG(1), record_count=50)
    table = workload.initial_table()
    for _ in range(100):
        txn = workload.next_transaction("client0")
        for op in txn.ops:
            assert op.key in table


def test_padding_propagates():
    workload = YCSBWorkload(DeterministicRNG(1), record_count=10, padding_bytes=640)
    txn = workload.next_transaction("client0")
    assert txn.padding_bytes == 640


def test_workload_validation():
    rng = DeterministicRNG(0)
    with pytest.raises(ValueError):
        YCSBWorkload(rng, record_count=0)
    with pytest.raises(ValueError):
        YCSBWorkload(rng, ops_per_txn=0)
    with pytest.raises(ValueError):
        YCSBWorkload(rng, write_fraction=1.5)
