"""Multi-primary concurrent consensus (RCC-style).

Runs m independent PBFT instances — one per primary — and deterministically
unifies their per-instance commit orders into one global execution order.
See :mod:`repro.multi.unifier` for the round-robin mapping and
:mod:`repro.multi.coordinator` for the instance coordinator the replica
pipeline drives.
"""

from repro.multi.coordinator import InstanceCoordinator, MultiProposal
from repro.multi.unifier import (
    check_unified_execution,
    global_sequence,
    instance_of,
    instance_sequence,
    unify_commit_logs,
)

__all__ = [
    "InstanceCoordinator",
    "MultiProposal",
    "check_unified_execution",
    "global_sequence",
    "instance_of",
    "instance_sequence",
    "unify_commit_logs",
]
