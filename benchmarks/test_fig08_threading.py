"""Figure 8: threading/pipelining depth vs replica count, both protocols.

Paper claims: PBFT gains 1.39× moving 0B0E → 2B1E (Zyzzyva 1.72×); the
full pipeline lets PBFT beat every shallower Zyzzyva variant; decoupling
execution (0E → 1E) buys ~9.5%.
"""

from repro.bench import fig08_threading


def test_fig08_threading(benchmark, record_figure):
    figure = benchmark.pedantic(fig08_threading, rounds=1, iterations=1)
    record_figure(figure)
    # shape: deeper pipelines never lose, and the full pipeline wins big
    for protocol in ("PBFT", "ZYZZYVA"):
        shallow = figure.get(f"{protocol} 0B 0E").throughputs()
        mid = figure.get(f"{protocol} 1B 1E").throughputs()
        deep = figure.get(f"{protocol} 2B 1E").throughputs()
        for s, m, d in zip(shallow, mid, deep):
            assert d >= m >= 0.95 * s
        gain = max(d / max(1.0, s) for s, d in zip(shallow, deep))
        assert gain > 1.3  # paper: 1.39x (PBFT), 1.72x (Zyzzyva)
    # shape: PBFT on the full pipeline beats Zyzzyva on every shallower one
    pbft_deep = figure.get("PBFT 2B 1E").throughputs()
    for label in ("ZYZZYVA 0B 0E", "ZYZZYVA 0B 1E", "ZYZZYVA 1B 1E"):
        for pbft_tp, zyz_tp in zip(pbft_deep, figure.get(label).throughputs()):
            assert pbft_tp > zyz_tp
