"""Shrink a failing scenario to a minimal fault plan.

Classic delta debugging (Zeller's ddmin) over the scenario's injected
event tuple: deterministically bisect the events into chunks, try
dropping each chunk (and each complement), keep any reduction that still
fails, and refine the granularity until no single event can be removed.
The simulator's determinism makes the oracle verdict a pure function of
the scenario, so the result is 1-minimal: removing *any* remaining event
makes the failure disappear.

Config knobs are left alone on purpose — they are a handful of scalars
the human reads directly from the repro JSON; the event plan is the part
that grows unwieldy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.fuzz.scenario import FaultEvent, Scenario


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal scenario and the search cost."""

    scenario: Scenario
    attempts: int
    removed: int


def _default_fails(scenario: Scenario) -> bool:
    from repro.fuzz.runner import run_scenario

    return not run_scenario(scenario).ok


def shrink_scenario(
    scenario: Scenario,
    fails: Optional[Callable[[Scenario], bool]] = None,
    max_attempts: int = 64,
) -> ShrinkResult:
    """Minimise ``scenario.events`` while ``fails`` keeps returning True.

    ``fails`` defaults to re-running the scenario through the oracle bank
    (any violation counts).  ``max_attempts`` caps the number of re-runs;
    fuzz scenarios carry a handful of events, so ddmin converges well
    inside the default budget.
    """
    predicate = fails or _default_fails
    events: List[FaultEvent] = list(scenario.events)
    attempts = 0

    def still_fails(candidate_events: List[FaultEvent]) -> bool:
        nonlocal attempts
        attempts += 1
        return predicate(scenario.with_events(candidate_events))

    # degenerate minimum: the config alone reproduces the failure
    if events and attempts < max_attempts and still_fails([]):
        return ShrinkResult(scenario.with_events([]), attempts, len(events))

    granularity = 2
    while len(events) >= 2 and attempts < max_attempts:
        chunk = max(1, len(events) // granularity)
        reduced = False
        start = 0
        while start < len(events) and attempts < max_attempts:
            candidate = events[:start] + events[start + chunk:]
            if candidate != events and still_fails(candidate):
                events = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # re-scan from the front at the same granularity
                start = 0
                chunk = max(1, len(events) // granularity)
                continue
            start += chunk
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return ShrinkResult(
        scenario.with_events(events),
        attempts,
        len(scenario.events) - len(events),
    )
