"""Tests for the structured tracer."""

import pytest

from repro.sim.tracing import TraceRecord, Tracer


def test_record_and_query():
    tracer = Tracer()
    tracer.record(10, "r0", "execute", "seq=1")
    tracer.record(20, "r1", "execute", "seq=1")
    tracer.record(30, "r0", "checkpoint", "stable at 10")
    assert len(tracer) == 3
    assert len(tracer.records(node="r0")) == 2
    assert len(tracer.records(category="execute")) == 2
    assert len(tracer.records(since=15)) == 2
    assert tracer.records(node="r1", category="execute")[0].at == 20


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.record(1, "r0", "execute", "x")
    assert len(tracer) == 0


def test_category_filter():
    tracer = Tracer()
    tracer.limit_to(["commit"])
    tracer.record(1, "r0", "execute", "x")
    tracer.record(2, "r0", "commit", "y")
    assert [r.category for r in tracer.records()] == ["commit"]


def test_limit_to_none_clears_filter():
    # regression: the docstring always promised "None = everything", but
    # limit_to(None) used to raise TypeError from set(None)
    tracer = Tracer()
    tracer.limit_to(["commit"])
    tracer.limit_to(None)
    tracer.record(1, "r0", "execute", "x")
    tracer.record(2, "r0", "commit", "y")
    assert [r.category for r in tracer.records()] == ["execute", "commit"]


def test_bounded_capacity_drops_oldest():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.record(i, "r0", "tick", str(i))
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert tracer.records()[0].detail == "2"


def test_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_counts_and_dump():
    tracer = Tracer()
    tracer.record(1, "r0", "execute", "a")
    tracer.record(2, "r0", "execute", "b")
    tracer.record(3, "r0", "checkpoint", "c")
    assert tracer.counts_by_category() == {"execute": 2, "checkpoint": 1}
    dump = tracer.dump(limit=2)
    assert "checkpoint" in dump and "b" in dump and "a" not in dump


def test_first_divergence():
    a = [TraceRecord(1, "r0", "x", "1"), TraceRecord(2, "r0", "x", "2")]
    b = [TraceRecord(1, "r0", "x", "1"), TraceRecord(2, "r0", "x", "DIFFERENT")]
    assert Tracer.first_divergence(a, b) == 1
    assert Tracer.first_divergence(a, list(a)) is None
    assert Tracer.first_divergence([], []) is None


def test_first_divergence_length_mismatch_is_a_divergence():
    # regression: a truncated trace used to be reported as "no divergence"
    a = [TraceRecord(1, "r0", "x", "1"), TraceRecord(2, "r0", "x", "2")]
    assert Tracer.first_divergence(a, a[:1]) == 1
    assert Tracer.first_divergence(a[:1], a) == 1
    assert Tracer.first_divergence([], a) == 0


def test_system_level_trace():
    from repro.core import ResilientDBSystem, SystemConfig
    from repro.sim.clock import millis

    config = SystemConfig(
        num_replicas=4,
        num_clients=32,
        client_groups=2,
        batch_size=4,
        ycsb_records=200,
        warmup=millis(20),
        measure=millis(60),
        trace=True,
    )
    system = ResilientDBSystem(config)
    system.run()
    executions = system.tracer.records(category="execute")
    assert len(executions) > 10
    # traces from every replica
    assert {record.node for record in executions} == set(system.replica_ids)
