"""In-memory key-value store — ResilientDB's default state backend.

"Employing in-memory storage can ensure faster access, which in turn can
lead to high system throughput" (§3).  Durability is delegated to the
protocol: at most f replicas fail, so the replicated in-memory copies are
the persistence story, with checkpoints for recovery.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.storage.base import KVStore, StorageCosts


class InMemoryKVStore(KVStore):
    """Dict-backed record store with modelled access costs."""

    name = "memory"

    def __init__(self, costs: Optional[StorageCosts] = None):
        self.costs = costs or StorageCosts()
        self._records: Dict[str, str] = {}
        self.reads = 0
        self.writes = 0

    def read(self, key: str) -> Tuple[Optional[str], int]:
        self.reads += 1
        return self._records.get(key), self.costs.memory_read_ns

    def write(self, key: str, value: str) -> int:
        self.writes += 1
        self._records[key] = value
        return self.costs.memory_write_ns

    def size(self) -> int:
        return len(self._records)

    def preload(self, records: Dict[str, str]) -> None:
        """Bulk-load the initial table (free of simulated cost — the paper
        initialises each replica with an identical YCSB table before the
        measurement starts)."""
        self._records.update(records)
