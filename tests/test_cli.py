"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_run_command_executes(capsys):
    code = main([
        "run",
        "--replicas", "4",
        "--clients", "64",
        "--client-groups", "4",
        "--batch-size", "8",
        "--records", "500",
        "--warmup-ms", "30",
        "--measure-ms", "60",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput=" in out
    assert "chain height:" in out
    assert "primary saturation:" in out


def test_run_with_crashes(capsys):
    code = main([
        "run",
        "--replicas", "4",
        "--clients", "32",
        "--client-groups", "2",
        "--batch-size", "4",
        "--records", "200",
        "--warmup-ms", "20",
        "--measure-ms", "40",
        "--crash-backups", "1",
    ])
    assert code == 0


FAST_RUN = [
    "run",
    "--replicas", "4",
    "--clients", "32",
    "--client-groups", "2",
    "--batch-size", "4",
    "--records", "200",
    "--warmup-ms", "20",
    "--measure-ms", "40",
]


def test_run_prints_stage_latency_breakdown(capsys):
    assert main(FAST_RUN) == 0
    out = capsys.readouterr().out
    assert "stage latency" in out
    for column in ("stage", "p50", "p99"):
        assert column in out
    for stage in ("input", "batch", "execute", "reply", "total"):
        assert stage in out


def test_run_no_spans_suppresses_stage_table(capsys):
    assert main(FAST_RUN + ["--no-spans"]) == 0
    assert "stage latency" not in capsys.readouterr().out


def test_run_observability_outputs(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    prom = tmp_path / "metrics.prom"
    js = tmp_path / "metrics.json"
    csv = tmp_path / "samples.csv"
    code = main(FAST_RUN + [
        "--trace-out", str(trace),
        "--metrics-out", str(prom),
        "--metrics-json", str(js),
        "--samples-out", str(csv),
    ])
    assert code == 0

    doc = json.loads(trace.read_text())
    assert doc["traceEvents"] and doc["displayTimeUnit"] == "ns"
    assert {e["ph"] for e in doc["traceEvents"]} >= {"M", "X"}

    prom_text = prom.read_text()
    assert "# TYPE repro_txns_completed_total counter" in prom_text
    assert "repro_stage_total_seconds_count" in prom_text

    metrics = json.loads(js.read_text())
    assert "total" in metrics["stage_latency"]

    lines = csv.read_text().splitlines()
    assert lines[0] == "time_ns,series,value"
    assert len(lines) > 1

    err = capsys.readouterr().err
    assert "wrote" in err


def test_run_rejects_nonpositive_sample_interval(capsys):
    assert main(FAST_RUN + ["--sample-interval-ms", "0"]) == 2
    assert "invalid --sample-interval-ms" in capsys.readouterr().err


def test_run_rejects_missing_output_directory(capsys):
    code = main(FAST_RUN + ["--trace-out", "/nonexistent/dir/trace.json"])
    assert code == 2
    assert "output directory does not exist" in capsys.readouterr().err


def test_run_samples_out_defaults_interval(tmp_path):
    csv = tmp_path / "samples.csv"
    assert main(FAST_RUN + ["--samples-out", str(csv)]) == 0
    # 60ms run at the 5ms default interval -> 12 sampling points
    times = {line.split(",")[0] for line in csv.read_text().splitlines()[1:]}
    assert len(times) == 12


def test_list_figures(capsys):
    assert main(["list-figures"]) == 0
    out = capsys.readouterr().out
    for figure_id in ("fig01", "fig10", "fig17"):
        assert figure_id in out


def test_unknown_figure_rejected(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_bad_protocol_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--protocol", "raft"])
