"""Generic parameter sweeps over SystemConfig.

The figure experiments are hand-curated; this module is the general tool
for exploring any knob::

    from repro.bench.sweeps import sweep
    series = sweep("batch_size", [10, 100, 1000])
    series = sweep("num_replicas", [4, 16], base=my_config)
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from repro.bench.report import Series, SeriesPoint
from repro.bench.runner import base_config, run_config
from repro.core.config import SystemConfig


def sweep(
    parameter: str,
    values: Sequence,
    base: Optional[SystemConfig] = None,
    name: Optional[str] = None,
    crash_backups: int = 0,
) -> Series:
    """Run one deployment per value of ``parameter`` and collect a series."""
    config = base or base_config()
    if not hasattr(config, parameter):
        raise AttributeError(f"SystemConfig has no field {parameter!r}")
    series = Series(name or parameter)
    for value in values:
        result = run_config(
            config.with_options(**{parameter: value}), crash_backups=crash_backups
        )
        series.points.append(
            SeriesPoint(
                x=value,
                throughput_txns_per_s=result.throughput_txns_per_s,
                latency_s=result.latency_mean_s,
                extra={
                    "p99_latency_s": result.latency_p99_s,
                    "ops_per_s": result.throughput_ops_per_s,
                    "messages": float(result.messages_sent),
                },
            )
        )
    return series


def grid(
    parameters: Dict[str, Sequence], base: Optional[SystemConfig] = None
) -> List[SystemConfig]:
    """Cartesian product of parameter values as concrete configs."""
    config = base or base_config()
    for parameter in parameters:
        if not hasattr(config, parameter):
            raise AttributeError(f"SystemConfig has no field {parameter!r}")
    names = list(parameters)
    configs = []
    for combo in itertools.product(*(parameters[name] for name in names)):
        configs.append(config.with_options(**dict(zip(names, combo))))
    return configs
