"""Tests for the periodic pipeline sampler (repro.obs.sampler)."""

import pytest

from repro.core import ResilientDBSystem, SystemConfig
from repro.obs.exporters import sampler_csv
from repro.obs.sampler import PipelineSampler, TimeSeries
from repro.sim.clock import millis


def sampled_config(**overrides):
    defaults = dict(
        num_replicas=4,
        num_clients=32,
        client_groups=2,
        batch_size=4,
        ycsb_records=200,
        warmup=millis(20),
        measure=millis(40),
        real_auth_tokens=False,
        apply_state=False,
        sample_interval=millis(5),
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


# ----------------------------------------------------------------------
# TimeSeries
# ----------------------------------------------------------------------
def test_timeseries_bounded_drops_oldest():
    series = TimeSeries("q.depth", max_points=3)
    for i in range(5):
        series.append(i * 10, float(i))
    assert len(series) == 3
    assert series.dropped == 2
    assert series.times() == [20, 30, 40]
    assert series.values() == [2.0, 3.0, 4.0]


def test_timeseries_validates_max_points():
    with pytest.raises(ValueError):
        TimeSeries("x", max_points=0)


def test_sampler_validates_interval():
    with pytest.raises(ValueError):
        PipelineSampler(object(), interval=0)


def test_config_validates_sample_interval():
    with pytest.raises(ValueError):
        SystemConfig(sample_interval=0)


# ----------------------------------------------------------------------
# sampling a real run
# ----------------------------------------------------------------------
def test_sampler_collects_expected_series():
    system = ResilientDBSystem(sampled_config())
    system.run()
    sampler = system.sampler
    assert sampler is not None
    # 60ms run, 5ms period -> 12 sampling points
    assert sampler.samples_taken == 12
    names = set(sampler.series)
    for replica_id in system.replica_ids:
        assert f"{replica_id}.batch-q.depth" in names
        assert f"{replica_id}.work-q.depth" in names
        assert f"{replica_id}.inbox.depth" in names
        assert f"{replica_id}.cpu.busy_cores" in names
    assert "net.messages_sent" in names
    # cumulative network counters never decrease inside the measurement
    # window (they are zeroed once, when warmup ends)
    sent = [
        value
        for at, value in sampler.series["net.messages_sent"].points
        if at > millis(20)
    ]
    assert sent and sent == sorted(sent)
    assert all(len(series) == 12 for series in sampler.series.values())


def test_sampler_determinism_identical_csv():
    """Two runs with the same seed must produce byte-identical CSVs."""

    def one_run():
        system = ResilientDBSystem(sampled_config(seed=7))
        system.run()
        return sampler_csv(system.sampler)

    assert one_run() == one_run()


def test_sampler_disabled_by_default():
    system = ResilientDBSystem(sampled_config(sample_interval=None))
    system.run()
    assert system.sampler is None


def test_sampler_rows_sorted():
    system = ResilientDBSystem(sampled_config())
    system.run()
    rows = system.sampler.rows()
    assert rows == sorted(rows, key=lambda row: (row[0], row[1]))
