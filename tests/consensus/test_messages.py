"""Tests for protocol message types: sizes, signable fields, batches."""


from repro.consensus.messages import (
    Checkpoint,
    ClientRequest,
    ClientResponse,
    Commit,
    CommitCertificate,
    LocalCommit,
    NewView,
    OrderRequest,
    Prepare,
    PrePrepare,
    RequestBatch,
    SpecResponse,
    ViewChange,
    make_null_batch,
)
from repro.net.message import WIRE_HEADER_BYTES
from repro.workloads import Operation, OpType, Transaction


def make_request(txns=2, padding=0):
    return ClientRequest(
        "client0",
        7,
        tuple(
            Transaction(
                "client0",
                (Operation(OpType.WRITE, f"key{i}", "value"),),
                padding_bytes=padding,
            )
            for i in range(txns)
        ),
    )


def test_client_request_size_scales_with_txns():
    small = make_request(txns=1)
    large = make_request(txns=10)
    assert large.wire_bytes() > small.wire_bytes()
    assert small.wire_bytes() > WIRE_HEADER_BYTES


def test_client_request_size_includes_padding():
    plain = make_request(txns=1)
    padded = make_request(txns=1, padding=1000)
    assert padded.wire_bytes() == plain.wire_bytes() + 1000


def test_preprepare_carries_request_weight():
    request = make_request(txns=5)
    batch = RequestBatch((request,))
    batch.digest = "d"
    preprepare = PrePrepare("r0", 0, 1, "d", batch)
    assert preprepare.wire_bytes() > batch.payload_bytes()


def test_vote_messages_are_small_and_fixed():
    prepare = Prepare("r1", 0, 1, "d" * 64)
    commit = Commit("r1", 0, 1, "d" * 64)
    assert prepare.wire_bytes() == commit.wire_bytes()
    assert prepare.wire_bytes() < 250


def test_checkpoint_size_scales_with_blocks():
    small = Checkpoint("r0", 100, "digest", blocks_included=10)
    large = Checkpoint("r0", 200, "digest", blocks_included=100)
    assert large.wire_bytes() > small.wire_bytes()


def test_signable_fields_distinguish_kind_and_content():
    prepare = Prepare("r1", 0, 1, "d")
    commit = Commit("r1", 0, 1, "d")
    assert prepare.signable_bytes() != commit.signable_bytes()
    other_view = Prepare("r1", 1, 1, "d")
    assert prepare.signable_bytes() != other_view.signable_bytes()
    other_sender = Prepare("r2", 0, 1, "d")
    assert prepare.signable_bytes() != other_sender.signable_bytes()


def test_batch_bytes_varies_with_content():
    one = RequestBatch((make_request(txns=1),))
    two = RequestBatch((make_request(txns=2),))
    assert one.batch_bytes() != two.batch_bytes()


def test_response_coalesces_request_ids():
    response = ClientResponse("r0", (1, 2, 3), 0, 9, "result")
    assert response.request_ids == (1, 2, 3)
    single = ClientResponse("r0", (1,), 0, 9, "result")
    assert response.wire_bytes() > single.wire_bytes()


def test_spec_response_matching_key_fields():
    response = SpecResponse("r0", (1,), 0, 9, "result", "history")
    fields = response.signable_fields()
    assert "history" in fields and "result" in fields


def test_view_change_and_new_view_sizes():
    view_change = ViewChange("r1", 1, 0, ((1, "d1"), (2, "d2")))
    assert view_change.wire_bytes() > ViewChange("r1", 1, 0, ()).wire_bytes()
    new_view = NewView("r1", 1, ("r0", "r1", "r2"), ((1, "d1"),))
    assert new_view.wire_bytes() > WIRE_HEADER_BYTES


def test_commit_certificate_and_local_commit():
    certificate = CommitCertificate("client0", 0, 5, "result", ("r0", "r1", "r2"))
    assert certificate.wire_bytes() > LocalCommit("r0", 0, 5).wire_bytes()


def test_order_request_includes_history():
    request = make_request()
    batch = RequestBatch((request,))
    batch.digest = "d"
    order = OrderRequest("r0", 0, 1, "d", "h1", batch)
    assert "h1" in order.signable_fields()


def test_message_ids_unique():
    first = Prepare("r1", 0, 1, "d")
    second = Prepare("r1", 0, 1, "d")
    assert first.msg_id != second.msg_id


def test_null_batch_is_empty_and_cheap():
    batch = make_null_batch()
    assert batch.payload_bytes() == 16
    assert batch.txn_count == 0
