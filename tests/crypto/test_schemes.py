"""Tests for signature schemes: real integrity + modelled cost."""

import pytest

from repro.crypto import (
    DEFAULT_COSTS,
    CmacAesScheme,
    Ed25519Scheme,
    KeyStore,
    NullScheme,
    RsaScheme,
    SchemeName,
    digest_bytes,
    digest_cost,
    make_scheme,
)
from repro.crypto.keys import UnknownIdentityError


@pytest.fixture
def keystore():
    store = KeyStore(system_seed=11)
    for identity in ("r0", "r1", "r2", "client0"):
        store.register(identity)
    return store


# ----------------------------------------------------------------------
# key store
# ----------------------------------------------------------------------
def test_keystore_deterministic_per_seed():
    a = KeyStore(1)
    a.register("r0")
    b = KeyStore(1)
    b.register("r0")
    assert a.signing_seed("r0") == b.signing_seed("r0")
    c = KeyStore(2)
    c.register("r0")
    assert a.signing_seed("r0") != c.signing_seed("r0")


def test_pair_key_symmetric(keystore):
    assert keystore.pair_key("r0", "r1") == keystore.pair_key("r1", "r0")
    assert keystore.pair_key("r0", "r1") != keystore.pair_key("r0", "r2")


def test_unknown_identity_raises(keystore):
    with pytest.raises(UnknownIdentityError):
        keystore.signing_seed("intruder")
    with pytest.raises(UnknownIdentityError):
        keystore.pair_key("r0", "intruder")


def test_register_idempotent(keystore):
    seed = keystore.signing_seed("r0")
    keystore.register("r0")
    assert keystore.signing_seed("r0") == seed


# ----------------------------------------------------------------------
# round-trips and tamper detection
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "scheme_cls", [NullScheme, Ed25519Scheme, RsaScheme, CmacAesScheme]
)
def test_roundtrip_verifies(keystore, scheme_cls):
    scheme = scheme_cls(keystore)
    token, sign_cost = scheme.authenticate(b"hello", "r0", ["r1", "r2"])
    valid, verify_cost = scheme.check(b"hello", token, "r0", "r1")
    assert valid
    assert sign_cost >= 0 and verify_cost >= 0


@pytest.mark.parametrize("scheme_cls", [Ed25519Scheme, RsaScheme, CmacAesScheme])
def test_tampered_payload_fails(keystore, scheme_cls):
    scheme = scheme_cls(keystore)
    token, _ = scheme.authenticate(b"hello", "r0", ["r1"])
    valid, _ = scheme.check(b"HELLO", token, "r0", "r1")
    assert not valid


@pytest.mark.parametrize("scheme_cls", [Ed25519Scheme, RsaScheme, CmacAesScheme])
def test_wrong_claimed_signer_fails(keystore, scheme_cls):
    scheme = scheme_cls(keystore)
    token, _ = scheme.authenticate(b"hello", "r0", ["r1"])
    valid, _ = scheme.check(b"hello", token, "r2", "r1")
    assert not valid


def test_mac_token_is_per_receiver(keystore):
    scheme = CmacAesScheme(keystore)
    token, _ = scheme.authenticate(b"msg", "r0", ["r1"])
    # r2 was not a receiver: it has no token to check
    valid, _ = scheme.check(b"msg", token, "r0", "r2")
    assert not valid


def test_missing_token_fails(keystore):
    scheme = Ed25519Scheme(keystore)
    valid, cost = scheme.check(b"msg", None, "r0", "r1")
    assert not valid
    assert cost > 0  # the receiver still spent verification effort


def test_null_scheme_accepts_anything(keystore):
    scheme = NullScheme(keystore)
    valid, cost = scheme.check(b"anything", None, "whoever", "r1")
    assert valid and cost == 0


# ----------------------------------------------------------------------
# cost model shape
# ----------------------------------------------------------------------
def test_digital_signature_broadcast_cost_is_flat(keystore):
    scheme = Ed25519Scheme(keystore)
    assert scheme.sign_cost(100, receivers=1) == scheme.sign_cost(100, receivers=32)


def test_mac_broadcast_cost_scales_with_receivers(keystore):
    scheme = CmacAesScheme(keystore)
    assert scheme.sign_cost(100, receivers=32) == 32 * scheme.sign_cost(100, receivers=1)


def test_relative_costs_match_calibration(keystore):
    """The orderings that produce the paper's Fig. 13 shape."""
    ed = Ed25519Scheme(keystore)
    rsa = RsaScheme(keystore)
    mac = CmacAesScheme(keystore)
    size = 256
    assert rsa.sign_cost(size) > 10 * ed.sign_cost(size)
    assert ed.sign_cost(size) > 10 * mac.sign_cost(size)
    assert ed.verify_cost(size) > 10 * mac.verify_cost(size)


def test_mac_cost_includes_per_byte_term(keystore):
    scheme = CmacAesScheme(keystore)
    assert scheme.sign_cost(100_000) > scheme.sign_cost(100)


def test_authenticate_reports_per_receiver_mac_cost(keystore):
    scheme = CmacAesScheme(keystore)
    _, cost_two = scheme.authenticate(b"x", "r0", ["r1", "r2"])
    _, cost_one = scheme.authenticate(b"x", "r0", ["r1"])
    assert cost_two == 2 * cost_one


# ----------------------------------------------------------------------
# hashing and factory
# ----------------------------------------------------------------------
def test_digest_is_real_sha256():
    import hashlib

    assert digest_bytes(b"abc") == hashlib.sha256(b"abc").hexdigest()


def test_digest_cost_scales_with_size():
    assert digest_cost(64_000) > digest_cost(64)
    assert digest_cost(0) == DEFAULT_COSTS.sha256_fixed_ns


def test_make_scheme_factory(keystore):
    for name, cls in [
        (SchemeName.NULL, NullScheme),
        (SchemeName.ED25519, Ed25519Scheme),
        (SchemeName.RSA, RsaScheme),
        (SchemeName.CMAC_AES, CmacAesScheme),
    ]:
        assert isinstance(make_scheme(name, keystore), cls)
    # string values accepted too
    assert isinstance(make_scheme("ed25519", keystore), Ed25519Scheme)
    with pytest.raises(ValueError):
        make_scheme("post-quantum", keystore)


def test_non_repudiation_flags(keystore):
    assert Ed25519Scheme(keystore).non_repudiation
    assert RsaScheme(keystore).non_repudiation
    assert not CmacAesScheme(keystore).non_repudiation
    assert not NullScheme(keystore).non_repudiation
