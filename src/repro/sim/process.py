"""Coroutine processes driven by the simulator.

A process wraps a generator.  Every value the generator yields is an
*effect* (see :mod:`repro.sim.events`); the kernel arranges for the process
to be resumed when the effect completes, delivering the effect's result as
the value of the ``yield`` expression.
"""

from __future__ import annotations

from typing import Any, Generator


class ProcessFailure(RuntimeError):
    """Wraps an exception that escaped a simulation process."""

    def __init__(self, process_name: str, original: BaseException):
        super().__init__(f"process {process_name!r} failed: {original!r}")
        self.original = original


class Process:
    """A running simulation process.

    Yield a ``Process`` from another process to *join* it — the joiner is
    resumed with the joined process's return value when it finishes.
    """

    __slots__ = ("sim", "generator", "name", "completion", "finished", "result")

    def __init__(self, sim, generator: Generator, name: str = ""):
        from repro.sim.events import SimEvent

        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.completion = SimEvent(sim)
        self.finished = False
        self.result: Any = None

    def resume(self, value: Any) -> None:
        """Advance the generator one step; dispatch the next effect."""
        if self.finished:
            return
        try:
            effect = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Exception as exc:
            self._finish_error(exc)
            return
        self._dispatch(effect)

    def _dispatch(self, effect: Any) -> None:
        from repro.sim.events import SimEvent, Timeout

        if isinstance(effect, int):
            self.sim.schedule(effect, self.resume, None)
        elif isinstance(effect, (Timeout, SimEvent)):
            effect._bind(self.sim, self)
        elif isinstance(effect, Process):
            effect.completion._bind(self.sim, self)
        elif hasattr(effect, "_bind"):
            effect._bind(self.sim, self)
        else:
            self._finish_error(
                TypeError(f"process {self.name!r} yielded non-effect {effect!r}")
            )

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        self.generator.close()
        self.completion.trigger(result)

    def _finish_error(self, exc: BaseException) -> None:
        self.finished = True
        self.generator.close()
        raise ProcessFailure(self.name, exc) from exc
