"""Crash-recovery / state-transfer tests (§4.7 purpose 1)."""

import pytest

from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis, seconds


@pytest.fixture
def recovery_config():
    return SystemConfig(
        num_replicas=4,
        num_clients=48,
        client_groups=4,
        batch_size=6,
        ycsb_records=300,
        warmup=millis(50),
        measure=millis(600),
        view_change_timeout=seconds(10),  # keep VC out of the picture
    )


def test_recovered_replica_catches_up(recovery_config):
    system = ResilientDBSystem(recovery_config)
    system.faults.crash_at("r3", millis(100))
    system.recover_replica("r3", at_ns=millis(300))
    system.run()
    recovered = system.replicas["r3"]
    healthy = system.replicas["r1"]
    assert recovered.recoveries_completed >= 1
    # caught up to within a small window of the healthy replicas
    assert len(recovered.executed_log) > 0.8 * len(healthy.executed_log)
    system.validate_safety()


def test_recovered_state_converges(recovery_config):
    system = ResilientDBSystem(recovery_config)
    system.faults.crash_at("r3", millis(100))
    system.recover_replica("r3", at_ns=millis(300))
    system.run()
    recovered = system.replicas["r3"]
    healthy = system.replicas["r1"]
    # identical executed prefixes imply identical digests position-wise
    common = min(len(recovered.executed_log), len(healthy.executed_log))
    assert recovered.executed_log[:common] == healthy.executed_log[:common]
    # the adopted chain is internally valid
    recovered.chain.validate()


def test_recovery_counter_in_metrics(recovery_config):
    system = ResilientDBSystem(recovery_config)
    system.faults.crash_at("r3", millis(100))
    system.recover_replica("r3", at_ns=millis(300))
    system.run()
    # warmup reset happens at 50ms, recovery at 300ms: counted
    assert system.metrics.counter("recoveries").value >= 1


def test_throughput_survives_crash_and_recovery(recovery_config):
    system = ResilientDBSystem(recovery_config)
    system.faults.crash_at("r3", millis(100))
    system.recover_replica("r3", at_ns=millis(300))
    result = system.run()
    assert result.completed_requests > 100


def test_healthy_replicas_ignore_stale_responses(recovery_config):
    """A state response offering less than we have is discarded."""
    system = ResilientDBSystem(recovery_config)
    replica = system.replicas["r1"]
    from repro.consensus.messages import StateTransferResponse

    replica._recovering = True
    replica.next_exec_sequence = 100
    stale = StateTransferResponse(
        "r2", executed_sequence=5, state_digest="d", log_slice=(),
        blocks=(), snapshot=None, snapshot_records=0, pruned_through=0,
    )
    replica._absorb_state_response(stale)
    assert replica._recovering  # not adopted
    assert replica.next_exec_sequence == 100


def test_adoption_requires_f_plus_1_matching_offers(recovery_config):
    system = ResilientDBSystem(recovery_config)
    replica = system.replicas["r1"]
    from repro.consensus.messages import StateTransferResponse

    replica._recovering = True

    def offer(sender, digest):
        return StateTransferResponse(
            sender, executed_sequence=50, state_digest=digest,
            log_slice=tuple((i, "d") for i in range(1, 51)),
            blocks=(), snapshot=None, snapshot_records=0, pruned_through=0,
        )

    replica._absorb_state_response(offer("r2", "digestA"))
    assert replica._recovering  # one offer is not enough (f=1 -> need 2)
    replica._absorb_state_response(offer("r3", "digestB"))
    assert replica._recovering  # conflicting digests never combine
    replica._absorb_state_response(offer("r0", "digestA"))
    assert not replica._recovering
    assert replica.next_exec_sequence == 51
