"""Tests for quorum arithmetic."""

import pytest

from repro.consensus import QuorumConfig


def test_for_replicas_max_faults():
    assert QuorumConfig.for_replicas(4).f == 1
    assert QuorumConfig.for_replicas(7).f == 2
    assert QuorumConfig.for_replicas(16).f == 5
    assert QuorumConfig.for_replicas(32).f == 10


def test_quorum_sizes_for_n16():
    quorum = QuorumConfig.for_replicas(16)
    assert quorum.prepare_quorum == 10
    assert quorum.commit_quorum == 11
    assert quorum.checkpoint_quorum == 11
    assert quorum.client_response_quorum == 6
    assert quorum.fast_path_quorum == 16
    assert quorum.certificate_quorum == 11


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        QuorumConfig(n=3, f=1)
    with pytest.raises(ValueError):
        QuorumConfig(n=4, f=-1)
    with pytest.raises(ValueError):
        QuorumConfig.for_replicas(3)


def test_n_greater_than_3f_plus_1_allowed():
    # quorums generalise to ceil((n+f+1)/2) so two commit quorums always
    # intersect in f+1 replicas even when n > 3f+1
    quorum = QuorumConfig(n=10, f=2)
    assert quorum.commit_quorum == 7
    assert 2 * quorum.commit_quorum - quorum.n >= quorum.f + 1


def test_fast_path_exceeds_commit_quorum():
    for n in (4, 7, 16, 32):
        quorum = QuorumConfig.for_replicas(n)
        assert quorum.fast_path_quorum == n
        assert quorum.fast_path_quorum > quorum.commit_quorum
