"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_run_command_executes(capsys):
    code = main([
        "run",
        "--replicas", "4",
        "--clients", "64",
        "--client-groups", "4",
        "--batch-size", "8",
        "--records", "500",
        "--warmup-ms", "30",
        "--measure-ms", "60",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput=" in out
    assert "chain height:" in out
    assert "primary saturation:" in out


def test_run_with_crashes(capsys):
    code = main([
        "run",
        "--replicas", "4",
        "--clients", "32",
        "--client-groups", "2",
        "--batch-size", "4",
        "--records", "200",
        "--warmup-ms", "20",
        "--measure-ms", "40",
        "--crash-backups", "1",
    ])
    assert code == 0


def test_list_figures(capsys):
    assert main(["list-figures"]) == 0
    out = capsys.readouterr().out
    for figure_id in ("fig01", "fig10", "fig17"):
        assert figure_id in out


def test_unknown_figure_rejected(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_bad_protocol_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--protocol", "raft"])
