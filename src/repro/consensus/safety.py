"""Safety-invariant checkers used by tests and property-based harnesses.

The fundamental BFT guarantee the paper leans on (§4.5–4.6): all non-faulty
replicas establish *a single common order* — the sequences of executed
batch digests at any two non-faulty replicas must be consistent prefixes of
one another, with no gaps and no divergence.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple


class SafetyViolation(AssertionError):
    """Raised when replica execution logs contradict BFT safety."""


def check_execution_consistency(
    logs: Dict[str, Sequence[Tuple[int, str]]],
    faulty: Sequence[str] = (),
) -> int:
    """Validate the executed (sequence, digest) logs of a deployment.

    ``logs`` maps replica id to its executed log, in execution order.
    Checks, for every non-faulty replica:

    1. execution order equals sequence order, starting at 1, with no gaps
       and no duplicates;
    2. any two replicas agree on the digest of every sequence both
       executed (prefix consistency).

    Returns the length of the shortest non-faulty log (the common prefix
    length proven identical).
    """
    non_faulty = {rid: log for rid, log in logs.items() if rid not in set(faulty)}
    if not non_faulty:
        raise SafetyViolation("no non-faulty logs to check")

    for rid, log in non_faulty.items():
        expected = 1
        for sequence, _digest in log:
            if sequence != expected:
                raise SafetyViolation(
                    f"replica {rid} executed sequence {sequence}, expected "
                    f"{expected} (out-of-order or gap)"
                )
            expected += 1

    reference: Dict[int, Tuple[str, str]] = {}
    for rid, log in non_faulty.items():
        for sequence, digest in log:
            if sequence in reference:
                ref_rid, ref_digest = reference[sequence]
                if digest != ref_digest:
                    raise SafetyViolation(
                        f"divergence at sequence {sequence}: replica {ref_rid} "
                        f"executed {ref_digest!r}, replica {rid} executed "
                        f"{digest!r}"
                    )
            else:
                reference[sequence] = (rid, digest)

    return min(len(log) for log in non_faulty.values())


def check_state_convergence(states: Dict[str, Dict[str, str]], faulty=()) -> None:
    """All non-faulty replicas that executed the same prefix must hold the
    same record store contents."""
    items = [
        (rid, state) for rid, state in states.items() if rid not in set(faulty)
    ]
    if len(items) < 2:
        return
    ref_rid, reference = items[0]
    for rid, state in items[1:]:
        if state != reference:
            differing = {
                key
                for key in set(reference) | set(state)
                if reference.get(key) != state.get(key)
            }
            sample = sorted(differing)[:5]
            raise SafetyViolation(
                f"state divergence between {ref_rid} and {rid} on "
                f"{len(differing)} keys (sample: {sample})"
            )
