"""Post-run flow-control invariants.

Overload protection is only safe if shedding never touches a request the
protocol has already committed to ordering, and if no client is left in
the dark about a shed request.  :func:`check_flow_invariants` verifies
both against a finished system; the fuzz oracle bank calls it for every
overload scenario.
"""

from __future__ import annotations

from typing import List


def check_flow_invariants(system) -> List[str]:
    """Return human-readable violations (empty list = all invariants hold).

    1. *No shed after sequencing*: a request that reached a proposal (was
       assigned a sequence number) must never be evicted from a queue.
       Replicas tripwire this at shed time into ``flow.shed_sequenced``.
    2. *No silent sheds*: every request key a replica shed must have been
       sent a busy-nack, or have completed anyway (another replica, or a
       retransmission, carried it through).
    """
    problems: List[str] = []
    completed_by_group = {}
    for group in system.client_groups:
        done = {record[0] for record in group.completion_log}
        # without completion records, fall back to "issued and no longer
        # pending" — conservative, since pending requests are not done
        done |= set(range(group.next_request_id)) - set(group.pending)
        completed_by_group[group.name] = done

    for replica_id, replica in system.replicas.items():
        flow = getattr(replica, "flow", None)
        if flow is None:
            continue
        for key in flow.shed_sequenced:
            problems.append(
                f"{replica_id} shed request {key} after sequence assignment"
            )
        for key in flow.shed_keys:
            if key in flow.nacked_keys:
                continue
            group_name, request_id = key
            if request_id in completed_by_group.get(group_name, ()):
                continue
            problems.append(
                f"{replica_id} shed request {key} with no NACK and no reply"
            )
    return problems
