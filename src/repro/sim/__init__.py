"""Deterministic discrete-event simulation (DES) kernel.

This package is the substrate on which the whole reproduction runs.  Real
threads in Python cannot exhibit the behaviour the paper measures (the GIL
serialises CPU-bound pipeline stages), so replicas, their pipeline threads,
clients and the network are all modelled as coroutine *processes* scheduled
on a simulated clock.  Simulated threads compete for simulated CPU cores,
which is what lets the thread-saturation and core-count experiments
(Figures 9 and 16 of the paper) reproduce on any host machine.

Public surface:

- :class:`~repro.sim.kernel.Simulator` — the event loop.
- :class:`~repro.sim.process.Process` and the effect objects processes yield
  (:class:`~repro.sim.events.Timeout`, :class:`~repro.sim.events.SimEvent`).
- :class:`~repro.sim.queues.SimQueue` — FIFO channels between stages.
- :class:`~repro.sim.resources.CpuScheduler` — simulated multi-core CPU with
  per-thread busy-time accounting.
- :mod:`~repro.sim.clock` — time-unit helpers (the clock is integer
  nanoseconds).
- :class:`~repro.sim.metrics.MetricsRegistry` — counters, histograms and
  busy-time gauges with warmup-window resets.
"""

from repro.sim.clock import micros, millis, nanos, seconds, to_seconds
from repro.sim.events import SimEvent, Timeout, TIMEOUT
from repro.sim.kernel import Simulator
from repro.sim.metrics import (
    BusyTracker,
    Counter,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.sim.process import Process
from repro.sim.queues import SimQueue
from repro.sim.resources import CpuScheduler, Resource
from repro.sim.rng import DeterministicRNG

__all__ = [
    "BusyTracker",
    "Counter",
    "CpuScheduler",
    "DeterministicRNG",
    "LatencyHistogram",
    "MetricsRegistry",
    "Process",
    "Resource",
    "SimEvent",
    "SimQueue",
    "Simulator",
    "TIMEOUT",
    "Timeout",
    "micros",
    "millis",
    "nanos",
    "seconds",
    "to_seconds",
]
