"""System configuration: every knob the paper's eleven questions turn.

Defaults reproduce the paper's standard setup (§5.1): PBFT, batches of 100
transactions, checkpoints every 10K transactions, ED25519 between clients
and replicas, CMAC+AES between replicas, in-memory storage, 8-core replica
machines, one worker-thread, one execute-thread and two batch-threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.crypto.costs import CryptoCosts, DEFAULT_COSTS
from repro.crypto.schemes import SchemeName
from repro.sim.clock import millis, seconds
from repro.storage.base import StorageCosts
from repro.storage.blockchain import CertificationMode


@dataclass(frozen=True)
class WorkCosts:
    """Simulated CPU nanoseconds for non-crypto pipeline work items.

    Calibrated jointly with :class:`~repro.crypto.costs.CryptoCosts` so the
    standard configuration reproduces the paper's headline throughput
    (§5, ~175K txns/s at 32 replicas on 8 cores) and per-thread saturation
    pattern (Fig. 9).  See EXPERIMENTS.md for the calibration record.
    """

    #: input-thread: classify one inbound message and route it to a queue
    input_dispatch_ns: int = 1_000
    #: input-thread: assign a sequence number to a client request (§4.3)
    sequence_assign_ns: int = 300
    #: batch-thread: per-transaction cost of assembling a batch
    batch_per_txn_ns: int = 600
    #: batch-thread: per-operation cost (resource allocation per op —
    #: §5.4 attributes the multi-op decline to batch-threads "creating
    #: batching and allocating resources for transaction")
    batch_per_op_ns: int = 2_000
    #: batch-thread: fixed per-batch assembly cost
    batch_fixed_ns: int = 2_000
    #: worker-thread: protocol bookkeeping per handled message (state
    #: lookup, vote accounting, allocation churn)
    worker_message_ns: int = 6_000
    #: execute-thread: per-operation cost beyond the record-store access
    execute_op_ns: int = 1_000
    #: execute-thread: fixed per-batch cost (Execute message handling)
    execute_fixed_ns: int = 3_000
    #: execute-thread: building one client-response message
    response_create_ns: int = 800
    #: execute-thread: assembling a block and appending it to the chain
    block_create_ns: int = 1_500
    #: output-thread: handing one message to the NIC (syscall-ish)
    output_send_ns: int = 1_500
    #: checkpoint-thread: processing one checkpoint vote
    checkpoint_vote_ns: int = 2_000


@dataclass(frozen=True)
class SystemConfig:
    """Full description of one deployment + workload + measurement run."""

    # -- deployment ----------------------------------------------------
    protocol: str = "pbft"  # "pbft" | "zyzzyva" | "poe" | "rcc" (extensions)
    num_replicas: int = 16
    cores_per_replica: int = 8
    #: None → maximum f for the replica count
    faults_tolerated: Optional[int] = None
    #: concurrent consensus instances for multi-primary RCC (protocol
    #: "rcc"): instance k's view-0 primary is replica k.  Ignored by the
    #: single-primary protocols.
    num_primaries: int = 1
    #: how often an RCC lane leader runs its balance pass, committing
    #: null-batch skip certificates for lanes that fell behind the merge
    rcc_balance_interval: int = millis(2)

    # -- pipeline (Figures 6a/6b) ---------------------------------------
    batch_threads: int = 2  # "B" in Fig. 8; 0 = worker does batching
    execute_threads: int = 1  # "E" in Fig. 8; 0 = worker executes inline
    input_threads: int = 3  # 1 client + 2 replica collectors (§4.1)
    output_threads: int = 2

    # -- workload (§5.1) -------------------------------------------------
    num_clients: int = 32_000
    client_groups: int = 8
    #: transactions per client request (1 = the paper's standard: the
    #: primary aggregates; >1 models client-side burst batching, §4.2)
    client_batch_txns: int = 1
    #: transactions the primary packs into one consensus batch (Fig. 10)
    batch_size: int = 100
    ops_per_txn: int = 1  # Fig. 11
    payload_padding_bytes: int = 0  # Fig. 12
    #: how long a batch-thread waits for its batch to fill before
    #: proposing a partial one.  Bounds latency at low load; under load
    #: batches always fill.  (Without it, medium loads degenerate into
    #: near-empty batches and consensus overhead explodes.)
    batch_fill_timeout: int = millis(2)
    ycsb_records: int = 600_000
    ycsb_theta: float = 0.99
    write_fraction: float = 1.0

    # -- cryptography (Fig. 13) ------------------------------------------
    client_scheme: SchemeName = SchemeName.ED25519
    replica_scheme: SchemeName = SchemeName.CMAC_AES

    # -- storage / chain (Fig. 14, §4.6, §4.7) ---------------------------
    storage_backend: str = "memory"  # "memory" | "sqlite"
    certification: CertificationMode = CertificationMode.COMMIT_CERTIFICATE
    #: checkpoint period in *transactions* ("once per 10K transactions")
    checkpoint_txns: int = 10_000
    buffer_pool: bool = True
    buffer_pool_capacity: int = 4_096

    # -- design ablations -------------------------------------------------
    #: §4.5 out-of-order consensus; False serialises the primary to one
    #: outstanding consensus at a time (the ablation bench's baseline)
    out_of_order: bool = True
    #: §4.3 ablation: hash each request individually instead of hashing
    #: one string representation of the whole batch
    per_request_digests: bool = False
    #: Fig. 7 upper-bound mode: no consensus, primary answers directly
    consensus_enabled: bool = True
    #: Fig. 7 "No Execution" vs "Execution"
    execution_enabled: bool = True

    # -- network ----------------------------------------------------------
    one_way_latency_us: float = 100.0
    #: effective per-VM goodput.  GCP c2-standard-8 is rated 16 Gbps, but
    #: sustained many-stream TCP goodput lands well below line rate; 7 Gbps
    #: reproduces where the message-size experiment becomes network-bound
    nic_gbps: float = 7.0

    # -- timers -----------------------------------------------------------
    view_change_timeout: int = seconds(5)
    #: how long a Zyzzyva client waits for all 3f+1 responses before the
    #: commit-certificate fallback ("finding an optimal amount of time a
    #: client should wait is a hard problem", §5.10)
    zyzzyva_client_timeout: int = seconds(4)

    #: PBFT client retransmission period; None disables the timer (the
    #: steady-state experiments never need it — enable for failure tests)
    client_retransmit: Optional[int] = None
    #: how often a recovering replica re-requests state transfer until it
    #: has caught up past every execution gap
    state_transfer_retry: int = millis(50)

    # -- overload protection (repro.flow) ----------------------------------
    #: back-pressure policy for bounded pipeline queues: "block" parks the
    #: producer, "shed_oldest" evicts the oldest queued item (NACKing shed
    #: client requests), "reject" refuses the new arrival with a busy-nack
    queue_policy: str = "block"
    #: per-stage queue bounds; None leaves a queue unbounded (the default,
    #: matching the paper's deployment).  The work-queue bound applies to
    #: client requests only — protocol messages are never shed.
    batch_queue_capacity: Optional[int] = None
    work_queue_capacity: Optional[int] = None
    checkpoint_queue_capacity: Optional[int] = None
    output_queue_capacity: Optional[int] = None
    inbox_capacity: Optional[int] = None
    #: primary admission control: cap consensus instances proposed but not
    #: yet executed / requests admitted per client group; requests over a
    #: cap get a busy-nack instead of queueing.  None disables the cap.
    admission_max_inflight: Optional[int] = None
    admission_max_per_client: Optional[int] = None
    #: client AIMD pending window: initial size (None → every logical
    #: client in flight, i.e. no windowing until a NACK shrinks it)
    client_window_initial: Optional[int] = None
    client_window_min: int = 1
    client_window_additive: int = 1
    client_window_decrease: float = 0.5
    #: retransmission backoff: delay(n) = min(base * factor**n, max) plus
    #: a deterministic jitter fraction; base is ``client_retransmit``
    retransmit_backoff_factor: float = 2.0
    retransmit_backoff_max: Optional[int] = None
    retransmit_jitter: float = 0.1

    # -- measurement --------------------------------------------------------
    warmup: int = millis(150)
    measure: int = millis(250)
    seed: int = 1

    # -- fidelity / speed trade-offs ------------------------------------------
    #: compute and verify real HMAC tokens on every message (integrity is
    #: then genuinely checked end to end).  Benchmarks may disable to save
    #: host CPU; simulated costs are charged either way.
    real_auth_tokens: bool = True
    #: apply operations to the record store for real (state convergence is
    #: then checkable); costs are charged either way.
    apply_state: bool = True
    #: collect a structured event trace (executions, view changes,
    #: checkpoints, recoveries) for replay debugging — see
    #: :mod:`repro.sim.tracing`
    trace: bool = False
    #: record every completed client request's (request id, sequence,
    #: result digest) on its :class:`~repro.core.clientmgr.ClientGroup` so
    #: the reply ↔ executed-log oracle (:mod:`repro.fuzz.oracles`) can
    #: cross-check replies against replica logs.  Off by default to keep
    #: long benchmark runs from accumulating per-request records.
    record_completions: bool = False

    # -- observability (repro.obs) --------------------------------------------
    #: stamp every client request at each pipeline hand-off and aggregate
    #: per-stage latency histograms (ExperimentResult.stage_latency) — see
    #: :mod:`repro.obs.spans`.  Stamps record timestamps only, so enabling
    #: spans never changes simulated results.
    lifecycle_spans: bool = False
    #: sample queue depths / CPU / network counters every this many ticks
    #: into bounded time series (None disables the sampler) — see
    #: :mod:`repro.obs.sampler`
    sample_interval: Optional[int] = None
    #: retain up to this many finished spans for Chrome-trace export
    #: (0 = aggregate only; export needs retained spans)
    span_keep_finished: int = 0

    # -- cost models ---------------------------------------------------------
    work_costs: WorkCosts = field(default_factory=WorkCosts)
    crypto_costs: CryptoCosts = field(default_factory=lambda: DEFAULT_COSTS)
    storage_costs: StorageCosts = field(default_factory=StorageCosts)

    # ------------------------------------------------------------------
    def __post_init__(self):
        if self.protocol not in ("pbft", "zyzzyva", "poe", "rcc"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.num_replicas < 4:
            raise ValueError("BFT needs at least 4 replicas")
        if not 1 <= self.num_primaries <= self.num_replicas:
            raise ValueError("num_primaries must be in [1, num_replicas]")
        if self.rcc_balance_interval < 1:
            raise ValueError("rcc_balance_interval must be >= 1 tick")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.client_batch_txns < 1:
            raise ValueError("client_batch_txns must be >= 1")
        if self.num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        if self.client_groups < 1 or self.client_groups > self.num_clients:
            raise ValueError("client_groups must be in [1, num_clients]")
        if self.storage_backend not in ("memory", "sqlite"):
            raise ValueError(f"unknown storage backend {self.storage_backend!r}")
        if self.input_threads < 1 or self.output_threads < 1:
            raise ValueError("need at least one input and one output thread")
        if self.batch_threads < 0 or self.execute_threads < 0:
            raise ValueError("thread counts must be >= 0")
        if self.execute_threads > 1:
            # §6: "having multiple execution-threads can cause data-conflicts"
            raise ValueError("at most one execute-thread is supported")
        if self.cores_per_replica < 1:
            raise ValueError("cores_per_replica must be >= 1")
        if self.sample_interval is not None and self.sample_interval < 1:
            raise ValueError("sample_interval must be >= 1 tick")
        if self.span_keep_finished < 0:
            raise ValueError("span_keep_finished must be >= 0")
        from repro.sim.queues import QUEUE_POLICIES

        if self.queue_policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue policy {self.queue_policy!r}; "
                f"expected one of {QUEUE_POLICIES}"
            )
        for knob in (
            "batch_queue_capacity",
            "work_queue_capacity",
            "checkpoint_queue_capacity",
            "output_queue_capacity",
            "inbox_capacity",
            "admission_max_inflight",
            "admission_max_per_client",
            "client_window_initial",
            "retransmit_backoff_max",
        ):
            value = getattr(self, knob)
            if value is not None and value < 1:
                raise ValueError(f"{knob} must be >= 1, got {value}")
        if self.client_window_min < 1:
            raise ValueError("client_window_min must be >= 1")
        if self.client_window_additive < 1:
            raise ValueError("client_window_additive must be >= 1")
        if not 0.0 < self.client_window_decrease < 1.0:
            raise ValueError("client_window_decrease must be in (0, 1)")
        if self.retransmit_backoff_factor < 1.0:
            raise ValueError("retransmit_backoff_factor must be >= 1.0")
        if not 0.0 <= self.retransmit_jitter <= 1.0:
            raise ValueError("retransmit_jitter must be in [0, 1]")

    # ------------------------------------------------------------------
    @property
    def f(self) -> int:
        if self.faults_tolerated is not None:
            return self.faults_tolerated
        return (self.num_replicas - 1) // 3

    @property
    def checkpoint_batches(self) -> int:
        """Checkpoint period in batches (the execute-thread's unit)."""
        return max(1, self.checkpoint_txns // max(1, self.batch_size))

    @property
    def clients_per_group(self) -> int:
        return self.num_clients // self.client_groups

    def with_options(self, **overrides) -> "SystemConfig":
        """Functional update — experiments derive variants from a base."""
        return replace(self, **overrides)
