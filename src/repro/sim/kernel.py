"""The discrete-event simulator core.

The :class:`Simulator` owns a single binary-heap event queue of
``(time, sequence, callback, args)`` entries.  The sequence number breaks
ties between events scheduled for the same tick, making runs fully
deterministic: the same program against the same seed produces the same
trace, byte for byte.  Nothing in the kernel reads the wall clock or OS
entropy.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.process import Process
from repro.sim.rng import DeterministicRNG


class SimulationError(RuntimeError):
    """Raised when a simulation process fails or the kernel is misused."""


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator(seed=7)

        def worker():
            yield Timeout(micros(10))
            ...

        sim.spawn(worker())
        sim.run(until=seconds(1))
    """

    def __init__(self, seed: int = 0):
        self.now: int = 0
        self.rng = DeterministicRNG(seed)
        self._heap: list = []
        self._sequence = 0
        self._live_processes = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + int(delay), self._sequence, fn, args))

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator; it begins running at the
        current simulation time (after already-queued events for this tick)."""
        process = Process(self, generator, name=name)
        self._live_processes += 1
        process.completion.on_trigger(self._process_finished)
        self.schedule(0, process.resume, None)
        return process

    def _process_finished(self, _value: Any) -> None:
        self._live_processes -= 1

    def stop(self) -> None:
        """Halt the simulation after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Run events in time order.

        With ``until`` set, runs until the clock would pass ``until`` ticks
        (the clock is then left exactly at ``until``).  Without it, runs
        until no events remain.  Returns the final clock value.
        """
        self._stopped = False
        heap = self._heap
        while heap and not self._stopped:
            when, _seq, fn, args = heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(heap)
            self.now = when
            fn(*args)
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def peek(self) -> Optional[int]:
        """Time of the next pending event, or None if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    @property
    def pending_events(self) -> int:
        return len(self._heap)
