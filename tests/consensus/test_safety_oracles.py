"""Direct unit tests of the standalone safety/liveness oracles.

These checkers (``repro.consensus.safety``) take plain data, so each
invariant is pinned down here against hand-built histories before the
fuzzer composes them into its oracle bank (``repro.fuzz.oracles``).
"""

import pytest

from repro.consensus.safety import (
    LivenessViolation,
    SafetyViolation,
    check_bounded_liveness,
    check_checkpoint_consistency,
)


# ----------------------------------------------------------------------
# checkpoint consistency
# ----------------------------------------------------------------------
def test_checkpoint_agreement_passes_and_counts():
    histories = {
        "r0": {10: "dA", 20: "dB"},
        "r1": {10: "dA", 20: "dB", 30: "dC"},
        "r2": {10: "dA"},
    }
    assert check_checkpoint_consistency(histories) == 3


def test_checkpoint_divergence_detected():
    histories = {
        "r0": {10: "dA", 20: "dB"},
        "r1": {10: "dA", 20: "dX"},
    }
    with pytest.raises(SafetyViolation, match="sequence 20"):
        check_checkpoint_consistency(histories)


def test_checkpoint_faulty_replicas_excluded():
    histories = {
        "r0": {10: "dA"},
        "r1": {10: "dA"},
        "r2": {10: "lying"},
    }
    with pytest.raises(SafetyViolation):
        check_checkpoint_consistency(histories)
    assert check_checkpoint_consistency(histories, faulty=("r2",)) == 1


def test_checkpoint_disjoint_sequences_never_conflict():
    # replicas at different checkpoint cadences share no sequence; there
    # is nothing to cross-check, and that is not a violation
    histories = {"r0": {10: "dA"}, "r1": {20: "dB"}}
    assert check_checkpoint_consistency(histories) == 2


def test_checkpoint_empty_histories_ok():
    assert check_checkpoint_consistency({}) == 0
    assert check_checkpoint_consistency({"r0": {}, "r1": {}}) == 0


# ----------------------------------------------------------------------
# bounded liveness
# ----------------------------------------------------------------------
def test_liveness_caught_up_passes_and_reports_highest():
    committed = {"r0": 40, "r1": 38, "r2": 40}
    executed = {"r0": 40, "r1": 40, "r2": 41}
    assert check_bounded_liveness(committed, executed) == 40


def test_liveness_wedged_replica_detected():
    committed = {"r0": 40, "r1": 40}
    executed = {"r0": 40, "r1": 12}  # parked behind an execution gap
    with pytest.raises(LivenessViolation, match="r1"):
        check_bounded_liveness(committed, executed)


def test_liveness_max_lag_tolerance():
    committed = {"r0": 40}
    executed = {"r0": 38}
    with pytest.raises(LivenessViolation):
        check_bounded_liveness(committed, executed)
    assert check_bounded_liveness(committed, executed, max_lag=2) == 40


def test_liveness_faulty_replicas_exempt():
    committed = {"r0": 40, "r1": 40}
    executed = {"r0": 40, "r1": 0}
    with pytest.raises(LivenessViolation):
        check_bounded_liveness(committed, executed)
    # a crashed/byzantine replica is allowed to be arbitrarily behind
    assert check_bounded_liveness(committed, executed, faulty=("r1",)) == 40


def test_liveness_missing_executed_entry_counts_as_zero():
    with pytest.raises(LivenessViolation):
        check_bounded_liveness({"r0": 5}, {})


def test_liveness_empty_deployment_passes():
    assert check_bounded_liveness({}, {}) == 0
