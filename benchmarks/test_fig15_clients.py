"""Figure 15: scaling closed-loop clients.

Paper claims: throughput grows until ~32K clients then flattens (a
further 16K → 80K buys only +1.44%), while latency keeps growing — about
5× for 5× the clients past saturation (queueing, not processing).
"""

from repro.bench import fig15_clients


def test_fig15_clients(benchmark, record_figure):
    figure = benchmark.pedantic(fig15_clients, rounds=1, iterations=1)
    record_figure(figure)
    series = figure.get("PBFT 2B 1E")
    throughputs = series.throughputs()
    latencies = series.latencies()
    # shape: throughput never falls as clients grow, and flattens once
    # saturated (our simulated latency floor is lower than the testbed's,
    # so the knee sits further left than the paper's 32K)
    assert throughputs[1] >= 0.98 * throughputs[0]
    saturated = throughputs[2:]
    assert max(saturated) < 1.15 * min(saturated)
    # shape: latency keeps growing ~linearly with clients past saturation
    xs = series.xs()
    ratio_clients = xs[-1] / xs[2]
    ratio_latency = latencies[-1] / max(1e-9, latencies[2])
    assert ratio_latency > 0.6 * ratio_clients
