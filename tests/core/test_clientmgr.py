"""Tests for the closed-loop client manager."""


from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis, seconds


def test_closed_loop_keeps_in_flight_constant(small_config):
    system = ResilientDBSystem(small_config)
    system.run()
    for group in system.client_groups:
        # every logical client has exactly one request outstanding
        assert len(group.pending) == group.logical_clients


def test_clients_split_across_groups():
    config = SystemConfig(
        num_replicas=4,
        num_clients=10,
        client_groups=3,
        batch_size=4,
        ycsb_records=100,
        warmup=millis(10),
        measure=millis(20),
    )
    system = ResilientDBSystem(config)
    sizes = [group.logical_clients for group in system.client_groups]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1


def test_request_ids_unique_per_group(small_config):
    system = ResilientDBSystem(small_config)
    system.run()
    group = system.client_groups[0]
    assert group.next_request_id >= group.completed_requests


def test_latency_recorded_per_completion(small_config):
    system = ResilientDBSystem(small_config)
    result = system.run()
    histogram = system.metrics.histogram("request_latency")
    assert histogram.count == result.completed_requests
    assert histogram.mean_seconds() > 0


def test_pbft_retransmission_reaches_new_primary():
    """Crash the primary: without retransmission clients stall forever;
    with it, requests reach the new primary after the view change."""
    config = SystemConfig(
        num_replicas=4,
        num_clients=16,
        client_groups=2,
        batch_size=4,
        ycsb_records=200,
        warmup=millis(20),
        measure=seconds(4),
        view_change_timeout=millis(200),
        client_retransmit=millis(400),
    )
    system = ResilientDBSystem(config)
    system.crash_primary(at_ns=millis(100))
    result = system.run()
    assert result.completed_requests > 0
    # survivors moved to view 1
    for rid in ("r1", "r2", "r3"):
        assert system.replicas[rid].engine.view >= 1
    system.validate_safety()


def test_zyzzyva_timeout_is_harmless_when_healthy(small_config):
    config = small_config.with_options(
        protocol="zyzzyva", zyzzyva_client_timeout=millis(5)
    )
    system = ResilientDBSystem(config)
    result = system.run()
    # responses normally beat even a tight timer at this scale; any that
    # don't still complete through the certificate path
    assert result.completed_requests > 100
    system.validate_safety()


def test_group_workloads_are_independent_streams(small_config):
    system = ResilientDBSystem(small_config)
    keys_per_group = []
    for group in system.client_groups[:2]:
        txn = group.workload.next_transaction(group.name)
        keys_per_group.append(txn.ops[0].key)
    # different RNG forks -> almost surely different first keys
    assert keys_per_group[0] != keys_per_group[1]


def test_retransmit_timers_cancelled_on_completion():
    """A completed request's retransmit timer must never fire again —
    cancellation is explicit, not just a no-op lookup on a popped id."""
    config = SystemConfig(
        num_replicas=4,
        num_clients=8,
        client_groups=2,
        batch_size=4,
        ycsb_records=100,
        warmup=millis(10),
        measure=millis(40),
        client_retransmit=millis(2),
    )
    system = ResilientDBSystem(config)
    stale_firings = []
    for group in system.client_groups:
        original = group._on_retransmit

        def wrapper(request_id, request, _group=group, _original=original):
            if request_id not in _group.pending:
                stale_firings.append((_group.name, request_id))
            else:
                _original(request_id, request)

        group._on_retransmit = wrapper
    result = system.run()
    assert result.completed_requests > 0
    # with ~1ms completion latency, every 2ms timer belongs to an already
    # answered request; cancellation means none of them ever fires
    assert stale_firings == []


def test_no_duplicate_completion_after_quorum():
    """Force real retransmissions (timer below the round-trip) and check
    a retransmitted request still completes exactly once, with replies
    consistent with what replicas executed."""
    config = SystemConfig(
        num_replicas=4,
        num_clients=64,
        client_groups=2,
        batch_size=8,
        ycsb_records=200,
        warmup=millis(10),
        measure=millis(40),
        client_retransmit=millis(1),
        record_completions=True,
    )
    system = ResilientDBSystem(config)
    retransmissions = []
    for group in system.client_groups:
        original = group._on_retransmit

        def wrapper(request_id, request, _group=group, _original=original):
            if request_id in _group.pending:
                retransmissions.append(request_id)
            _original(request_id, request)

        group._on_retransmit = wrapper
    result = system.run()
    assert result.completed_requests > 0
    # the tight timer genuinely retransmitted in-flight requests...
    assert retransmissions
    # ...yet no request completed twice, and replies match execution
    for group in system.client_groups:
        completed_ids = [record[0] for record in group.completion_log]
        assert len(completed_ids) == len(set(completed_ids))
    system.validate_safety()


def test_aimd_window_limits_in_flight_requests():
    config = SystemConfig(
        num_replicas=4,
        num_clients=32,
        client_groups=2,
        batch_size=4,
        ycsb_records=100,
        warmup=millis(10),
        measure=millis(30),
        client_window_initial=2,
    )
    system = ResilientDBSystem(config)
    result = system.run()
    assert result.completed_requests > 0
    for group in system.client_groups:
        # the window bounded concurrency below the logical-client count
        assert len(group.pending) <= group.window.size
        # healthy network, no congestion: additive increase opened it up
        assert group.window.size > 2
        assert group.window.decreases == 0
