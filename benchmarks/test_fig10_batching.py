"""Figure 10: batch size 1 → 5000 at 16 replicas.

Paper claims: throughput rises until ~1000 txns/batch then falls by 3000+;
batching buys up to 66× throughput and −98.4% latency.
"""

from repro.bench import fig10_batching


def test_fig10_batching(benchmark, record_figure):
    figure = benchmark.pedantic(fig10_batching, rounds=1, iterations=1)
    record_figure(figure)
    series = figure.get("PBFT 2B 1E")
    throughputs = dict(zip(series.xs(), series.throughputs()))
    latencies = dict(zip(series.xs(), series.latencies()))
    # shape: steep climb, a plateau through the 100–1000 regime, then a
    # decline at over-batching (the 100 vs 1000 ordering within the
    # plateau is within noise in this model; the paper's peak is at 1000)
    assert throughputs[100] > 10 * throughputs[1]
    assert throughputs[1000] > 0.95 * throughputs[100]
    best = max(throughputs.values())
    assert throughputs[5000] < 0.9 * best
    # scale: the gain from batching is enormous (paper: up to 66x)
    gain = max(series.throughputs()) / max(1.0, throughputs[1])
    assert gain > 20
    # latency falls with batching (paper: -98.4%).  At batch=1 the system
    # is so slow that only the earliest requests complete inside the
    # window, censoring the measured latency downward — so this check is
    # directional rather than matching the paper's full ratio.
    assert latencies[1000] < 0.6 * latencies[1]
