"""Structured event tracing for debugging simulations.

A :class:`Tracer` collects typed, timestamped records (protocol events,
queue transitions, executions) into a bounded ring.  Deterministic runs
plus traces make failures replayable: re-run with the same seed, diff the
traces, find the first divergence.

Tracing is opt-in and costs nothing when disabled (the ``enabled`` check
is a single attribute read; hot paths guard on it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    at: int  # simulation ticks
    node: str
    category: str  # e.g. "send", "deliver", "commit", "execute"
    detail: str

    def format(self) -> str:
        return f"[{self.at:>15}] {self.node:<12} {self.category:<10} {self.detail}"


class Tracer:
    """Bounded in-memory trace buffer with category filters."""

    def __init__(self, capacity: int = 100_000, enabled: bool = True):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._categories: Optional[set] = None
        self.dropped = 0

    def limit_to(self, categories: Optional[Iterable[str]]) -> None:
        """Record only the given categories (None = everything)."""
        self._categories = None if categories is None else set(categories)

    def record(self, at: int, node: str, category: str, detail: str) -> None:
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(TraceRecord(at, node, category, detail))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def records(
        self,
        node: Optional[str] = None,
        category: Optional[str] = None,
        since: int = 0,
    ) -> List[TraceRecord]:
        return [
            record
            for record in self._records
            if (node is None or record.node == node)
            and (category is None or record.category == category)
            and record.at >= since
        ]

    def __len__(self) -> int:
        return len(self._records)

    def counts_by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.category] = counts.get(record.category, 0) + 1
        return counts

    def dump(self, limit: int = 200) -> str:
        """The last ``limit`` records, formatted for reading."""
        tail = list(self._records)[-limit:]
        return "\n".join(record.format() for record in tail)

    @staticmethod
    def first_divergence(
        ours: List[TraceRecord], theirs: List[TraceRecord]
    ) -> Optional[int]:
        """Index of the first differing record between two traces (the
        replay-debugging primitive), or None when they are identical.

        Traces of different lengths diverge where the shorter one ends —
        a missing tail is a divergence, not agreement.
        """
        for index, (a, b) in enumerate(zip(ours, theirs)):
            if a != b:
                return index
        if len(ours) != len(theirs):
            return min(len(ours), len(theirs))
        return None
