"""Measurement instruments for experiments.

The paper's methodology is: warm the system up, then measure throughput and
latency over a fixed window.  :class:`MetricsRegistry` supports that
protocol directly — every instrument can be reset when the warmup window
ends, and throughput is computed over the post-reset interval.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, List, Optional

from repro.sim.clock import NANOS_PER_SEC


class Counter:
    """A monotonically increasing event counter (resettable per window)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class LatencyHistogram:
    """Collects latency samples (in clock ticks) and reports summary stats.

    By default samples are kept raw: experiments are short enough (≤ a few
    hundred thousand samples) that exact percentiles are affordable and
    simpler than HDR-style bucketing.  For unbounded runs, ``max_samples``
    caps memory with a deterministic reservoir (seeded from the histogram
    name, so identical runs sample identically): count, sum/mean and max
    stay exact; percentiles come from the reservoir.
    """

    __slots__ = ("name", "samples", "max_samples", "_total", "_sum", "_max", "_rng")

    def __init__(self, name: str, max_samples: Optional[int] = None):
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self.samples: List[int] = []
        self._total = 0
        self._sum = 0
        self._max = 0
        self._rng: Optional[random.Random] = None
        if max_samples is not None:
            self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def record(self, latency: int) -> None:
        self._total += 1
        self._sum += latency
        if latency > self._max:
            self._max = latency
        if self.max_samples is None or len(self.samples) < self.max_samples:
            self.samples.append(latency)
            return
        # Vitter's algorithm R: each of the _total samples has an equal
        # max_samples/_total chance of being in the reservoir
        slot = self._rng.randrange(self._total)
        if slot < self.max_samples:
            self.samples[slot] = latency

    def reset(self) -> None:
        self.samples = []
        self._total = 0
        self._sum = 0
        self._max = 0
        if self.max_samples is not None:
            # re-seed so a post-warmup window samples reproducibly
            self._rng = random.Random(zlib.crc32(self.name.encode("utf-8")))

    @property
    def count(self) -> int:
        return self._total

    def mean_seconds(self) -> float:
        if not self._total:
            return 0.0
        return self._sum / self._total / NANOS_PER_SEC

    def percentile_seconds(self, pct: float) -> float:
        """Nearest-rank percentile in seconds (exact unless the reservoir
        cap evicted samples); 0.0 when empty."""
        if not self.samples:
            return 0.0
        if not 0.0 < pct <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {pct}")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[rank - 1] / NANOS_PER_SEC

    def max_seconds(self) -> float:
        return self._max / NANOS_PER_SEC if self._total else 0.0


class BusyTracker:
    """Accumulates busy time for a named activity outside the CPU scheduler
    (e.g. NIC occupancy), with the same window semantics."""

    __slots__ = ("name", "busy_ns")

    def __init__(self, name: str):
        self.name = name
        self.busy_ns = 0

    def add(self, ticks: int) -> None:
        self.busy_ns += ticks

    def reset(self) -> None:
        self.busy_ns = 0

    def utilisation(self, window_ns: int) -> float:
        return min(1.0, self.busy_ns / window_ns) if window_ns > 0 else 0.0


class MetricsRegistry:
    """All instruments for one simulation, plus the measurement window.

    ``begin_measurement()`` is called when warmup ends: it resets every
    instrument and stamps the window start, after which
    :meth:`throughput_per_second` divides counters by elapsed measured time.
    """

    def __init__(self, sim):
        self.sim = sim
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}
        self.busy: Dict[str, BusyTracker] = {}
        self.window_start: int = 0
        self._resettables: List = []

    # ------------------------------------------------------------------
    # instrument factories (idempotent by name)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def histogram(
        self, name: str, max_samples: Optional[int] = None
    ) -> LatencyHistogram:
        if name not in self.histograms:
            self.histograms[name] = LatencyHistogram(name, max_samples=max_samples)
        return self.histograms[name]

    def busy_tracker(self, name: str) -> BusyTracker:
        if name not in self.busy:
            self.busy[name] = BusyTracker(name)
        return self.busy[name]

    def register_resettable(self, obj) -> None:
        """Attach any object exposing ``reset_window()`` (e.g. a
        :class:`~repro.sim.resources.CpuScheduler`) to the warmup reset."""
        self._resettables.append(obj)

    # ------------------------------------------------------------------
    # window protocol
    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        for counter in self.counters.values():
            counter.reset()
        for histogram in self.histograms.values():
            histogram.reset()
        for tracker in self.busy.values():
            tracker.reset()
        for obj in self._resettables:
            obj.reset_window()
        self.window_start = self.sim.now

    def window_ns(self, end: Optional[int] = None) -> int:
        return (self.sim.now if end is None else end) - self.window_start

    def throughput_per_second(self, counter_name: str) -> float:
        window = self.window_ns()
        if window <= 0:
            return 0.0
        return self.counters[counter_name].value * NANOS_PER_SEC / window
