#!/usr/bin/env python3
"""A permissioned stock-exchange ledger on the ResilientDB fabric.

§4.2 of the paper motivates client-side batching with exactly this kind of
application: "a client batching multiple requests is visible in
applications such as stock-trading, monetary-exchanges, and service-level
agreements."  Here each client is a brokerage that submits bursts of
orders as a single signed request; the deployment orders and executes them
through PBFT, and the resulting blockchain is the audit trail.

    python examples/stock_exchange.py
"""

from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis


def main() -> None:
    # Each "client" is a brokerage; a burst of 20 orders rides in one
    # signed request (client_batch_txns), and the matching engine state is
    # the replicated key-value store: one record per order book entry.
    config = SystemConfig(
        num_replicas=7,           # tolerate f=2 byzantine exchanges
        num_clients=32,           # 32 brokerages
        client_groups=8,
        client_batch_txns=20,     # burst of orders per submission (§4.2)
        batch_size=40,            # the primary pairs up two bursts
        ops_per_txn=2,            # debit one book entry, credit another
        ycsb_records=10_000,      # order-book entries
        warmup=millis(100),
        measure=millis(400),
    )
    system = ResilientDBSystem(config)
    result = system.run()

    print("=== permissioned stock exchange ===")
    print(f"deployment:      {config.num_replicas} exchange replicas "
          f"(tolerates {config.f} byzantine)")
    print(f"brokerages:      {config.num_clients}, bursts of "
          f"{config.client_batch_txns} orders per submission")
    print(f"order rate:      {result.throughput_txns_per_s / 1e3:.1f}K orders/s "
          f"({result.throughput_ops_per_s / 1e3:.1f}K book updates/s)")
    print(f"order latency:   mean {result.latency_mean_s * 1e3:.1f} ms, "
          f"p99 {result.latency_p99_s * 1e3:.1f} ms")

    # the audit trail: every burst is a block whose certificate carries
    # 2f+1 commit signatures — non-repudiable evidence of the match order
    primary = system.replicas["r0"]
    print(f"\naudit trail:     {primary.chain.height} blocks")
    for block in primary.chain.blocks[-3:]:
        signers = sorted(s for s, _ in block.commit_certificate)[:3]
        print(f"  block {block.sequence:>5}: {block.txn_count} orders, "
              f"digest {block.digest[:12]}…, quorum {signers}…")

    # all exchanges agree on the match order
    prefix = system.validate_safety()
    print(f"\nsettlement: all exchanges agree on {prefix} batches of orders ✓")

    # byzantine resilience: one exchange goes dark mid-trading
    print("\n--- replaying with one exchange crashed ---")
    crashed = ResilientDBSystem(config)
    victim = crashed.crash_replicas(1)[0]
    degraded = crashed.run()
    print(f"{victim} crashed: order rate "
          f"{degraded.throughput_txns_per_s / 1e3:.1f}K orders/s "
          f"({degraded.throughput_txns_per_s / max(1, result.throughput_txns_per_s) * 100:.0f}% "
          f"of healthy) — trading continues")


if __name__ == "__main__":
    main()
