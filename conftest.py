"""Pytest root configuration.

Ensures the in-tree ``src/`` layout is importable even when the package has
not been installed (the offline environment lacks ``wheel``, which breaks
``pip install -e .``; ``python setup.py develop`` works, but tests should
not depend on it having been run).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# ----------------------------------------------------------------------
# deterministic hypothesis profiles (see docs/TESTING.md)
#
# "ci" (the default) derandomizes so a property-test verdict is a pure
# function of the code, matching the fuzzer's reproducibility story;
# "nightly" trades wall-clock for a much deeper search.  Select with
# HYPOTHESIS_PROFILE=nightly.
# ----------------------------------------------------------------------
try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis ships with dev deps
    pass
else:
    settings.register_profile(
        "ci",
        max_examples=50,
        deadline=None,
        derandomize=True,
        print_blob=True,
    )
    settings.register_profile(
        "nightly",
        max_examples=400,
        deadline=None,
        print_blob=True,
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
