"""Deterministic round-robin unification of concurrent consensus lanes.

RCC (Gupta, Hellings, Sadoghi) runs m independent consensus instances —
one per primary — and merges their per-instance commit orders into one
global execution order by strict round-robin interleaving:

    global_seq(k, s) = (s - 1) * m + k + 1

for instance ``k`` (0-based) at instance-local sequence ``s`` (1-based).
Global sequence 1 is instance 0's first batch, 2 is instance 1's first,
..., m+1 is instance 0's second, and so on.  Because the mapping is a
bijection fixed by (k, s, m), the unified order is a pure function of the
per-instance commit logs: it cannot depend on the interleaving in which
commits happened to arrive.  Stalled instances are unblocked by *skip
certificates* — null batches committed through the instance's own PBFT
rounds (so each skip carries a 2f+1 commit proof) that fill the lane's
slots without executing anything.

Everything in this module is pure data-in/data-out so the fuzz oracle
bank and hypothesis properties can drive it directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.consensus.safety import SafetyViolation


def global_sequence(instance: int, instance_sequence: int, num_instances: int) -> int:
    """Map instance-local sequence ``s`` of lane ``instance`` to the
    global round-robin position."""
    if not 0 <= instance < num_instances:
        raise ValueError(
            f"instance {instance} out of range for m={num_instances}"
        )
    if instance_sequence < 1:
        raise ValueError(f"instance sequence must be >= 1, got {instance_sequence}")
    return (instance_sequence - 1) * num_instances + instance + 1


def instance_of(global_seq: int, num_instances: int) -> int:
    """Which lane owns ``global_seq`` (inverse of :func:`global_sequence`)."""
    if global_seq < 1:
        raise ValueError(f"global sequence must be >= 1, got {global_seq}")
    return (global_seq - 1) % num_instances


def instance_sequence(global_seq: int, num_instances: int) -> int:
    """The lane-local sequence behind ``global_seq``."""
    if global_seq < 1:
        raise ValueError(f"global sequence must be >= 1, got {global_seq}")
    return (global_seq - 1) // num_instances + 1


def unify_commit_logs(
    commit_logs: Mapping[int, Iterable[Tuple[int, str]]],
    num_instances: int,
) -> List[Tuple[int, str]]:
    """Merge per-instance commit logs into the global execution prefix.

    ``commit_logs`` maps instance id -> iterable of (instance sequence,
    digest) pairs, in any order.  Returns the maximal *contiguous* global
    order [(global sequence, digest), ...] starting at 1: the merge stops
    at the first slot whose lane has not committed it yet (ordered
    execution cannot leapfrog a hole).  Raises
    :class:`~repro.consensus.safety.SafetyViolation` if one lane reports
    two different digests for the same instance sequence — per-lane PBFT
    makes that impossible among honest replicas.
    """
    by_lane: Dict[int, Dict[int, str]] = {}
    for lane, entries in commit_logs.items():
        if not 0 <= lane < num_instances:
            raise ValueError(f"instance {lane} out of range for m={num_instances}")
        slots = by_lane.setdefault(lane, {})
        for sequence, digest in entries:
            existing = slots.get(sequence)
            if existing is not None and existing != digest:
                raise SafetyViolation(
                    f"instance {lane} committed two digests at sequence "
                    f"{sequence}: {existing!r} vs {digest!r}"
                )
            slots[sequence] = digest
    unified: List[Tuple[int, str]] = []
    g = 1
    while True:
        lane = instance_of(g, num_instances)
        digest = by_lane.get(lane, {}).get(instance_sequence(g, num_instances))
        if digest is None:
            return unified
        unified.append((g, digest))
        g += 1


def check_unified_execution(
    executed_log: Iterable[Tuple[int, str]],
    commit_logs: Mapping[int, Iterable[Tuple[int, str]]],
    num_instances: int,
) -> int:
    """Every executed (global sequence, digest) must be exactly what its
    owning lane committed at the corresponding lane sequence — i.e. the
    executed log is a prefix of :func:`unify_commit_logs` applied to the
    replica's own commit logs.  Skip certificates committed to unblock a
    lane can therefore never reorder anything: they occupy their lane's
    round-robin slots like any other committed batch.

    Returns the number of entries checked; raises ``SafetyViolation`` on
    the first mismatch.
    """
    lanes: Dict[int, Dict[int, str]] = {}
    for lane, entries in commit_logs.items():
        slots = lanes.setdefault(lane, {})
        for sequence, digest in entries:
            slots.setdefault(sequence, digest)
    checked = 0
    for global_seq, digest in executed_log:
        lane = instance_of(global_seq, num_instances)
        lane_seq = instance_sequence(global_seq, num_instances)
        committed = lanes.get(lane, {}).get(lane_seq)
        if committed is None:
            raise SafetyViolation(
                f"executed global sequence {global_seq} (instance {lane} "
                f"seq {lane_seq}) was never committed by that instance"
            )
        if committed != digest:
            raise SafetyViolation(
                f"executed digest {digest!r} at global sequence {global_seq} "
                f"but instance {lane} committed {committed!r} at seq {lane_seq}"
            )
        checked += 1
    return checked
