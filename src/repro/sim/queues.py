"""FIFO channels connecting pipeline stages.

:class:`SimQueue` is the simulated analogue of the lock-free queues that
ResilientDB places between its pipeline threads.  The paper's design uses a
*common* work queue shared by several batch-threads so that "any enqueued
request is consumed as soon as any batch-thread is available" (§4.3) —
``SimQueue`` supports exactly that: multiple consumers blocked in
``get()`` are served in FIFO order as items arrive.

Bounded queues carry a back-pressure *policy* deciding what happens when a
producer hits the capacity limit:

- ``"block"`` — the producer parks until the consumer frees capacity
  (``yield queue.put(item)``); pressure propagates upstream.
- ``"shed_oldest"`` — the oldest queued item is evicted to make room
  (drop-from-head, so the accepted item still joins FIFO order at the
  tail); the ``on_shed`` callback lets the owner NACK or count the victim.
- ``"reject"`` — the new item is refused (``offer`` returns False); the
  producer decides what to tell the sender.

Queues track occupancy statistics so experiments can report queueing delay
(the dominant latency term in the client-scaling experiment, Fig. 15).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Optional

#: back-pressure policies a bounded queue can apply at capacity
QUEUE_POLICIES = ("block", "shed_oldest", "reject")


class _Getter:
    """A parked consumer; ``active`` is cleared if its timeout fires first."""

    __slots__ = ("process", "active")

    def __init__(self, process):
        self.process = process
        self.active = True


class _QueueGet:
    """Effect: wait until an item is available, resume with the item.

    With ``timeout`` set, resume with :data:`repro.sim.events.TIMEOUT`
    instead if nothing arrives within that many ticks.
    """

    __slots__ = ("queue", "timeout")

    def __init__(self, queue: "SimQueue", timeout: Optional[int] = None):
        self.queue = queue
        self.timeout = timeout

    def _bind(self, sim, process) -> None:
        queue = self.queue
        if queue._items:
            item = queue._take(sim)
            queue._wake_putters(sim)
            sim.schedule(0, process.resume, item)
            return
        getter = _Getter(process)
        queue._getters.append(getter)
        if self.timeout is not None:
            from repro.sim.events import TIMEOUT

            def _expire() -> None:
                if getter.active:
                    getter.active = False
                    process.resume(TIMEOUT)

            sim.schedule(self.timeout, _expire)


class _QueuePut:
    """Effect: enqueue under the queue's policy; resume with True if the
    item was accepted, False if the ``reject`` policy refused it.  Only
    the ``block`` policy ever parks the producer."""

    __slots__ = ("queue", "item", "priority")

    def __init__(self, queue: "SimQueue", item: Any, priority: Optional[int] = None):
        self.queue = queue
        self.item = item
        self.priority = priority

    def _bind(self, sim, process) -> None:
        queue = self.queue
        if not queue._full_for(self.priority):
            queue._enqueue_put(sim, self.item, self.priority)
            sim.schedule(0, process.resume, True)
        elif queue.policy == "shed_oldest":
            queue._shed()
            queue._enqueue_put(sim, self.item, self.priority)
            sim.schedule(0, process.resume, True)
        elif queue.policy == "reject":
            queue.rejected_total += 1
            sim.schedule(0, process.resume, False)
        else:
            queue._putters.append((process, self.item, self.priority))


class SimQueue:
    """An (optionally bounded) FIFO queue usable from simulation processes.

    - ``yield queue.get()`` blocks the process until an item arrives.
    - ``queue.put_nowait(item)`` enqueues immediately (unbounded queues, or
      producer code running outside a process, e.g. network delivery).
    - ``yield queue.put(item)`` applies the policy from a process context:
      ``block`` parks until capacity frees (back-pressure), the lossy
      policies resolve immediately; resumes with accepted True/False.
    - ``queue.offer(item)`` applies the policy without blocking (callers
      outside process context): sheds or rejects at capacity, returns
      whether the item was accepted.  Under ``block`` it behaves like
      ``put_nowait`` (blocking is impossible outside a process).
    """

    __slots__ = (
        "sim",
        "name",
        "capacity",
        "policy",
        "on_shed",
        "_items",
        "_getters",
        "_putters",
        "enqueued_total",
        "dequeued_total",
        "shed_total",
        "rejected_total",
        "max_depth",
        "total_wait",
    )

    def __init__(
        self,
        sim,
        name: str = "queue",
        capacity: Optional[int] = None,
        policy: str = "block",
        on_shed: Optional[Callable[[Any], None]] = None,
    ):
        if policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue policy {policy!r}; expected one of {QUEUE_POLICIES}"
            )
        if capacity is not None and capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.policy = policy
        #: called with each evicted item when ``shed_oldest`` fires
        self.on_shed = on_shed
        self._items: Deque = deque()
        self._getters: Deque = deque()
        self._putters: Deque = deque()
        self.enqueued_total = 0
        self.dequeued_total = 0
        self.shed_total = 0
        self.rejected_total = 0
        self.max_depth = 0
        self.total_wait = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def put_nowait(self, item: Any) -> None:
        """Enqueue without blocking (raises if a bounded queue is full)."""
        if self._full_for(None):
            raise OverflowError(f"queue {self.name!r} full (capacity={self.capacity})")
        self._enqueue(self.sim, item)

    def offer(self, item: Any) -> bool:
        """Policy-aware non-blocking enqueue; True iff the item got in."""
        if not self._full_for(None):
            self._enqueue(self.sim, item)
            return True
        if self.policy == "shed_oldest":
            self._shed()
            self._enqueue(self.sim, item)
            return True
        if self.policy == "reject":
            self.rejected_total += 1
            return False
        raise OverflowError(f"queue {self.name!r} full (capacity={self.capacity})")

    def put(self, item: Any) -> _QueuePut:
        """Effect for process-context puts (back-pressure under ``block``)."""
        return _QueuePut(self, item)

    def _full_for(self, priority: Optional[int]) -> bool:
        """Whether the capacity bound applies to an arriving item."""
        return self.capacity is not None and len(self._items) >= self.capacity

    def _enqueue_put(self, sim, item: Any, priority: Optional[int]) -> None:
        """Admit an item from the put/offer path (priority-queue override
        routes the priority through; the base FIFO ignores it)."""
        self._enqueue(sim, item)

    def _shed(self) -> Any:
        """Evict the oldest (lowest-value) queued item to make room."""
        victim = self._evict()
        self.shed_total += 1
        if self.on_shed is not None:
            self.on_shed(victim)
        return victim

    def _evict(self) -> Any:
        item, _enqueued_at = self._items.popleft()
        return item

    def _enqueue(self, sim, item: Any) -> None:
        self.enqueued_total += 1
        getter = self._pop_active_getter()
        if getter is not None:
            self._record_dequeue(0)
            sim.schedule(0, getter.process.resume, item)
        else:
            self._items.append((item, sim.now))
            if len(self._items) > self.max_depth:
                self.max_depth = len(self._items)

    def _pop_active_getter(self):
        while self._getters:
            getter = self._getters.popleft()
            if getter.active:
                getter.active = False
                return getter
        return None

    def _wake_putters(self, sim) -> None:
        while self._putters and not self._full_for(self._putters[0][2]):
            process, item, priority = self._putters.popleft()
            self._enqueue_put(sim, item, priority)
            sim.schedule(0, process.resume, True)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def get(self, timeout: Optional[int] = None) -> _QueueGet:
        """Effect for blocking gets; with ``timeout``, the waiter is
        resumed with :data:`~repro.sim.events.TIMEOUT` if nothing arrives
        in time (used by batch-threads' fill deadline)."""
        return _QueueGet(self, timeout)

    def get_nowait(self) -> Any:
        """Dequeue immediately; raises IndexError when empty."""
        item = self._take(self.sim)
        self._wake_putters(self.sim)
        return item

    def _take(self, sim) -> Any:
        """Remove and return the next item, recording its queueing delay."""
        item, enq_time = self._items.popleft()
        self._record_dequeue(sim.now - enq_time)
        return item

    def _record_dequeue(self, wait: int) -> None:
        self.dequeued_total += 1
        self.total_wait += wait

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        """Current occupancy (items enqueued and not yet consumed)."""
        return len(self._items)

    @property
    def waiters(self) -> int:
        """Consumers currently parked in ``get()``."""
        return sum(1 for getter in self._getters if getter.active)

    @property
    def blocked_producers(self) -> int:
        """Producers currently parked in ``put()`` (``block`` policy)."""
        return len(self._putters)

    @property
    def mean_wait(self) -> float:
        """Mean ticks an item spent queued before being consumed."""
        return self.total_wait / self.dequeued_total if self.dequeued_total else 0.0

    def stats(self) -> dict:
        """Occupancy snapshot for samplers and reports."""
        return {
            "depth": len(self._items),
            "enqueued": self.enqueued_total,
            "dequeued": self.dequeued_total,
            "shed": self.shed_total,
            "rejected": self.rejected_total,
            "max_depth": self.max_depth,
            "mean_wait": self.mean_wait,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimQueue({self.name!r}, depth={len(self._items)})"


class SimPriorityQueue(SimQueue):
    """A SimQueue that serves lower-priority-number items first.

    Ties preserve insertion order, so same-priority traffic stays FIFO.
    Used by the degenerate 0B pipeline, where one worker both batches
    client requests and votes: protocol messages must not drown behind a
    deep backlog of unverified client requests, or the replica never
    commits anything.

    A capacity bound applies only to *low-priority* items (priority > 0 —
    client requests in the 0B pipeline): protocol messages are always
    admitted, because shedding a commit vote would break consensus
    liveness while shedding a client request merely defers that client.
    ``_shed`` correspondingly evicts the oldest item of the worst
    (highest-number) priority class.
    """

    __slots__ = ("_counter", "_low_count")

    def __init__(
        self,
        sim,
        name: str = "pqueue",
        capacity: Optional[int] = None,
        policy: str = "block",
        on_shed: Optional[Callable[[Any], None]] = None,
    ):
        super().__init__(sim, name, capacity, policy, on_shed)
        self._items = []  # heap of (priority, tie, item, enqueued_at)
        self._counter = 0
        self._low_count = 0

    def put_nowait(self, item: Any, priority: int = 0) -> None:
        if self._full_for(priority):
            raise OverflowError(f"queue {self.name!r} full (capacity={self.capacity})")
        self._admit(item, priority)

    def offer(self, item: Any, priority: int = 0) -> bool:
        if not self._full_for(priority):
            self._admit(item, priority)
            return True
        if self.policy == "shed_oldest":
            self._shed()
            self._admit(item, priority)
            return True
        if self.policy == "reject":
            self.rejected_total += 1
            return False
        raise OverflowError(f"queue {self.name!r} full (capacity={self.capacity})")

    def put(self, item: Any, priority: int = 0) -> _QueuePut:
        return _QueuePut(self, item, priority)

    def _full_for(self, priority: Optional[int]) -> bool:
        if self.capacity is None:
            return False
        if not priority:  # protocol traffic is never bounded
            return False
        return self._low_count >= self.capacity

    def _enqueue_put(self, sim, item: Any, priority: Optional[int]) -> None:
        self._admit(item, priority or 0)

    def _admit(self, item: Any, priority: int) -> None:
        self.enqueued_total += 1
        getter = self._pop_active_getter()
        if getter is not None:
            self._record_dequeue(0)
            self.sim.schedule(0, getter.process.resume, item)
            return
        if priority > 0:
            self._low_count += 1
        self._counter += 1
        heapq.heappush(self._items, (priority, self._counter, item, self.sim.now))
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)

    def _evict(self) -> Any:
        worst = max(entry[0] for entry in self._items)
        index = min(
            (i for i, entry in enumerate(self._items) if entry[0] == worst),
            key=lambda i: self._items[i][1],
        )
        priority, _tie, item, _enqueued_at = self._items.pop(index)
        heapq.heapify(self._items)
        if priority > 0:
            self._low_count -= 1
        return item

    def _take(self, sim) -> Any:
        priority, _tie, item, enqueued_at = heapq.heappop(self._items)
        if priority > 0:
            self._low_count -= 1
        self._record_dequeue(sim.now - enqueued_at)
        return item
