"""Message digests.

ResilientDB's batch-threads hash *one string representation of the whole
batch* rather than every request individually (§4.3) — the per-batch digest
is one of the fabric's throughput levers.  The digest here is a real
SHA-256 so chain integrity can be tested for real; the simulated time cost
comes from :class:`~repro.crypto.costs.CryptoCosts`.
"""

from __future__ import annotations

import hashlib

from repro.crypto.costs import CryptoCosts, DEFAULT_COSTS


def digest_bytes(data: bytes) -> str:
    """Real SHA-256 digest (hex) of ``data``."""
    return hashlib.sha256(data).hexdigest()


def digest_cost(size_bytes: int, costs: CryptoCosts = DEFAULT_COSTS) -> int:
    """Simulated nanoseconds to hash ``size_bytes`` bytes."""
    return costs.sha256_ns(size_bytes)
