"""End-to-end fuzzer self-test (ISSUE 2 acceptance).

A deliberately injected defect — ``weak-commit-quorum``, which breaks
quorum intersection — must be (1) caught by the oracle bank, (2) replayed
bit-identically from its scenario, and (3) shrunk by ddmin to the single
fault event that matters.  A healthy scenario through the same pipeline
must come back clean.
"""

import pytest

from repro.fuzz import (
    FaultEvent,
    Scenario,
    fuzz_campaign,
    load_scenario,
    run_scenario,
    save_artifact,
    shrink_scenario,
)
from repro.fuzz.shrinker import ShrinkResult

#: the one event that actually breaks safety under the weakened quorum
_SPLIT = FaultEvent(kind="byzantine", target="r0", policy="two-faced-primary")

#: noise events ddmin must discard: none can cause a violation, and none
#: touches replica honesty (a byzantine-noise event would shrink the set
#: of replicas the execution-order oracle gets to compare)
_NOISE = (
    FaultEvent(kind="drop-link", src="r2", dst="r1", probability=0.02,
               at_ms=10.0, until_ms=30.0),
    FaultEvent(kind="drop-link", src="r3", dst="r1", probability=0.02,
               at_ms=12.0, until_ms=30.0),
    FaultEvent(kind="partition", at_ms=30.0, group=("r3",), until_ms=38.0),
)

BUG_SCENARIO = Scenario(
    seed=7, protocol="pbft", num_replicas=4, num_clients=16,
    client_groups=2, batch_size=4, measure_ms=40.0,
    bug="weak-commit-quorum",
    events=(_SPLIT,) + _NOISE,
    label="weak-quorum-bug",
)


@pytest.fixture(scope="module")
def bug_outcome():
    return run_scenario(BUG_SCENARIO)


def test_clean_scenario_passes_every_oracle():
    outcome = run_scenario(
        Scenario(seed=3, num_clients=16, batch_size=4, label="clean")
    )
    assert outcome.ok
    assert outcome.completed_requests > 0
    assert outcome.chain_height > 0


def test_unknown_bug_name_rejected():
    with pytest.raises(ValueError, match="no-such-bug"):
        run_scenario(Scenario(bug="no-such-bug"))


def test_injected_bug_is_caught(bug_outcome):
    # non-intersecting commit quorums + a two-faced primary split the
    # cluster: the execution-order oracle must see two histories
    assert not bug_outcome.ok
    oracles = {violation.oracle for violation in bug_outcome.violations}
    assert "execution-order" in oracles


def test_replay_is_bit_identical(bug_outcome):
    # same scenario -> same simulation -> same verdict, verbatim
    replayed = run_scenario(Scenario.from_json(BUG_SCENARIO.to_json()))
    assert [str(v) for v in replayed.violations] == [
        str(v) for v in bug_outcome.violations
    ]
    assert replayed.completed_requests == bug_outcome.completed_requests
    assert replayed.chain_height == bug_outcome.chain_height


def test_shrinker_isolates_the_single_guilty_event():
    result = shrink_scenario(BUG_SCENARIO)
    assert isinstance(result, ShrinkResult)
    assert result.scenario.events == (_SPLIT,)
    assert result.removed == len(_NOISE)
    # the minimised scenario still reproduces on its own
    assert not run_scenario(result.scenario).ok


def test_shrinker_keeps_config_only_failures_empty():
    # when the config alone fails, the minimal event plan is no events;
    # a cheap fake predicate keeps this a pure shrinker unit test
    result = shrink_scenario(BUG_SCENARIO, fails=lambda scenario: True)
    assert result.scenario.events == ()
    assert result.attempts == 1


def test_shrinker_is_1_minimal_under_a_fake_predicate():
    # fails iff both "essential" events survive: ddmin must keep exactly
    # those two and discard the rest
    essential = {("byzantine", "r0"), ("crash", "r2")}
    events = (
        _SPLIT,
        FaultEvent(kind="crash", target="r2", at_ms=20.0),
    ) + _NOISE

    def fails(scenario):
        kept = {(e.kind, e.target) for e in scenario.events}
        return essential <= kept

    result = shrink_scenario(Scenario(events=events), fails=fails)
    assert {(e.kind, e.target) for e in result.scenario.events} == essential
    assert len(result.scenario.events) == 2


def test_artifact_round_trip(tmp_path, bug_outcome):
    shrunk = BUG_SCENARIO.with_events([_SPLIT])
    path = save_artifact(bug_outcome, str(tmp_path), shrunk=shrunk)
    assert load_scenario(path) == shrunk
    assert load_scenario(path, prefer_shrunk=False) == BUG_SCENARIO


def test_bare_scenario_json_replays(tmp_path):
    path = tmp_path / "scenario.json"
    path.write_text(BUG_SCENARIO.to_json())
    assert load_scenario(str(path)) == BUG_SCENARIO


def test_campaign_pipeline_with_failing_source(tmp_path):
    # drive the known-bad scenario through the full campaign loop:
    # detect, shrink, save artifact — exactly what the CLI wires up
    lines = []
    report = fuzz_campaign(
        runs=1,
        master_seed=7,
        shrink=True,
        artifacts_dir=str(tmp_path),
        scenario_source=lambda seed, index: BUG_SCENARIO,
        log=lines.append,
    )
    assert not report.ok
    assert len(report.failures) == 1
    assert report.shrunk["weak-quorum-bug"].events == (_SPLIT,)
    assert len(report.artifacts) == 1
    assert load_scenario(report.artifacts[0]).events == (_SPLIT,)
    assert any("replay: python -m repro fuzz" in line for line in lines)
