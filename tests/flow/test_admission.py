"""Admission control and the post-run flow invariants."""

from repro.flow import AdmissionController, FlowStats, check_flow_invariants


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------
def test_unconfigured_controller_admits_everything():
    admission = AdmissionController()
    assert not admission.enabled
    for _ in range(1_000):
        assert admission.try_admit("client0") is None


def test_inflight_cap_refuses_when_pipeline_full():
    admission = AdmissionController(max_inflight=2)
    assert admission.try_admit("c") is None
    admission.on_propose(1)
    admission.on_propose(2)
    assert admission.inflight == 2
    assert admission.try_admit("c") == "inflight"
    assert admission.rejected_inflight == 1
    # in-order execution prunes everything at or below the watermark
    admission.on_execute(2)
    assert admission.inflight == 0
    assert admission.try_admit("c") is None


def test_on_execute_prunes_abandoned_instances():
    admission = AdmissionController(max_inflight=4)
    # proposals 1..3 from an old view never executed individually; the
    # new view executes sequence 5 and everything below is done
    for sequence in (1, 2, 3, 5):
        admission.on_propose(sequence)
    admission.on_execute(5)
    assert admission.inflight == 0


def test_per_client_cap_is_independent_per_sender():
    admission = AdmissionController(max_per_client=2)
    assert admission.try_admit("a") is None
    assert admission.try_admit("a") is None
    assert admission.try_admit("a") == "client"
    assert admission.rejected_per_client == 1
    # another client group has its own budget
    assert admission.try_admit("b") is None
    # a reply releases one slot
    admission.release_client("a")
    assert admission.try_admit("a") is None


def test_release_of_unknown_client_is_harmless():
    admission = AdmissionController(max_per_client=1)
    admission.release_client("ghost")
    assert admission.try_admit("ghost") is None


def test_clear_backlog_resets_per_client_counts():
    admission = AdmissionController(max_per_client=1)
    assert admission.try_admit("a") is None
    assert admission.try_admit("a") == "client"
    # losing primaryship: admitted requests will never be replied to by
    # this replica, so their counts must not leak into the next reign
    admission.clear_backlog()
    assert admission.try_admit("a") is None


# ----------------------------------------------------------------------
# check_flow_invariants
# ----------------------------------------------------------------------
class _FakeGroup:
    def __init__(self, name, completed_ids, next_request_id, pending=()):
        self.name = name
        self.completion_log = [(rid, 1, "digest") for rid in completed_ids]
        self.next_request_id = next_request_id
        self.pending = {rid: object() for rid in pending}


class _FakeReplica:
    def __init__(self, flow):
        self.flow = flow


class _FakeSystem:
    def __init__(self, replicas, groups):
        self.replicas = replicas
        self.client_groups = groups


def test_invariants_hold_when_every_shed_was_nacked():
    flow = FlowStats()
    flow.shed_keys.append(("client0", 7))
    flow.nacked_keys.add(("client0", 7))
    system = _FakeSystem(
        {"r0": _FakeReplica(flow)}, [_FakeGroup("client0", [], 0)]
    )
    assert check_flow_invariants(system) == []


def test_invariants_hold_when_shed_request_completed_anyway():
    flow = FlowStats()
    flow.shed_keys.append(("client0", 3))  # no NACK recorded...
    system = _FakeSystem(
        {"r0": _FakeReplica(flow)},
        [_FakeGroup("client0", completed_ids=[3], next_request_id=5)],
    )
    # ...but the request completed (a retransmission carried it through)
    assert check_flow_invariants(system) == []


def test_silent_shed_is_reported():
    flow = FlowStats()
    flow.shed_keys.append(("client0", 9))
    system = _FakeSystem(
        {"r0": _FakeReplica(flow)},
        [_FakeGroup("client0", [], next_request_id=10, pending=[9])],
    )
    problems = check_flow_invariants(system)
    assert len(problems) == 1
    assert "no NACK" in problems[0]


def test_sequenced_shed_is_always_reported():
    flow = FlowStats()
    flow.shed_sequenced.append(("client0", 4))
    flow.nacked_keys.add(("client0", 4))  # a NACK does not excuse it
    system = _FakeSystem(
        {"r0": _FakeReplica(flow)}, [_FakeGroup("client0", [4], 5)]
    )
    problems = check_flow_invariants(system)
    assert len(problems) == 1
    assert "sequence" in problems[0]


def test_replicas_without_flow_state_are_skipped():
    class _Bare:
        pass

    system = _FakeSystem({"r0": _Bare()}, [])
    assert check_flow_invariants(system) == []
