"""Workload generation: YCSB tables, Zipfian keys, client transactions.

The paper's evaluation drives every experiment with YCSB [11]: each client
transaction indexes a 600K-record table, requests are write-only ("a
majority of blockchain requests are updates to the existing data", §5.1),
and keys are drawn from a Zipfian distribution.  Experiments additionally
vary operations-per-transaction (Fig. 11) and add integer payload padding
to grow the request size (Fig. 12).
"""

from repro.workloads.transactions import Operation, OpType, Transaction
from repro.workloads.ycsb import YCSBWorkload, YCSB_DEFAULT_RECORDS
from repro.workloads.zipf import UniformGenerator, ZipfianGenerator

__all__ = [
    "Operation",
    "OpType",
    "Transaction",
    "UniformGenerator",
    "YCSBWorkload",
    "YCSB_DEFAULT_RECORDS",
    "ZipfianGenerator",
]
