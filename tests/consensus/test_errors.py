"""Typed proposal errors: hosts distinguish "not my job" from "busy
changing views" without string-matching, and both stay catchable as the
``ProposalError`` base."""

import pytest

from repro.consensus import (
    NotPrimaryError,
    PbftReplica,
    ProposalError,
    QuorumConfig,
    ViewChangeInProgress,
)

from tests.consensus.harness import make_request


def _replica(rid="r1"):
    ids = ("r0", "r1", "r2", "r3")
    return PbftReplica(rid, ids, QuorumConfig.for_replicas(4))


def test_backup_propose_raises_not_primary():
    backup = _replica("r1")  # view-0 primary is r0
    request = make_request("c1", 1)
    with pytest.raises(NotPrimaryError):
        backup.make_preprepare(1, request.digest, request)


def test_propose_during_view_change_raises_typed_error():
    primary = _replica("r0")
    primary.suspect_primary()  # wedge ourselves into a view change
    assert primary.in_view_change
    request = make_request("c1", 1)
    with pytest.raises(ViewChangeInProgress):
        primary.make_preprepare(1, request.digest, request)


def test_duplicate_sequence_raises_proposal_error():
    primary = _replica("r0")
    request = make_request("c1", 1)
    primary.make_preprepare(1, request.digest, request)
    with pytest.raises(ProposalError):
        primary.make_preprepare(1, request.digest, request)


def test_error_hierarchy_rooted_at_proposal_error():
    assert issubclass(NotPrimaryError, ProposalError)
    assert issubclass(ViewChangeInProgress, ProposalError)
    assert issubclass(ProposalError, RuntimeError)
