#!/usr/bin/env python3
"""Failures, head to head: PBFT shrugs, Zyzzyva stalls, view change works.

Reproduces §5.10's lesson at demo scale — a single crashed backup
devastates a speculative protocol whose clients wait for all 3f+1
responses — and then demonstrates the PBFT view change replacing a crashed
primary mid-run.

    python examples/fault_tolerance_demo.py
"""

from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis, seconds


def build_config(protocol: str) -> SystemConfig:
    return SystemConfig(
        protocol=protocol,
        num_replicas=16,
        num_clients=1_000,
        client_groups=8,
        batch_size=50,
        ycsb_records=5_000,
        warmup=millis(100),
        measure=millis(600),
        zyzzyva_client_timeout=millis(200),
        real_auth_tokens=False,
        apply_state=False,
    )


def run(protocol: str, crashes: int):
    system = ResilientDBSystem(build_config(protocol))
    if crashes:
        system.crash_replicas(crashes)
    return system.run()


def main() -> None:
    print("=== crashed backups: PBFT vs Zyzzyva (n=16, f=5) ===\n")
    print(f"{'scenario':<28} {'PBFT':>14} {'Zyzzyva':>14}")
    for crashes in (0, 1, 5):
        pbft = run("pbft", crashes)
        zyzzyva = run("zyzzyva", crashes)
        label = f"{crashes} crashed backup(s)"
        print(f"{label:<28} {pbft.throughput_txns_per_s / 1e3:>12.1f}K "
              f"{zyzzyva.throughput_txns_per_s / 1e3:>12.1f}K")
    print("\nPBFT needs no phase with more than 2f+1 messages, so f crashed")
    print("backups barely register.  Zyzzyva's clients wait out a timeout")
    print("for the full 3f+1 fast path on every single request.")

    # ------------------------------------------------------------------
    print("\n=== PBFT view change: crashing the primary mid-run ===\n")
    config = SystemConfig(
        num_replicas=4,
        num_clients=40,
        client_groups=4,
        batch_size=4,
        ycsb_records=1_000,
        warmup=millis(50),
        measure=seconds(3),
        view_change_timeout=millis(300),
        client_retransmit=millis(500),
    )
    system = ResilientDBSystem(config)
    system.crash_primary(at_ns=millis(400))
    result = system.run()
    views = {rid: replica.engine.view for rid, replica in system.replicas.items()
             if rid != "r0"}
    print(f"primary r0 crashed at t=400ms; view-change timeout 300ms")
    print(f"surviving replicas' views: {views} (r1 is the view-1 primary)")
    print(f"requests completed across the outage: {result.completed_requests}")
    prefix = system.validate_safety()
    print(f"safety held throughout: common prefix of {prefix} batches ✓")


if __name__ == "__main__":
    main()
