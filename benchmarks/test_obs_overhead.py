"""Guard benchmark: disabled observability must stay (nearly) free.

The hooks follow the tracer's guard idiom — one ``spans.enabled``
attribute read on each hot path when everything is off.  This benchmark
pins that promise with wall-clock numbers: a run with spans, sampling
and tracing all disabled must not be measurably slower than the seed,
and fully-enabled observability must stay within a generous factor of
the disabled run (it records timestamps, it does not change the
simulation).
"""

import time

from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis


def _config(**overrides):
    defaults = dict(
        num_replicas=4,
        num_clients=64,
        client_groups=4,
        batch_size=10,
        ycsb_records=1_000,
        warmup=millis(40),
        measure=millis(120),
        real_auth_tokens=False,
        apply_state=False,
        seed=3,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def _wall_clock(**overrides) -> float:
    system = ResilientDBSystem(_config(**overrides))
    started = time.perf_counter()
    result = system.run()
    elapsed = time.perf_counter() - started
    assert result.completed_requests > 0
    system.close()
    return elapsed


def test_disabled_observability_overhead_guard(benchmark):
    benchmark(
        lambda: _wall_clock()  # all observability off: the baseline cost
    )


def test_enabled_observability_stays_cheap():
    # best-of-3 to damp scheduler noise; the bound is deliberately loose —
    # this is a regression tripwire, not a microbenchmark
    disabled = min(_wall_clock() for _ in range(3))
    enabled = min(
        _wall_clock(
            lifecycle_spans=True,
            span_keep_finished=1_000,
            sample_interval=millis(5),
            trace=True,
        )
        for _ in range(3)
    )
    assert enabled < disabled * 3.0, (
        f"observability overhead too high: {enabled:.3f}s vs "
        f"{disabled:.3f}s disabled"
    )
