"""Scenario description: one fully reproducible fuzz deployment.

A :class:`Scenario` is plain data — a handful of config knobs plus a
tuple of :class:`FaultEvent` injections — and, together with its seed,
*fully determines* a run: the simulator, workload, fault timing and
crypto keys all derive from ``(config, seed)`` (see ``repro.sim.rng``).
That is what makes fuzzing reproducible for free: a failing run is
replayed by re-running its scenario, and shrinking is just re-running
with subsets of the event tuple (:mod:`repro.fuzz.shrinker`).

Scenarios serialise to JSON (:meth:`Scenario.to_json`), which is the
repro artifact the fuzzer emits on an oracle violation
(:mod:`repro.fuzz.corpus`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Optional, Tuple

from repro.core.config import SystemConfig
from repro.sim.clock import millis

#: byzantine policies that only make sense on the view-0 primary (they
#: transform outgoing *proposals*)
PRIMARY_POLICIES = ("equivocating-primary", "two-faced-primary")

#: byzantine policies any backup can run
BACKUP_POLICIES = ("silent", "conflicting-voter", "delayed")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault.  ``kind`` selects which fields are meaningful:

    - ``crash``: ``target`` replica stops at ``at_ms``.
    - ``recover``: ``target`` heals at ``at_ms`` and begins state transfer.
    - ``byzantine``: install ``policy`` on ``target`` at ``at_ms``
      (``delay_ms`` parameterises the ``delayed`` policy).
    - ``drop-link``: messages ``src`` → ``dst`` drop with ``probability``
      from ``at_ms`` until ``until_ms`` (``None`` = rest of the run).
    - ``partition``: sever ``group`` from every other replica between
      ``at_ms`` and ``until_ms`` (``None`` = rest of the run).
    """

    kind: str
    at_ms: float = 0.0
    target: str = ""
    policy: str = ""
    delay_ms: float = 0.0
    src: str = ""
    dst: str = ""
    probability: float = 1.0
    group: Tuple[str, ...] = ()
    until_ms: Optional[float] = None

    KINDS = ("crash", "recover", "byzantine", "drop-link", "partition")

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown fault event kind {self.kind!r}")

    def describe(self) -> str:
        if self.kind == "crash":
            return f"crash {self.target} @{self.at_ms:g}ms"
        if self.kind == "recover":
            return f"recover {self.target} @{self.at_ms:g}ms"
        if self.kind == "byzantine":
            extra = f" delay={self.delay_ms:g}ms" if self.policy == "delayed" else ""
            return f"byzantine {self.target}={self.policy}{extra} @{self.at_ms:g}ms"
        if self.kind == "drop-link":
            until = f"..{self.until_ms:g}ms" if self.until_ms is not None else ""
            return (
                f"drop {self.src}->{self.dst} p={self.probability:g} "
                f"@{self.at_ms:g}{until}"
            )
        until = f"..{self.until_ms:g}ms" if self.until_ms is not None else ""
        return f"partition {{{','.join(self.group)}}} @{self.at_ms:g}{until}"


@dataclass(frozen=True)
class Scenario:
    """One fuzz deployment: config knobs + injected fault events.

    ``bug`` names a *deliberately injected defect* from
    :data:`repro.fuzz.runner.BUG_REGISTRY` — the self-test hook that
    proves the oracle bank catches real violations.  The generator never
    sets it; only the fuzzer's own test fixtures do.
    """

    seed: int = 0
    protocol: str = "pbft"
    num_replicas: int = 4
    #: concurrent consensus instances (protocol "rcc" only); instance k's
    #: view-0 primary is ``r{k}``
    num_primaries: int = 1
    #: override the (5s, fuzz-window-dwarfing) default view-change timeout
    #: so lane view changes can actually fire inside an rcc scenario
    view_change_timeout_ms: Optional[float] = None
    num_clients: int = 24
    client_groups: int = 2
    batch_size: int = 8
    ops_per_txn: int = 1
    checkpoint_txns: int = 48
    ycsb_records: int = 300
    warmup_ms: float = 25.0
    measure_ms: float = 50.0
    #: extra fault-free settling time before the liveness oracle samples
    #: executed watermarks (the "eventually" in bounded liveness)
    quiesce_ms: float = 35.0
    zyzzyva_timeout_ms: float = 8.0
    faults_tolerated: Optional[int] = None
    #: overload-protection knobs (ISSUE 5); defaults reproduce the
    #: unprotected pre-flow-control behaviour, so old corpus artifacts
    #: deserialise and replay unchanged
    queue_policy: str = "block"
    batch_queue_capacity: Optional[int] = None
    admission_max_inflight: Optional[int] = None
    admission_max_per_client: Optional[int] = None
    client_retransmit_ms: Optional[float] = None
    client_window_initial: Optional[int] = None
    bug: Optional[str] = None
    events: Tuple[FaultEvent, ...] = ()
    label: str = ""

    # ------------------------------------------------------------------
    @property
    def f(self) -> int:
        if self.faults_tolerated is not None:
            return self.faults_tolerated
        return (self.num_replicas - 1) // 3

    @property
    def byzantine_targets(self) -> Tuple[str, ...]:
        return tuple(
            sorted({e.target for e in self.events if e.kind == "byzantine"})
        )

    @property
    def crash_targets(self) -> Tuple[str, ...]:
        """Replicas that crash at any point (recovered or not)."""
        return tuple(
            sorted({e.target for e in self.events if e.kind == "crash"})
        )

    @property
    def faulty_replicas(self) -> Tuple[str, ...]:
        """Everything that ever misbehaves or crashes — the set that must
        stay within ``f`` for the BFT guarantees to apply."""
        return tuple(sorted(set(self.byzantine_targets) | set(self.crash_targets)))

    @property
    def instance_primaries(self) -> Tuple[str, ...]:
        """The view-0 primaries: r0..r{m-1} under rcc, just r0 otherwise.
        A fault on any of them exempts the bounded-liveness oracle (the
        view-change rescue operates on its own timescale)."""
        count = self.num_primaries if self.protocol == "rcc" else 1
        return tuple(f"r{i}" for i in range(count))

    @property
    def has_overload_knobs(self) -> bool:
        """True when any overload-protection knob deviates from the
        unprotected default (used only for scenario descriptions; the
        flow-invariant oracle applies unconditionally)."""
        return (
            self.queue_policy != "block"
            or self.batch_queue_capacity is not None
            or self.admission_max_inflight is not None
            or self.admission_max_per_client is not None
            or self.client_retransmit_ms is not None
            or self.client_window_initial is not None
        )

    @property
    def has_link_faults(self) -> bool:
        """Drops and partitions lose messages that nothing retransmits, so
        the bounded-liveness oracle does not apply (safety always does)."""
        return any(e.kind in ("drop-link", "partition") for e in self.events)

    # ------------------------------------------------------------------
    def to_config(self) -> SystemConfig:
        overrides = {}
        if self.view_change_timeout_ms is not None:
            overrides["view_change_timeout"] = millis(self.view_change_timeout_ms)
        if self.client_retransmit_ms is not None:
            overrides["client_retransmit"] = millis(self.client_retransmit_ms)
        return SystemConfig(
            queue_policy=self.queue_policy,
            batch_queue_capacity=self.batch_queue_capacity,
            admission_max_inflight=self.admission_max_inflight,
            admission_max_per_client=self.admission_max_per_client,
            client_window_initial=self.client_window_initial,
            protocol=self.protocol,
            num_primaries=self.num_primaries,
            num_replicas=self.num_replicas,
            num_clients=self.num_clients,
            client_groups=self.client_groups,
            batch_size=self.batch_size,
            ops_per_txn=self.ops_per_txn,
            checkpoint_txns=self.checkpoint_txns,
            ycsb_records=self.ycsb_records,
            warmup=millis(self.warmup_ms),
            measure=millis(self.measure_ms),
            zyzzyva_client_timeout=millis(self.zyzzyva_timeout_ms),
            faults_tolerated=self.faults_tolerated,
            seed=self.seed,
            record_completions=True,
            **overrides,
        )

    def with_events(self, events) -> "Scenario":
        return replace(self, events=tuple(events))

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["events"] = [asdict(event) for event in self.events]
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        events = tuple(
            FaultEvent(**{**event, "group": tuple(event.get("group", ()))})
            for event in payload.get("events", ())
        )
        fields = {
            key: value for key, value in payload.items() if key != "events"
        }
        return cls(events=events, **fields)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        lanes = f" m={self.num_primaries}" if self.protocol == "rcc" else ""
        knobs = (
            f"{self.protocol}{lanes} n={self.num_replicas} f={self.f} "
            f"clients={self.num_clients} batch={self.batch_size} "
            f"ckpt={self.checkpoint_txns} seed={self.seed}"
        )
        if self.has_overload_knobs:
            knobs += (
                f" flow[policy={self.queue_policy}"
                f" batch-cap={self.batch_queue_capacity}"
                f" inflight={self.admission_max_inflight}"
                f" per-client={self.admission_max_per_client}]"
            )
        if not self.events:
            return f"{knobs} (fault-free)"
        return f"{knobs} events=[{'; '.join(e.describe() for e in self.events)}]"
