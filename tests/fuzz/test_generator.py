"""Generator guarantees: determinism and staying inside the BFT contract."""

from repro.core.byzantine import POLICY_NAMES
from repro.fuzz.generator import generate_scenario
from repro.fuzz.scenario import PRIMARY_POLICIES

_SWEEP = [(0, i) for i in range(40)] + [(123, i) for i in range(10)]


def test_same_seed_and_index_is_bit_identical():
    for master_seed, index in ((0, 0), (0, 17), (9, 3)):
        first = generate_scenario(master_seed, index)
        again = generate_scenario(master_seed, index)
        assert first == again
        assert first.to_json() == again.to_json()


def test_distinct_indices_draw_distinct_scenarios():
    scenarios = [generate_scenario(0, i) for i in range(20)]
    assert len({s.to_json() for s in scenarios}) == 20
    # the per-run seed embeds the index, so no two runs share a seed
    assert len({s.seed for s in scenarios}) == 20


def test_generated_faults_stay_within_f():
    for master_seed, index in _SWEEP:
        scenario = generate_scenario(master_seed, index)
        assert len(scenario.faulty_replicas) <= scenario.f, scenario.describe()


def test_generated_policies_are_installable():
    for master_seed, index in _SWEEP:
        scenario = generate_scenario(master_seed, index)
        for event in scenario.events:
            if event.kind != "byzantine":
                continue
            assert event.policy in POLICY_NAMES
            # proposal-transforming policies only matter on a primary:
            # r0 for single-primary protocols, any lane primary under rcc
            if event.policy in PRIMARY_POLICIES:
                lane_primaries = {
                    f"r{i}" for i in range(scenario.num_primaries)
                }
                assert event.target in lane_primaries


def test_generated_scenarios_never_inject_bugs():
    # deliberate defects are reserved for the oracle self-tests
    assert all(
        generate_scenario(s, i).bug is None for s, i in _SWEEP
    )


def test_generator_respects_cost_guards():
    for master_seed, index in _SWEEP:
        scenario = generate_scenario(master_seed, index)
        if scenario.num_replicas >= 7:
            assert scenario.batch_size >= 8
        if scenario.batch_size <= 4:
            assert scenario.num_clients <= 16
        assert scenario.client_groups <= scenario.num_clients
