"""AIMD window and retransmission-backoff arithmetic."""

import pytest

from repro.flow import AIMDWindow, RetransmitBackoff
from repro.sim.rng import DeterministicRNG


# ----------------------------------------------------------------------
# additive increase
# ----------------------------------------------------------------------
def test_window_grows_after_full_window_of_successes():
    window = AIMDWindow(initial=4)
    for _ in range(3):
        window.on_success()
    assert window.size == 4  # not a full window yet
    window.on_success()
    assert window.size == 5
    assert window.increases == 1


def test_window_growth_capped_at_max_size():
    window = AIMDWindow(initial=3, max_size=4)
    for _ in range(20):
        window.on_success()
    assert window.size == 4


def test_has_room_compares_in_flight_to_size():
    window = AIMDWindow(initial=2)
    assert window.has_room(0)
    assert window.has_room(1)
    assert not window.has_room(2)


# ----------------------------------------------------------------------
# multiplicative decrease
# ----------------------------------------------------------------------
def test_congestion_halves_window_down_to_min():
    window = AIMDWindow(initial=16, min_size=2, decrease=0.5)
    assert window.on_congestion(now=0)
    assert window.size == 8
    assert window.on_congestion(now=100)
    assert window.size == 4
    for step in range(2, 10):
        window.on_congestion(now=step * 100)
    assert window.size == 2  # floor


def test_cooldown_collapses_nack_burst_into_one_decrease():
    window = AIMDWindow(initial=16, cooldown=50)
    assert window.on_congestion(now=10) is True
    # the rest of the burst lands inside the cooldown: ignored
    assert window.on_congestion(now=11) is False
    assert window.on_congestion(now=59) is False
    assert window.size == 8
    assert window.decreases == 1
    # past the cooldown the next signal counts again
    assert window.on_congestion(now=61) is True
    assert window.size == 4


def test_congestion_resets_increase_credit():
    window = AIMDWindow(initial=4)
    for _ in range(3):
        window.on_success()
    window.on_congestion(now=0)
    # the partial window of successes before the NACK no longer counts
    window.on_success()
    assert window.size == 2


def test_window_rejects_bad_parameters():
    with pytest.raises(ValueError):
        AIMDWindow(initial=0)
    with pytest.raises(ValueError):
        AIMDWindow(initial=4, decrease=1.0)
    with pytest.raises(ValueError):
        AIMDWindow(initial=4, max_size=2, min_size=3)


# ----------------------------------------------------------------------
# retransmission backoff
# ----------------------------------------------------------------------
def test_backoff_grows_exponentially_without_jitter():
    backoff = RetransmitBackoff(base=100, factor=2.0, jitter=0.0)
    assert backoff.delay(0) == 100
    assert backoff.delay(1) == 200
    assert backoff.delay(2) == 400


def test_backoff_caps_at_max():
    backoff = RetransmitBackoff(base=100, factor=2.0, cap=500, jitter=0.0)
    assert backoff.delay(10) == 500


def test_backoff_default_cap_is_sixteen_bases():
    backoff = RetransmitBackoff(base=100, factor=2.0, jitter=0.0)
    assert backoff.delay(30) == 1_600


def test_backoff_jitter_is_deterministic_and_bounded():
    a = RetransmitBackoff(base=1_000, jitter=0.1, rng=DeterministicRNG(7))
    b = RetransmitBackoff(base=1_000, jitter=0.1, rng=DeterministicRNG(7))
    delays_a = [a.delay(n) for n in range(5)]
    delays_b = [b.delay(n) for n in range(5)]
    assert delays_a == delays_b  # same seed, same schedule
    for attempt, delay in enumerate(delays_a):
        bare = min(1_000 * 2.0**attempt, 16_000)
        assert bare <= delay <= bare * 1.1
