"""Typed message base class with wire-size accounting.

ResilientDB "designed a base class that represents all the messages; to
create a new message type, one has to simply inherit this base class and
add required properties" (§4.8).  We follow that design: every protocol
message subclasses :class:`Message`.

Messages never literally serialise to bytes in the simulation — instead
each type reports its wire size, which the transport uses for bandwidth
occupancy and the crypto layer uses for per-byte costs.  ``signable_bytes``
*is* real, so authentication tokens are computed over actual content and
tampering is detectable in tests.
"""

from __future__ import annotations

import itertools
from typing import Optional

#: Fixed framing overhead per message on the wire: type tag, sender id,
#: view/sequence fields, length prefix — roughly what a compact binary
#: encoding of the paper's C++ message header costs.
WIRE_HEADER_BYTES = 64

_message_ids = itertools.count(1)


class Message:
    """Base class for everything that crosses the simulated network."""

    #: subclasses override: human-readable protocol tag
    kind: str = "message"

    __slots__ = ("msg_id", "sender", "auth", "created_at", "instance")

    def __init__(self, sender: str):
        self.msg_id = next(_message_ids)
        self.sender = sender
        #: :class:`~repro.crypto.schemes.AuthToken` attached by the sender.
        self.auth = None
        #: simulation time the message object was created (for tracing).
        self.created_at: Optional[int] = None
        #: consensus instance this message belongs to (multi-primary RCC
        #: runs m concurrent instances; single-instance protocols use 0).
        #: Part of the envelope: the codec carries it and the auth token
        #: covers it, so votes cannot be replayed across instances.
        self.instance: int = 0

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def payload_bytes(self) -> int:
        """Size of the type-specific body; subclasses override."""
        return 0

    def auth_bytes(self) -> int:
        if self.auth is None:
            return 0
        per_token = {
            "none": 0,
            "ed25519": 64,
            "rsa": 256,
            "cmac-aes": 16,
        }[self.auth.scheme.value]
        # MAC vectors ship only the receiver's own token on each copy.
        return per_token

    def wire_bytes(self) -> int:
        """Total size used for bandwidth and per-byte crypto costs."""
        return WIRE_HEADER_BYTES + self.payload_bytes() + self.auth_bytes()

    # ------------------------------------------------------------------
    # authentication support
    # ------------------------------------------------------------------
    def signable_bytes(self) -> bytes:
        """Canonical bytes covered by the authentication token.

        Subclasses extend :meth:`signable_fields`; the default covers kind
        and sender so cross-type and cross-sender replay fails verification.
        The envelope's instance id is always covered so a vote for one
        consensus instance cannot be replayed into another.
        """
        fields = ":".join(str(field) for field in self.signable_fields())
        return f"{fields}@i{self.instance}".encode("utf-8")

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} #{self.msg_id} from {self.sender}>"
