"""Observability: lifecycle spans, pipeline sampling and exporters.

Three pillars on top of the simulation substrate:

- :mod:`repro.obs.spans` — per-request lifecycle spans stamped at every
  pipeline hand-off, aggregated into per-stage latency histograms (the
  "where did the p99 go" breakdown).
- :mod:`repro.obs.sampler` — a periodic sim process snapshotting queue
  depths, CPU occupancy and network counters into bounded time series.
- :mod:`repro.obs.exporters` — Prometheus text, JSON, CSV and Chrome
  trace-event (Perfetto) serialisers.

All hooks follow the ``Tracer.enabled`` guard idiom: disabled
observability costs hot paths one attribute read and changes no results.
"""

from repro.obs.exporters import (
    chrome_trace,
    metrics_json,
    prometheus_text,
    sampler_csv,
)
from repro.obs.sampler import PipelineSampler, TimeSeries
from repro.obs.spans import STAGES, SpanRecorder, validate_stage_order

__all__ = [
    "STAGES",
    "SpanRecorder",
    "PipelineSampler",
    "TimeSeries",
    "chrome_trace",
    "metrics_json",
    "prometheus_text",
    "sampler_csv",
    "validate_stage_order",
]
