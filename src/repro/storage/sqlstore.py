"""SQLite-backed record store — the paper's off-memory comparison point.

§5.7 attaches SQLite to ResilientDB through API calls and observes the
execute-thread busy-waiting on every access, costing 94% of throughput.
Here the store is a *real* :mod:`sqlite3` database (so functional behaviour
— persistence across reopen, SQL access — is genuine) while the simulated
cost charged to the execute-thread comes from the storage cost model.  The
database lives in memory by default so the host machine's disk speed never
leaks into simulated results; tests that need durability pass a path.
"""

from __future__ import annotations

import sqlite3
from typing import Optional, Tuple

from repro.storage.base import KVStore, StorageCosts


class SqliteKVStore(KVStore):
    """Key-value records in a SQLite table, with modelled access costs."""

    name = "sqlite"

    def __init__(self, costs: Optional[StorageCosts] = None, path: str = ":memory:"):
        self.costs = costs or StorageCosts()
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS records (key TEXT PRIMARY KEY, value TEXT)"
        )
        self._conn.commit()
        self.reads = 0
        self.writes = 0

    def read(self, key: str) -> Tuple[Optional[str], int]:
        self.reads += 1
        row = self._conn.execute(
            "SELECT value FROM records WHERE key = ?", (key,)
        ).fetchone()
        return (row[0] if row else None), self.costs.sqlite_read_ns

    def write(self, key: str, value: str) -> int:
        self.writes += 1
        self._conn.execute(
            "INSERT INTO records (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )
        self._conn.commit()
        return self.costs.sqlite_write_ns

    def size(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM records").fetchone()[0]

    def preload(self, records) -> None:
        """Bulk-load the initial table without simulated cost."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO records (key, value) VALUES (?, ?)",
            list(records.items()),
        )
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()
