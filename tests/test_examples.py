"""Smoke tests: the shipped examples must run end to end."""

import os
import subprocess
import sys


_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_example(name: str, timeout: int = 240) -> str:
    script = os.path.join(_ROOT, "examples", name)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    completed = subprocess.run(
        [sys.executable, script],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "throughput:" in out
    assert "safety: all replicas agree" in out


def test_stage_latency_example():
    out = run_example("stage_latency.py")
    for protocol in ("pbft", "zyzzyva", "poe"):
        assert f"--- {protocol} " in out
    assert "stage latency" in out
    assert "largest p99 contributor:" in out


def test_stock_exchange_example():
    out = run_example("stock_exchange.py")
    assert "audit trail:" in out
    assert "trading continues" in out
