"""The YCSB benchmark workload (§5.1).

"For creating a transaction, each client indexes a YCSB table with an
active set of 600K records … client transactions contain only write
accesses … each client YCSB transaction is generated from a Zipfian
distribution.  During the initialization phase, we ensure each replica has
an identical copy of the table."
"""

from __future__ import annotations

from typing import Dict

from repro.sim.rng import DeterministicRNG
from repro.workloads.transactions import Operation, OpType, Transaction
from repro.workloads.zipf import UniformGenerator, ZipfianGenerator

#: the paper's active set
YCSB_DEFAULT_RECORDS = 600_000
#: YCSB's standard 10 × 10-byte fields collapse to one value column here
YCSB_VALUE_BYTES = 100


class YCSBWorkload:
    """Generates YCSB transactions and the initial table.

    Parameters mirror the knobs the paper's experiments turn:

    - ``ops_per_txn`` — Fig. 11 (multi-operation transactions, 1 → 50).
    - ``padding_bytes`` — Fig. 12 (message size, payload of 8-byte ints).
    - ``write_fraction`` — 1.0 in the paper; configurable for extensions.
    - ``theta`` — Zipfian skew; ``uniform=True`` bypasses skew entirely.
    """

    def __init__(
        self,
        rng: DeterministicRNG,
        record_count: int = YCSB_DEFAULT_RECORDS,
        ops_per_txn: int = 1,
        padding_bytes: int = 0,
        write_fraction: float = 1.0,
        theta: float = 0.99,
        uniform: bool = False,
        value_bytes: int = YCSB_VALUE_BYTES,
    ):
        if record_count <= 0:
            raise ValueError(f"record_count must be > 0, got {record_count}")
        if ops_per_txn <= 0:
            raise ValueError(f"ops_per_txn must be > 0, got {ops_per_txn}")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError(
                f"write_fraction must be in [0, 1], got {write_fraction}"
            )
        self.rng = rng
        self.record_count = record_count
        self.ops_per_txn = ops_per_txn
        self.padding_bytes = padding_bytes
        self.write_fraction = write_fraction
        self.value_bytes = value_bytes
        if uniform:
            self._keys = UniformGenerator(record_count, rng.fork("keys"))
        else:
            self._keys = ZipfianGenerator(record_count, rng.fork("keys"), theta=theta)
        self._value_counter = 0

    # ------------------------------------------------------------------
    # initial state
    # ------------------------------------------------------------------
    def initial_table(self) -> Dict[str, str]:
        """The identical table preloaded on every replica.

        Values are deterministic functions of the key so replicas agree
        without coordination.
        """
        return {
            self.key_name(i): self._initial_value(i) for i in range(self.record_count)
        }

    @staticmethod
    def key_name(index: int) -> str:
        return f"user{index}"

    def _initial_value(self, index: int) -> str:
        return f"v0:{index}".ljust(self.value_bytes, "x")

    # ------------------------------------------------------------------
    # transaction generation
    # ------------------------------------------------------------------
    def next_transaction(self, client_id: str) -> Transaction:
        ops = []
        for _ in range(self.ops_per_txn):
            key = self.key_name(self._keys.next_key())
            if self.rng.random() < self.write_fraction:
                self._value_counter += 1
                value = f"v{self._value_counter}:{client_id}".ljust(
                    self.value_bytes, "x"
                )
                ops.append(Operation(OpType.WRITE, key, value))
            else:
                ops.append(Operation(OpType.READ, key))
        return Transaction(
            client_id=client_id,
            ops=tuple(ops),
            padding_bytes=self.padding_bytes,
        )
