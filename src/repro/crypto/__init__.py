"""Cryptographic toolkit: signature schemes, MACs, digests and cost models.

The paper's §5.6 experiment (Fig. 13) compares four signing configurations —
no signatures, ED25519, RSA, and CMAC+AES between replicas with ED25519 at
clients — and its §6 lesson is that digital signatures are only needed where
non-repudiation matters (client requests), while replica-to-replica traffic
can use MACs.

Two concerns are deliberately separated here:

* **Integrity** is real: digests are real SHA-256, MAC tokens are real HMACs
  over the message bytes, and signature tokens are HMACs under the signer's
  private seed.  Tampering with a message in tests genuinely fails
  verification.  (True asymmetric primitives are unavailable offline; the
  key registry plays the role of the PKI.  The framework enforces that a
  node can only sign under its own identity, which is the property our
  simulated adversaries could otherwise violate.)
* **Cost** is modelled: every operation returns the number of simulated
  nanoseconds it costs, from a table calibrated against published
  single-core latencies of libsodium/OpenSSL on Cascade Lake-class CPUs.
  These costs, not the token bytes, are what the paper's experiments
  measure.
"""

from repro.crypto.costs import CryptoCosts, DEFAULT_COSTS
from repro.crypto.hashing import digest_bytes, digest_cost
from repro.crypto.keys import KeyStore
from repro.crypto.schemes import (
    CmacAesScheme,
    Ed25519Scheme,
    NullScheme,
    RsaScheme,
    SchemeName,
    SignatureScheme,
    make_scheme,
)

__all__ = [
    "CmacAesScheme",
    "CryptoCosts",
    "DEFAULT_COSTS",
    "Ed25519Scheme",
    "KeyStore",
    "NullScheme",
    "RsaScheme",
    "SchemeName",
    "SignatureScheme",
    "digest_bytes",
    "digest_cost",
    "make_scheme",
]
