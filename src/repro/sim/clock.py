"""Time units for the simulated clock.

The simulator clock is an integer count of nanoseconds.  Integers keep the
event queue deterministic (no floating-point tie ambiguity) and give enough
resolution to express sub-microsecond crypto costs exactly.
"""

NANOS_PER_MICRO = 1_000
NANOS_PER_MILLI = 1_000_000
NANOS_PER_SEC = 1_000_000_000


def nanos(value: float) -> int:
    """Convert a nanosecond quantity to clock ticks (identity, rounded)."""
    return int(round(value))


def micros(value: float) -> int:
    """Convert microseconds to clock ticks."""
    return int(round(value * NANOS_PER_MICRO))


def millis(value: float) -> int:
    """Convert milliseconds to clock ticks."""
    return int(round(value * NANOS_PER_MILLI))


def seconds(value: float) -> int:
    """Convert seconds to clock ticks."""
    return int(round(value * NANOS_PER_SEC))


def to_seconds(ticks: int) -> float:
    """Convert clock ticks back to (float) seconds, for reporting."""
    return ticks / NANOS_PER_SEC
