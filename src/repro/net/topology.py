"""Deployment topology: link latency and NIC bandwidth.

The paper's testbed is a single Google Cloud region (Iowa), so the default
topology is a flat datacenter: constant one-way latency between any two
endpoints and one full-duplex NIC per endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import NANOS_PER_SEC, micros


@dataclass(frozen=True)
class Topology:
    """Network parameters shared by all endpoints.

    ``nic_gbps`` is the per-endpoint link rate.  GCP c2-standard-8 instances
    get ~16 Gbps egress; we default to 10 Gbps, which reproduces where the
    message-size experiment becomes network-bound.
    """

    one_way_latency_ns: int = micros(100)
    nic_gbps: float = 10.0

    #: extra per-message latency jitter bound (uniform, deterministic RNG);
    #: zero keeps runs exactly reproducible unless an experiment opts in.
    jitter_ns: int = 0

    def transmission_ns(self, size_bytes: int) -> int:
        """Time for ``size_bytes`` to cross one NIC at the link rate."""
        bits = size_bytes * 8
        return int(bits / (self.nic_gbps * 1e9) * NANOS_PER_SEC)
