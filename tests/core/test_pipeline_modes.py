"""Tests for pipeline variants: thread counts, upper-bound mode, ablations."""

import pytest

from repro.core import ResilientDBSystem


def test_zero_batch_threads_still_commits(small_config):
    config = small_config.with_options(batch_threads=0)
    system = ResilientDBSystem(config)
    result = system.run()
    assert result.completed_requests > 50
    system.validate_safety()
    # no batch-thread saturation entries exist
    assert not any(s.startswith("batch") for s in result.primary_saturation)


def test_zero_execute_threads_still_commits(small_config):
    config = small_config.with_options(execute_threads=0)
    system = ResilientDBSystem(config)
    result = system.run()
    assert result.completed_requests > 50
    system.validate_safety()
    assert "execute" not in result.primary_saturation


def test_minimal_pipeline_0b0e(small_config):
    config = small_config.with_options(batch_threads=0, execute_threads=0)
    system = ResilientDBSystem(config)
    result = system.run()
    assert result.completed_requests > 50
    system.validate_safety()


def test_deeper_pipeline_not_slower(small_config):
    """Fig. 8's point: the full pipeline beats the single-threaded one
    (allowing sub-percent scheduling noise when neither is saturated)."""
    heavy = small_config.with_options(num_clients=512, batch_size=32)
    full = ResilientDBSystem(heavy).run()
    minimal = ResilientDBSystem(
        heavy.with_options(batch_threads=0, execute_threads=0)
    ).run()
    assert full.throughput_txns_per_s >= 0.98 * minimal.throughput_txns_per_s


def test_upper_bound_mode_no_consensus_messages(small_config):
    config = small_config.with_options(consensus_enabled=False)
    system = ResilientDBSystem(config)
    result = system.run()
    assert result.completed_requests > 100
    # only requests and responses cross the network: 2 messages/request
    per_request = result.messages_sent / result.completed_requests
    assert per_request < 2.5
    assert result.chain_height == 0  # no blocks without consensus


def test_upper_bound_no_execution_faster_or_equal(small_config):
    executed = ResilientDBSystem(
        small_config.with_options(consensus_enabled=False)
    ).run()
    skipped = ResilientDBSystem(
        small_config.with_options(consensus_enabled=False, execution_enabled=False)
    ).run()
    assert skipped.throughput_txns_per_s >= executed.throughput_txns_per_s


def test_out_of_order_beats_serialised(small_config):
    """§4.5 ablation: parallel consensus vs one-at-a-time."""
    loaded = small_config.with_options(num_clients=512, batch_size=16)
    parallel = ResilientDBSystem(loaded).run()
    serial_system = ResilientDBSystem(loaded.with_options(out_of_order=False))
    serial = serial_system.run()
    assert serial.completed_requests > 0
    assert parallel.throughput_txns_per_s > serial.throughput_txns_per_s
    serial_system.validate_safety()


def test_prev_hash_certification_mode(small_config):
    from repro.storage.blockchain import CertificationMode

    config = small_config.with_options(certification=CertificationMode.PREV_HASH)
    system = ResilientDBSystem(config)
    result = system.run()
    assert result.completed_requests > 0
    primary = system.replicas["r0"]
    primary.chain.validate()
    head = primary.chain.head()
    assert head.prev_hash is not None
    assert head.commit_certificate == ()


def test_buffer_pool_disabled_still_works(small_config):
    system = ResilientDBSystem(small_config.with_options(buffer_pool=False))
    result = system.run()
    assert result.completed_requests > 0
    primary = system.replicas["r0"]
    assert primary.message_pool.hits == 0


def test_buffer_pool_recycling_cheaper():
    """Pooled acquisition charges less simulated CPU than allocation."""
    from repro.storage.bufferpool import BufferPool

    assert BufferPool.pooled_acquire_ns < BufferPool.alloc_ns


def test_multiop_transactions_execute_all_ops(small_config):
    config = small_config.with_options(ops_per_txn=5, batch_size=4)
    system = ResilientDBSystem(config)
    result = system.run()
    assert result.completed_requests > 0
    assert result.throughput_ops_per_s == pytest.approx(
        5 * result.throughput_txns_per_s, rel=0.01
    )


def test_payload_padding_increases_wire_bytes(small_config):
    small = ResilientDBSystem(small_config).run()
    padded_system = ResilientDBSystem(
        small_config.with_options(payload_padding_bytes=4096)
    )
    padded = padded_system.run()
    small_bpr = small.bytes_sent / max(1, small.completed_requests)
    padded_bpr = padded.bytes_sent / max(1, padded.completed_requests)
    # 4 KB of padding travels client→primary once and primary→backups
    # n-1 times, so each request should carry >10 KB of extra traffic
    assert padded_bpr > 2 * small_bpr
    assert padded_bpr - small_bpr > 10_000


def test_client_batching_mode(small_config):
    """§4.2: clients can send a burst of transactions as one request."""
    config = small_config.with_options(client_batch_txns=10, batch_size=20)
    system = ResilientDBSystem(config)
    result = system.run()
    assert result.completed_requests > 0
    assert result.completed_txns >= 10 * result.completed_requests
    system.validate_safety()
