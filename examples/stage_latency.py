#!/usr/bin/env python3
"""Where did the p99 go?  Per-stage latency breakdown across protocols.

Runs the same workload under PBFT, Zyzzyva and PoE with lifecycle spans
enabled, then prints each protocol's stage-latency table: how long a
request spends reaching the primary, waiting in a batch, moving through
the consensus phases, executing, and travelling back to the client.

Notice that Zyzzyva has no "prepare" row — its fast path skips that
phase entirely — and that PoE's certification shows up as a "prepare"
contribution between propose and commit.

    python examples/stage_latency.py
"""

from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis


def run(protocol: str):
    config = SystemConfig(
        protocol=protocol,
        num_replicas=4,
        num_clients=64,
        client_groups=4,
        batch_size=10,
        ycsb_records=2_000,
        warmup=millis(50),
        measure=millis(150),
        lifecycle_spans=True,
    )
    system = ResilientDBSystem(config)
    result = system.run()
    return result


def main() -> None:
    print("=== stage-latency breakdown (mean / p50 / p99) ===")
    for protocol in ("pbft", "zyzzyva", "poe"):
        result = run(protocol)
        print(f"\n--- {protocol} "
              f"({result.throughput_txns_per_s / 1e3:.1f}K txns/s, "
              f"p99 {result.latency_p99_s * 1e3:.2f} ms) ---")
        print(result.stage_latency_table())

        # the table is also available as plain data
        total = result.stage_latency["total"]
        slowest = max(
            (stage for stage in result.stage_latency if stage != "total"),
            key=lambda stage: result.stage_latency[stage]["p99_s"],
        )
        share = result.stage_latency[slowest]["p99_s"] / total["p99_s"]
        print(f"largest p99 contributor: {slowest} "
              f"({share * 100:.0f}% of the end-to-end p99)")


if __name__ == "__main__":
    main()
