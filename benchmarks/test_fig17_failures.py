"""Figure 17: crashing 1 and f=5 backup replicas, PBFT vs Zyzzyva.

Paper claims: PBFT's throughput barely dips (no phase needs more than
2f+1 of the 3f+1 replicas); Zyzzyva loses ~39× with even one failure
because every client waits out its timer for the full 3f+1 fast path.
"""

from repro.bench import fig17_failures


def test_fig17_failures(benchmark, record_figure):
    figure = benchmark.pedantic(fig17_failures, rounds=1, iterations=1)
    record_figure(figure)
    pbft = dict(zip(figure.get("PBFT").xs(), figure.get("PBFT").throughputs()))
    zyzzyva = dict(
        zip(figure.get("Zyzzyva").xs(), figure.get("Zyzzyva").throughputs())
    )
    # shape: PBFT is essentially flat under failures
    assert pbft[1] > 0.85 * pbft[0]
    assert pbft[5] > 0.85 * pbft[0]
    # shape: Zyzzyva collapses with a single failure (paper: ~39x)
    assert zyzzyva[1] < zyzzyva[0] / 10
    assert zyzzyva[5] < zyzzyva[0] / 10
    # and the slow path is what's left: latency ~ the client timeout
    zyz_late = figure.get("Zyzzyva").points[1]
    assert zyz_late.latency_s > 1.0
