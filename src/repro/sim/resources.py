"""Shared resources: counting semaphores and the simulated CPU.

:class:`CpuScheduler` is central to the reproduction.  The paper deploys
replicas on 1/2/4/8-core machines and studies how pipeline threads saturate
(Figures 9 and 16).  Here each replica owns a ``CpuScheduler`` with ``N``
core slots; every unit of work a simulated thread performs must occupy a
core slot for the work's duration.  When more threads are runnable than
cores exist, work serialises exactly as it would under an OS scheduler, and
per-thread busy time gives the saturation metric the paper plots.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional


class _Acquire:
    """Effect: wait for one unit of the resource."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource

    def _bind(self, sim, process) -> None:
        resource = self.resource
        if resource.in_use < resource.capacity:
            resource.in_use += 1
            sim.schedule(0, process.resume, None)
        else:
            resource._waiters.append(process)


class Resource:
    """A counting semaphore with FIFO granting.

    Used for NIC send slots and any other capacity-limited facility.
    """

    __slots__ = ("sim", "name", "capacity", "in_use", "_waiters")

    def __init__(self, sim, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque = deque()

    def acquire(self) -> _Acquire:
        return _Acquire(self)

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            self.sim.schedule(0, waiter.resume, None)
        else:
            self.in_use -= 1

    @property
    def queued(self) -> int:
        return len(self._waiters)


class _CpuRun:
    """Effect: occupy a core for ``cost`` ticks on behalf of ``thread_id``."""

    __slots__ = ("cpu", "cost", "thread_id")

    def __init__(self, cpu: "CpuScheduler", cost: int, thread_id: str):
        self.cpu = cpu
        self.cost = cost
        self.thread_id = thread_id

    def _bind(self, sim, process) -> None:
        self.cpu._submit(sim, process, self.cost, self.thread_id)


class CpuScheduler:
    """A work-conserving simulated multi-core CPU.

    Simulated threads call ``yield cpu.run(cost, thread_id)`` for every unit
    of computation.  The scheduler grants free cores FIFO; a thread whose
    work is running is off the ready queue until the work completes (work
    units are not preempted — they model short, bounded tasks such as
    "verify one signature" or "assemble one batch", so FIFO granting
    approximates an OS timeslice scheduler closely at this granularity).

    Busy nanoseconds are accumulated per ``thread_id`` so saturation
    (busy / window) can be reported per pipeline stage, which is exactly the
    quantity Figure 9 of the paper plots.
    """

    __slots__ = ("sim", "cores", "busy_cores", "_waiting", "busy_ns", "_window_start")

    def __init__(self, sim, cores: int):
        if cores < 1:
            raise ValueError(f"core count must be >= 1, got {cores}")
        self.sim = sim
        self.cores = cores
        self.busy_cores = 0
        self._waiting: Deque = deque()
        self.busy_ns: Dict[str, int] = {}
        self._window_start = 0

    def run(self, cost: int, thread_id: str) -> _CpuRun:
        """Effect: charge ``cost`` ticks of CPU to ``thread_id``."""
        if cost < 0:
            raise ValueError(f"cpu cost must be >= 0, got {cost}")
        return _CpuRun(self, int(cost), thread_id)

    def _submit(self, sim, process, cost: int, thread_id: str) -> None:
        if cost == 0:
            sim.schedule(0, process.resume, None)
            return
        if self.busy_cores < self.cores:
            self._start(sim, process, cost, thread_id)
        else:
            self._waiting.append((process, cost, thread_id))

    def _start(self, sim, process, cost: int, thread_id: str) -> None:
        self.busy_cores += 1
        self.busy_ns[thread_id] = self.busy_ns.get(thread_id, 0) + cost
        sim.schedule(cost, self._complete, process)

    def _complete(self, process) -> None:
        self.busy_cores -= 1
        if self._waiting:
            next_process, cost, thread_id = self._waiting.popleft()
            self._start(self.sim, next_process, cost, thread_id)
        process.resume(None)

    # ------------------------------------------------------------------
    # measurement-window support
    # ------------------------------------------------------------------
    def reset_window(self) -> None:
        """Zero the busy-time accounting (called when warmup ends)."""
        self.busy_ns = {}
        self._window_start = self.sim.now

    def saturation(self, thread_id: str, window_end: Optional[int] = None) -> float:
        """Fraction of the measurement window ``thread_id`` spent on-core.

        1.0 means the stage is fully saturated (the bottleneck); the paper's
        Figure 9 reports this as a percentage.
        """
        end = self.sim.now if window_end is None else window_end
        window = end - self._window_start
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_ns.get(thread_id, 0) / window)

    def saturations(self) -> Dict[str, float]:
        """Saturation of every thread observed during the window."""
        return {tid: self.saturation(tid) for tid in sorted(self.busy_ns)}
