"""Scenario data model: serialisation, derived properties, config mapping."""

import pytest

from repro.fuzz.scenario import FaultEvent, Scenario
from repro.sim.clock import millis


def _sample_scenario():
    return Scenario(
        seed=42,
        protocol="zyzzyva",
        num_replicas=7,
        num_clients=32,
        client_groups=4,
        batch_size=8,
        checkpoint_txns=96,
        measure_ms=45.5,
        zyzzyva_timeout_ms=9.25,
        events=(
            FaultEvent(kind="byzantine", at_ms=0.0, target="r0",
                       policy="equivocating-primary"),
            FaultEvent(kind="crash", at_ms=30.0, target="r3"),
            FaultEvent(kind="recover", at_ms=41.0, target="r3"),
            FaultEvent(kind="drop-link", at_ms=28.0, src="r1", dst="r2",
                       probability=0.05, until_ms=44.0),
            FaultEvent(kind="partition", at_ms=35.0, group=("r5", "r6"),
                       until_ms=50.0),
        ),
        label="sample",
    )


def test_json_round_trip_is_lossless():
    scenario = _sample_scenario()
    assert Scenario.from_json(scenario.to_json()) == scenario


def test_round_trip_preserves_event_tuple_types():
    # JSON turns tuples into lists; from_dict must restore real
    # FaultEvent instances (and tuple groups) or replay diverges
    restored = Scenario.from_json(_sample_scenario().to_json())
    assert isinstance(restored.events, tuple)
    assert all(isinstance(event, FaultEvent) for event in restored.events)
    partition = restored.events[-1]
    assert partition.group == ("r5", "r6")


def test_unknown_event_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault event kind"):
        FaultEvent(kind="meteor-strike")


def test_to_config_maps_every_knob():
    scenario = _sample_scenario()
    config = scenario.to_config()
    assert config.protocol == "zyzzyva"
    assert config.num_replicas == 7
    assert config.num_clients == 32
    assert config.client_groups == 4
    assert config.batch_size == 8
    assert config.checkpoint_txns == 96
    assert config.seed == 42
    assert config.measure == millis(45.5)
    assert config.zyzzyva_client_timeout == millis(9.25)
    # the client-replies oracle needs the completion log
    assert config.record_completions is True


def test_derived_fault_properties():
    scenario = _sample_scenario()
    assert scenario.f == 2
    assert scenario.byzantine_targets == ("r0",)
    assert scenario.crash_targets == ("r3",)
    assert scenario.faulty_replicas == ("r0", "r3")
    assert scenario.has_link_faults is True
    quiet = Scenario(events=(FaultEvent(kind="crash", target="r1"),))
    assert quiet.has_link_faults is False
    assert quiet.faulty_replicas == ("r1",)


def test_describe_mentions_every_event():
    text = _sample_scenario().describe()
    for fragment in ("zyzzyva n=7 f=2", "equivocating-primary", "crash r3",
                     "recover r3", "drop r1->r2", "partition {r5,r6}"):
        assert fragment in text
    assert "(fault-free)" in Scenario().describe()
