"""Timing-free cluster harness for the multi-primary coordinator.

The :class:`~tests.consensus.harness.Cluster` counterpart for
:class:`~repro.multi.InstanceCoordinator`: every replica runs a full
coordinator (m PBFT instances), messages are delivered over an in-memory
wire, and ExecuteReady actions — which the coordinator emits in *global*
sequence space — feed a stand-in ordered execution layer.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.consensus import (
    Broadcast,
    CancelViewChangeTimer,
    QuorumConfig,
    SendTo,
    StartViewChangeTimer,
)
from repro.consensus.base import EnterView, ExecuteReady
from repro.multi import InstanceCoordinator

from tests.consensus.harness import make_request

__all__ = ["MultiCluster", "make_request"]

_HANDLERS = {
    "pre-prepare": "handle_preprepare",
    "prepare": "handle_prepare",
    "commit": "handle_commit",
    "view-change": "handle_view_change",
    "new-view": "handle_new_view",
}


class MultiCluster:
    """N coordinators (m lanes each) plus an in-memory message bus."""

    def __init__(self, n: int = 4, m: int = 2):
        self.quorum = QuorumConfig.for_replicas(n)
        self.ids: Tuple[str, ...] = tuple(f"r{i}" for i in range(n))
        self.num_instances = m
        self.replicas: Dict[str, InstanceCoordinator] = {
            rid: InstanceCoordinator(rid, self.ids, self.quorum, m)
            for rid in self.ids
        }
        self.wire: deque = deque()
        #: committed-but-maybe-out-of-order ExecuteReady per replica,
        #: keyed by *global* sequence
        self._ready: Dict[str, Dict[int, ExecuteReady]] = {rid: {} for rid in self.ids}
        self._next_exec: Dict[str, int] = {rid: 1 for rid in self.ids}
        #: ordered executed log per replica: [(global sequence, digest)]
        self.executed: Dict[str, List[Tuple[int, str]]] = {rid: [] for rid in self.ids}
        #: armed view-change timers per replica (global sequences)
        self.timers: Dict[str, Set[int]] = {rid: set() for rid in self.ids}
        self.client_messages: List[Tuple[str, str, object]] = []
        self.crashed: Set[str] = set()

    # ------------------------------------------------------------------
    def propose(self, rid: str, request):
        """Feed a request to replica ``rid`` (must lead some lane)."""
        proposal, actions = self.replicas[rid].propose(request.digest, request)
        self._apply(rid, actions)
        return proposal

    def balance(self, rid: str) -> None:
        """Run one skip-certificate balance pass on replica ``rid``."""
        self._apply(rid, self.replicas[rid].balance_actions())

    # ------------------------------------------------------------------
    def _apply(self, rid: str, actions) -> None:
        for action in actions:
            if isinstance(action, Broadcast):
                for dst in self.ids:
                    if dst != rid:
                        self.wire.append((rid, dst, action.message))
            elif isinstance(action, SendTo):
                if action.dst in self.replicas:
                    self.wire.append((rid, action.dst, action.message))
                else:
                    self.client_messages.append((rid, action.dst, action.message))
            elif isinstance(action, ExecuteReady):
                self._ready[rid][action.sequence] = action
                self._drain_executions(rid)
            elif isinstance(action, StartViewChangeTimer):
                self.timers[rid].add(action.sequence)
            elif isinstance(action, CancelViewChangeTimer):
                self.timers[rid].discard(action.sequence)
            elif isinstance(action, EnterView):
                pass
            else:  # pragma: no cover - future action types
                raise AssertionError(f"unhandled action {action!r}")

    def _drain_executions(self, rid: str) -> None:
        ready = self._ready[rid]
        while self._next_exec[rid] in ready:
            action = ready.pop(self._next_exec[rid])
            self.executed[rid].append((action.sequence, action.request.digest))
            self._next_exec[rid] += 1

    # ------------------------------------------------------------------
    def deliver_one(self) -> bool:
        if not self.wire:
            return False
        src, dst, message = self.wire.popleft()
        if src in self.crashed or dst in self.crashed:
            return True
        handler = _HANDLERS[message.kind]
        actions = getattr(self.replicas[dst], handler)(message)
        self._apply(dst, actions)
        return True

    def run(self, max_steps: int = 100_000) -> None:
        steps = 0
        while self.deliver_one():
            steps += 1
            if steps > max_steps:
                raise AssertionError("message storm: cluster did not quiesce")

    def fire_timer(self, rid: str, global_seq: int) -> None:
        self.timers[rid].discard(global_seq)
        self._apply(rid, self.replicas[rid].on_view_change_timeout(global_seq))

    def fire_all_timers(self, global_seq: Optional[int] = None) -> None:
        """Fire one armed timer on every live replica (the simultaneous
        timeout case); ``global_seq=None`` fires each replica's lowest."""
        for rid in self.ids:
            if rid in self.crashed:
                continue
            armed = sorted(self.timers[rid])
            if not armed:
                continue
            target = global_seq if global_seq is not None else armed[0]
            if target in self.timers[rid]:
                self.fire_timer(rid, target)
