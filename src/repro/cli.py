"""Command-line interface: run one deployment or regenerate a figure.

Examples::

    python -m repro run --replicas 16 --clients 8000 --batch-size 100
    python -m repro run --protocol zyzzyva --crash-backups 1
    python -m repro figure fig10
    python -m repro list-figures
    python -m repro fuzz --runs 50 --seed 0
    python -m repro fuzz --runs 1 --seed 0 --offset 17 --shrink
    python -m repro fuzz --replay artifacts/fuzz-run-17.json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ResilientDB reproduction (ICDCS 2020) — simulated "
        "permissioned blockchain fabric",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one deployment and report")
    run.add_argument("--protocol", choices=("pbft", "zyzzyva", "poe", "rcc"),
                     default="pbft")
    run.add_argument("--primaries", type=int, default=None, metavar="M",
                     help="concurrent consensus instances for --protocol "
                     "rcc (default: 2 for rcc, 1 otherwise)")
    run.add_argument("--replicas", type=int, default=16)
    run.add_argument("--clients", type=int, default=8_000)
    run.add_argument("--client-groups", type=int, default=8)
    run.add_argument("--batch-size", type=int, default=100)
    run.add_argument("--batch-threads", type=int, default=2)
    run.add_argument("--execute-threads", type=int, default=1)
    run.add_argument("--ops-per-txn", type=int, default=1)
    run.add_argument("--cores", type=int, default=8)
    run.add_argument("--storage", choices=("memory", "sqlite"),
                     default="memory")
    run.add_argument("--client-scheme", default="ed25519",
                     choices=("none", "ed25519", "rsa", "cmac-aes"))
    run.add_argument("--replica-scheme", default="cmac-aes",
                     choices=("none", "ed25519", "rsa", "cmac-aes"))
    run.add_argument("--crash-backups", type=int, default=0)
    run.add_argument("--warmup-ms", type=float, default=120)
    run.add_argument("--measure-ms", type=float, default=200)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--records", type=int, default=60_000)
    run.add_argument("--full-fidelity", action="store_true",
                     help="real auth tokens + real state application")
    obs = run.add_argument_group("observability")
    obs.add_argument("--trace-out", metavar="PATH",
                     help="write lifecycle spans + event trace as Chrome "
                     "trace-event JSON (load at https://ui.perfetto.dev)")
    obs.add_argument("--metrics-out", metavar="PATH",
                     help="write metrics in Prometheus text format")
    obs.add_argument("--metrics-json", metavar="PATH",
                     help="write metrics + time series as JSON")
    obs.add_argument("--samples-out", metavar="PATH",
                     help="write sampled pipeline time series as CSV")
    obs.add_argument("--sample-interval-ms", type=float, default=None,
                     metavar="MS",
                     help="queue/CPU/network sampling period (default: 5ms "
                     "when --samples-out is given, else off)")
    obs.add_argument("--no-spans", action="store_true",
                     help="skip lifecycle spans (no stage-latency table)")
    flow = run.add_argument_group("overload protection")
    flow.add_argument("--queue-policy", choices=("block", "shed_oldest",
                                                 "reject"), default="block",
                      help="what bounded stage queues do when full "
                      "(default: block = back-pressure)")
    flow.add_argument("--batch-queue-capacity", type=int, default=None,
                      metavar="N", help="bound the primary's batch queue")
    flow.add_argument("--admission-max-inflight", type=int, default=None,
                      metavar="N", help="max consensus instances a primary "
                      "keeps in flight before busy-NACKing new requests")
    flow.add_argument("--admission-max-per-client", type=int, default=None,
                      metavar="N", help="max unexecuted requests admitted "
                      "per client group")
    flow.add_argument("--client-retransmit-ms", type=float, default=None,
                      metavar="MS", help="client retransmission base delay "
                      "(exponential backoff with deterministic jitter)")
    flow.add_argument("--client-window", type=int, default=None, metavar="N",
                      help="initial AIMD pending window per client group "
                      "(default: no window, all logical clients in flight)")
    flow.add_argument("--check-flow", action="store_true",
                      help="after the run, verify the flow-control "
                      "invariants and require nonzero goodput; nonzero "
                      "exit on violation")

    figure = commands.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("figure_id", help="e.g. fig10 (see list-figures)")

    commands.add_parser("list-figures", help="list regenerable figures")

    fuzz = commands.add_parser(
        "fuzz",
        help="run the deterministic scenario fuzzer",
        description="Generate randomized deployments (protocol x faults x "
        "byzantine policies x config), run each through the simulator, and "
        "judge it against the safety/liveness oracle bank.  Every run is a "
        "pure function of (--seed, scenario index), so any failure replays "
        "from the two integers printed with it.",
    )
    fuzz.add_argument("--runs", type=int, default=50,
                      help="number of scenarios to run (default: 50)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign master seed (default: 0)")
    fuzz.add_argument("--offset", type=int, default=0,
                      help="first scenario index (replay a specific run "
                      "with --offset N --runs 1)")
    fuzz.add_argument("--shrink", action="store_true",
                      help="shrink failing scenarios to a minimal fault "
                      "plan (delta debugging)")
    fuzz.add_argument("--artifacts", metavar="DIR",
                      help="write failing scenarios as replayable JSON "
                      "artifacts under DIR")
    fuzz.add_argument("--replay", metavar="FILE",
                      help="replay one scenario from an artifact (or bare "
                      "scenario) JSON file instead of generating")
    fuzz.add_argument("--profile", choices=("mixed", "overload"),
                      default="mixed",
                      help="scenario generator: 'mixed' crosses protocols "
                      "and faults (a slice with overload knobs); 'overload' "
                      "always drives a small cluster past capacity with "
                      "protection on (default: mixed)")
    return parser


def _figure_registry():
    from repro.bench import experiments

    return {
        name.split("_")[0]: getattr(experiments, name)
        for name in dir(experiments)
        if name.startswith("fig")
    }


def _command_run(args) -> int:
    sample_interval_ms = args.sample_interval_ms
    if sample_interval_ms is not None and sample_interval_ms <= 0:
        print(f"invalid --sample-interval-ms: {sample_interval_ms} "
              "(must be positive)", file=sys.stderr)
        return 2
    if sample_interval_ms is None and args.samples_out:
        sample_interval_ms = 5.0
    # fail before the (possibly long) run, not after it
    for path in (args.trace_out, args.metrics_out, args.metrics_json,
                 args.samples_out):
        if path:
            parent = os.path.dirname(path) or "."
            if not os.path.isdir(parent):
                print(f"output directory does not exist: {parent}",
                      file=sys.stderr)
                return 2
    primaries = args.primaries
    if primaries is None:
        primaries = 2 if args.protocol == "rcc" else 1
    if args.protocol != "rcc" and primaries != 1:
        print("--primaries requires --protocol rcc", file=sys.stderr)
        return 2
    config = SystemConfig(
        protocol=args.protocol,
        num_primaries=primaries,
        num_replicas=args.replicas,
        num_clients=args.clients,
        client_groups=args.client_groups,
        batch_size=args.batch_size,
        batch_threads=args.batch_threads,
        execute_threads=args.execute_threads,
        ops_per_txn=args.ops_per_txn,
        cores_per_replica=args.cores,
        storage_backend=args.storage,
        client_scheme=args.client_scheme,
        replica_scheme=args.replica_scheme,
        ycsb_records=args.records,
        warmup=millis(args.warmup_ms),
        measure=millis(args.measure_ms),
        seed=args.seed,
        real_auth_tokens=args.full_fidelity,
        apply_state=args.full_fidelity,
        trace=bool(args.trace_out),
        lifecycle_spans=not args.no_spans,
        span_keep_finished=10_000 if args.trace_out else 0,
        sample_interval=(
            millis(sample_interval_ms) if sample_interval_ms else None
        ),
        queue_policy=args.queue_policy,
        batch_queue_capacity=args.batch_queue_capacity,
        admission_max_inflight=args.admission_max_inflight,
        admission_max_per_client=args.admission_max_per_client,
        client_retransmit=(
            millis(args.client_retransmit_ms)
            if args.client_retransmit_ms is not None
            else None
        ),
        client_window_initial=args.client_window,
    )
    system = ResilientDBSystem(config)
    try:
        if args.crash_backups:
            system.crash_replicas(args.crash_backups)
        result = system.run()
        _write_observability(args, system)
    finally:
        system.close()
    print(result.summary())
    print(f"ops/s:        {result.throughput_ops_per_s / 1e3:.1f}K")
    print(f"messages:     {result.messages_sent} "
          f"({result.bytes_sent / 1e6:.1f} MB)")
    print(f"chain height: {result.chain_height} "
          f"(stable checkpoint {result.stable_checkpoint})")
    print("primary saturation:")
    for stage, value in sorted(result.primary_saturation.items()):
        print(f"  {stage:<12} {value * 100:5.1f}%")
    if (result.busy_nacks_sent or result.requests_shed
            or result.admission_rejected):
        print(f"flow control: nacks={result.busy_nacks_sent} "
              f"(received {result.busy_nacks_received}) "
              f"shed={result.requests_shed} "
              f"admission-rejected={result.admission_rejected}")
    table = result.stage_latency_table()
    if table:
        print(table)
    if args.check_flow:
        from repro.flow import check_flow_invariants

        problems = check_flow_invariants(system)
        for problem in problems:
            print(f"flow invariant violated: {problem}", file=sys.stderr)
        if result.completed_requests == 0:
            print("flow check failed: zero goodput", file=sys.stderr)
            return 1
        if problems:
            return 1
        print("flow invariants hold", file=sys.stderr)
    return 0


def _write_observability(args, system) -> None:
    """Export whatever observability outputs the run asked for."""
    from repro.obs import chrome_trace, metrics_json, prometheus_text, sampler_csv

    def _write(path: str, payload: str, what: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote {what} to {path}", file=sys.stderr)

    if args.trace_out:
        _write(
            args.trace_out,
            chrome_trace(spans=system.spans, tracer=system.tracer),
            "Chrome trace (Perfetto-loadable)",
        )
    if args.metrics_out:
        _write(
            args.metrics_out,
            prometheus_text(
                system.metrics, sampler=system.sampler, spans=system.spans
            ),
            "Prometheus metrics",
        )
    if args.metrics_json:
        _write(
            args.metrics_json,
            metrics_json(
                system.metrics, sampler=system.sampler, spans=system.spans
            ),
            "JSON metrics",
        )
    if args.samples_out:
        if system.sampler is None:
            print("no sampler configured; nothing to write", file=sys.stderr)
        else:
            _write(args.samples_out, sampler_csv(system.sampler), "sampler CSV")


def _command_fuzz(args) -> int:
    from repro.fuzz import fuzz_campaign, load_scenario, run_scenario, shrink_scenario

    if args.replay:
        if not os.path.isfile(args.replay):
            print(f"no such artifact: {args.replay}", file=sys.stderr)
            return 2
        scenario = load_scenario(args.replay)
        outcome = run_scenario(scenario)
        print(outcome.summary())
        for violation in outcome.violations:
            print(f"  {violation}")
        if not outcome.ok and args.shrink:
            result = shrink_scenario(scenario)
            print(
                f"  shrunk {len(scenario.events)} -> "
                f"{len(result.scenario.events)} event(s) in "
                f"{result.attempts} attempt(s): {result.scenario.describe()}"
            )
        return 0 if outcome.ok else 1

    if args.runs <= 0:
        print(f"invalid --runs: {args.runs} (must be positive)",
              file=sys.stderr)
        return 2
    source = None
    if args.profile == "overload":
        from repro.fuzz.generator import generate_overload_scenario

        source = generate_overload_scenario
    report = fuzz_campaign(
        runs=args.runs,
        master_seed=args.seed,
        offset=args.offset,
        shrink=args.shrink,
        artifacts_dir=args.artifacts,
        scenario_source=source,
        log=print,
    )
    print(
        f"fuzz: {len(report.outcomes)} run(s), "
        f"{len(report.failures)} failure(s) "
        f"(seed {args.seed}, offset {args.offset}, "
        f"profile {args.profile}) "
        f"in {report.wall_seconds:.1f}s"
    )
    return 0 if report.ok else 1


def _command_figure(figure_id: str) -> int:
    registry = _figure_registry()
    fn = registry.get(figure_id)
    if fn is None:
        print(f"unknown figure {figure_id!r}; available: "
              f"{', '.join(sorted(registry))}", file=sys.stderr)
        return 2
    fn().print()
    return 0


def _command_list() -> int:
    for figure_id, fn in sorted(_figure_registry().items()):
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{figure_id:>8}  {doc}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "figure":
        return _command_figure(args.figure_id)
    if args.command == "fuzz":
        return _command_fuzz(args)
    return _command_list()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
