"""CLI surface of the fuzzer: campaign, replay, argument validation."""

from repro.cli import main
from tests.fuzz.test_runner_shrinker import BUG_SCENARIO


def test_fuzz_campaign_smoke(capsys):
    assert main(["fuzz", "--runs", "2", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "fuzz: 2 run(s), 0 failure(s) (seed 0, offset 0, profile mixed)" in out
    assert "run-0" in out and "run-1" in out


def test_fuzz_rejects_nonpositive_runs(capsys):
    assert main(["fuzz", "--runs", "0"]) == 2
    assert "invalid --runs" in capsys.readouterr().err


def test_fuzz_replay_missing_artifact(capsys):
    assert main(["fuzz", "--replay", "/no/such/artifact.json"]) == 2
    assert "no such artifact" in capsys.readouterr().err


def test_fuzz_replay_failing_scenario(tmp_path, capsys):
    path = tmp_path / "bug.json"
    path.write_text(BUG_SCENARIO.to_json())
    assert main(["fuzz", "--replay", str(path)]) == 1
    out = capsys.readouterr().out
    assert "violation" in out
    assert "[execution-order]" in out
