"""Execute one scenario through a full deployment and judge it.

``run_scenario`` is the fuzzer's unit of work and the replay entry point:
build the :class:`~repro.core.system.ResilientDBSystem` the scenario
describes, inject its fault events on schedule, run the measurement
protocol, give the deployment a fault-free quiesce window, then evaluate
the oracle bank.  Determinism of the simulator makes the outcome a pure
function of the scenario, which is what seed replay and shrinking rely on.

``BUG_REGISTRY`` holds *deliberately injected defects* used to prove the
oracles catch real violations (ISSUE 2's self-test requirement).  The
scenario generator never produces them; they exist for the fuzzer's own
test fixtures and for manually probing oracle sensitivity::

    Scenario(bug="weak-commit-quorum", events=(two-faced primary, ...))

weakens every replica's commit quorum to f+1 — two such quorums need not
intersect in an honest replica, so a two-faced primary genuinely splits
the execution order, which ``execution-order`` must report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.consensus.base import QuorumConfig
from repro.core.system import ResilientDBSystem
from repro.fuzz.oracles import Violation, run_oracle_bank
from repro.fuzz.scenario import FaultEvent, Scenario
from repro.sim.clock import millis


@dataclass
class RunOutcome:
    """Everything one fuzz run reports."""

    scenario: Scenario
    violations: List[Violation] = field(default_factory=list)
    completed_requests: int = 0
    chain_height: int = 0
    stable_checkpoint: int = 0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"{self.scenario.label or 'scenario'}: {status} "
            f"[{self.scenario.describe()}] "
            f"requests={self.completed_requests} "
            f"chain={self.chain_height} ({self.wall_seconds:.1f}s)"
        )


# ----------------------------------------------------------------------
# deliberate defects (oracle self-test hooks)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _WeakQuorumConfig(QuorumConfig):
    """Broken quorum arithmetic: commit quorums of f+1 do not intersect in
    an honest replica, so equivocation can split the cluster."""

    @property
    def commit_quorum(self) -> int:  # type: ignore[override]
        return self.f + 1


def _inject_weak_commit_quorum(system: ResilientDBSystem) -> None:
    for replica in system.replicas.values():
        weak = _WeakQuorumConfig(n=replica.quorum.n, f=replica.quorum.f)
        replica.quorum = weak
        replica.engine.quorum = weak
        # the chain's certificate check derives from the same (broken)
        # arithmetic — otherwise it crashes the run before the oracles
        # get to see the divergence
        replica.chain.quorum_size = weak.commit_quorum


#: name -> installer; applied to the built system before it starts
BUG_REGISTRY: Dict[str, Callable[[ResilientDBSystem], None]] = {
    "weak-commit-quorum": _inject_weak_commit_quorum,
}


# ----------------------------------------------------------------------
# event injection
# ----------------------------------------------------------------------
def apply_events(system: ResilientDBSystem, scenario: Scenario) -> None:
    """Schedule every fault event on the deployment's simulator."""
    sim = system.sim
    faults = system.faults
    for event in scenario.events:
        at_ns = millis(event.at_ms)
        until_ns = millis(event.until_ms) if event.until_ms is not None else None
        if event.kind == "crash":
            faults.crash_at(event.target, at_ns)
        elif event.kind == "recover":
            system.recover_replica(event.target, at_ns)
        elif event.kind == "byzantine":
            kwargs = (
                {"delay_ns": millis(event.delay_ms)}
                if event.policy == "delayed"
                else {}
            )
            if at_ns <= 0:
                system.make_byzantine(event.target, event.policy, **kwargs)
            else:
                sim.schedule(
                    at_ns,
                    partial(
                        system.make_byzantine, event.target, event.policy,
                        **kwargs,
                    ),
                )
        elif event.kind == "drop-link":
            sim.schedule(
                at_ns, faults.drop_link, event.src, event.dst, event.probability
            )
            if until_ns is not None:
                # declarative heal: no scheduled callback, the fault plan
                # just stops dropping once ``now`` passes the deadline
                faults.heal_link_at(event.src, event.dst, until_ns)
        elif event.kind == "partition":
            rest = tuple(
                rid for rid in system.replica_ids if rid not in event.group
            )
            sim.schedule(at_ns, faults.partition, event.group, rest)
            if until_ns is not None:
                # scenarios carry at most one partition, so a blanket heal
                # is exact (FaultPlan.heal_partitions clears all of them)
                sim.schedule(until_ns, faults.heal_partitions)


def run_scenario(scenario: Scenario) -> RunOutcome:
    """Build, fault-inject, run, quiesce, and judge one scenario."""
    started = time.monotonic()
    if scenario.bug is not None and scenario.bug not in BUG_REGISTRY:
        raise ValueError(f"unknown injected bug {scenario.bug!r}")
    system = ResilientDBSystem(scenario.to_config())
    try:
        apply_events(system, scenario)
        if scenario.bug is not None:
            BUG_REGISTRY[scenario.bug](system)
        system.run()
        byzantine = set(scenario.byzantine_targets)
        committed = {
            rid: replica.committed_watermark
            for rid, replica in system.replicas.items()
            if rid not in byzantine
        }
        # fault-free settling window: whatever was committed by the end of
        # measurement must execute by the end of this ("eventually")
        system.sim.run(until=system.sim.now + millis(scenario.quiesce_ms))
        violations = run_oracle_bank(system, scenario, committed)
        completed = sum(
            group.completed_requests for group in system.client_groups
        )
        primary = system.replicas[system.replica_ids[0]]
        return RunOutcome(
            scenario=scenario,
            violations=violations,
            completed_requests=completed,
            chain_height=primary.chain.height,
            stable_checkpoint=primary.checkpoints.stable_sequence,
            wall_seconds=time.monotonic() - started,
        )
    finally:
        system.close()


# ----------------------------------------------------------------------
# campaign driver
# ----------------------------------------------------------------------
@dataclass
class CampaignReport:
    """Result of a multi-run fuzz campaign."""

    master_seed: int
    runs: int
    offset: int = 0
    outcomes: List[RunOutcome] = field(default_factory=list)
    failures: List[RunOutcome] = field(default_factory=list)
    shrunk: Dict[str, Scenario] = field(default_factory=dict)
    artifacts: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz_campaign(
    runs: int,
    master_seed: int = 0,
    offset: int = 0,
    shrink: bool = False,
    artifacts_dir: Optional[str] = None,
    scenario_source: Optional[Callable[[int, int], Scenario]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Run scenarios ``offset .. offset+runs`` of campaign ``master_seed``.

    ``scenario_source(master_seed, index)`` defaults to
    :func:`repro.fuzz.generator.generate_scenario`; tests substitute their
    own source to drive known-bad scenarios through the same pipeline.
    On violation the failing scenario (shrunk first, when ``shrink``) is
    saved under ``artifacts_dir`` as a self-contained JSON repro.
    """
    from repro.fuzz.corpus import save_artifact
    from repro.fuzz.generator import generate_scenario
    from repro.fuzz.shrinker import shrink_scenario

    source = scenario_source or generate_scenario
    emit = log or (lambda _line: None)
    report = CampaignReport(master_seed=master_seed, runs=runs, offset=offset)
    started = time.monotonic()
    for index in range(offset, offset + runs):
        scenario = source(master_seed, index)
        outcome = run_scenario(scenario)
        report.outcomes.append(outcome)
        emit(outcome.summary())
        if outcome.ok:
            continue
        report.failures.append(outcome)
        for violation in outcome.violations:
            emit(f"  {violation}")
        emit(
            f"  replay: python -m repro fuzz --seed {master_seed} "
            f"--offset {index} --runs 1"
        )
        if shrink:
            result = shrink_scenario(scenario)
            report.shrunk[scenario.label or str(index)] = result.scenario
            emit(
                f"  shrunk {len(scenario.events)} -> "
                f"{len(result.scenario.events)} event(s) in "
                f"{result.attempts} attempt(s): "
                f"{result.scenario.describe()}"
            )
        if artifacts_dir is not None:
            shrunk = report.shrunk.get(scenario.label or str(index))
            path = save_artifact(outcome, artifacts_dir, shrunk=shrunk)
            report.artifacts.append(path)
            emit(f"  artifact: {path}")
    report.wall_seconds = time.monotonic() - started
    return report
