"""Primary-side admission control and shed/NACK accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: identifies one client request: (client group name, request id)
RequestKey = Tuple[str, int]


class AdmissionController:
    """Caps consensus depth and per-client backlog at the primary.

    Two independent limits, both optional:

    - ``max_inflight`` bounds consensus instances proposed but not yet
      executed (the paper's pipeline depth at the primary);
    - ``max_per_client`` bounds requests admitted per client group that
      have not yet been replied to.

    ``try_admit`` is consulted *before* a request enters the batch path, so
    every refusal happens before a sequence number exists — preserving the
    invariant that sequenced requests are never shed.
    """

    __slots__ = (
        "max_inflight",
        "max_per_client",
        "_proposed",
        "_per_client",
        "admitted",
        "rejected_inflight",
        "rejected_per_client",
    )

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        max_per_client: Optional[int] = None,
    ):
        self.max_inflight = max_inflight
        self.max_per_client = max_per_client
        self._proposed: Set[int] = set()
        self._per_client: Dict[str, int] = {}
        self.admitted = 0
        self.rejected_inflight = 0
        self.rejected_per_client = 0

    @property
    def enabled(self) -> bool:
        return self.max_inflight is not None or self.max_per_client is not None

    @property
    def inflight(self) -> int:
        """Consensus instances proposed but not yet executed."""
        return len(self._proposed)

    def try_admit(self, sender: str) -> Optional[str]:
        """Admit a request from ``sender`` or return a refusal reason."""
        if self.max_inflight is not None and len(self._proposed) >= self.max_inflight:
            self.rejected_inflight += 1
            return "inflight"
        if self.max_per_client is not None:
            pending = self._per_client.get(sender, 0)
            if pending >= self.max_per_client:
                self.rejected_per_client += 1
                return "client"
        self._per_client[sender] = self._per_client.get(sender, 0) + 1
        self.admitted += 1
        return None

    def release_client(self, sender: str) -> None:
        """A request from ``sender`` left the pipeline (reply or shed)."""
        pending = self._per_client.get(sender, 0)
        if pending > 1:
            self._per_client[sender] = pending - 1
        elif pending:
            del self._per_client[sender]

    def clear_backlog(self) -> None:
        """Forget per-client counts (a replica that stopped being primary
        will never reply to the requests it admitted; the new primary
        admits their retransmissions against its own fresh budget)."""
        self._per_client.clear()

    def on_propose(self, sequence: int) -> None:
        self._proposed.add(sequence)

    def on_execute(self, sequence: int) -> None:
        """Execution is in order, so everything at or below ``sequence`` is
        done — pruning this way also drops instances abandoned across a
        view change (the new primary re-proposes under the same or a later
        sequence number)."""
        if self._proposed:
            self._proposed = {s for s in self._proposed if s > sequence}


@dataclass
class FlowStats:
    """Per-replica overload accounting, summed into the experiment result
    and checked by :func:`repro.flow.invariants.check_flow_invariants`."""

    shed_requests: int = 0
    shed_messages: int = 0
    rejected_requests: int = 0
    nacks_sent: int = 0
    #: request keys evicted by shed_oldest (each must be NACKed or complete)
    shed_keys: List[RequestKey] = field(default_factory=list)
    #: request keys that were sent a busy-nack
    nacked_keys: Set[RequestKey] = field(default_factory=set)
    #: requests shed *after* sequence assignment — must always stay empty
    shed_sequenced: List[RequestKey] = field(default_factory=list)
