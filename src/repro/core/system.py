"""Deployment builder and experiment runner.

``ResilientDBSystem(config).run()`` builds the full simulated deployment —
replicas with their pipelines, client groups, network, key material —
executes the paper's measurement protocol (warm up, reset instruments,
measure) and returns an :class:`ExperimentResult` with the quantities the
paper plots: throughput (txns/s and ops/s), client latency, per-thread
saturation, and traffic statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.consensus.base import QuorumConfig
from repro.consensus.safety import (
    check_execution_consistency,
    check_state_convergence,
)
from repro.core.clientmgr import ClientGroup
from repro.core.config import SystemConfig
from repro.core.replica import Replica
from repro.crypto.keys import KeyStore
from repro.crypto.schemes import make_scheme
from repro.net.faults import FaultPlan
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.sim.clock import micros
from repro.sim.kernel import Simulator
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import DeterministicRNG
from repro.storage.memstore import InMemoryKVStore


@dataclass
class ExperimentResult:
    """Everything one experiment run reports."""

    throughput_txns_per_s: float
    throughput_ops_per_s: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    latency_max_s: float
    completed_requests: int
    completed_txns: int
    #: thread-id suffix -> saturation at the primary (Fig. 9a)
    primary_saturation: Dict[str, float] = field(default_factory=dict)
    #: thread-id suffix -> mean saturation across backups (Fig. 9b)
    backup_saturation: Dict[str, float] = field(default_factory=dict)
    messages_sent: int = 0
    bytes_sent: int = 0
    dropped_messages: int = 0
    chain_height: int = 0
    stable_checkpoint: int = 0
    fast_path_completions: int = 0
    slow_path_completions: int = 0
    invalid_messages: int = 0
    #: pipeline stage -> {count, mean_s, p50_s, p99_s}; populated when
    #: ``config.lifecycle_spans`` is on (see :mod:`repro.obs.spans`)
    stage_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # -- overload protection (repro.flow) ------------------------------
    busy_nacks_sent: int = 0
    busy_nacks_received: int = 0
    requests_shed: int = 0
    admission_rejected: int = 0

    def cumulative_saturation(self, where: str = "primary") -> float:
        """Sum of stage saturations (the paper's 'Cumulative Saturation'
        bars in Fig. 9), as a fraction (1.0 = one fully busy core)."""
        table = (
            self.primary_saturation if where == "primary" else self.backup_saturation
        )
        return sum(table.values())

    def summary(self) -> str:
        return (
            f"throughput={self.throughput_txns_per_s / 1e3:.1f}K txns/s "
            f"latency={self.latency_mean_s * 1e3:.1f}ms "
            f"(p99={self.latency_p99_s * 1e3:.1f}ms) "
            f"requests={self.completed_requests}"
        )

    def stage_latency_table(self) -> str:
        """The per-stage latency breakdown as a printable table (empty
        string when spans were not collected)."""
        from repro.bench.report import format_stage_latency

        return format_stage_latency(self.stage_latency)


class ResilientDBSystem:
    """A full simulated deployment of the fabric."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.rng = DeterministicRNG(config.seed)
        self.metrics = MetricsRegistry(self.sim)
        self.quorum = QuorumConfig(n=config.num_replicas, f=config.f)

        topology = Topology(
            one_way_latency_ns=micros(config.one_way_latency_us),
            nic_gbps=config.nic_gbps,
        )
        self.faults = FaultPlan(self.rng.fork("faults"))
        self.network = Network(self.sim, topology=topology, faults=self.faults)
        self.metrics.register_resettable(self.network)

        from repro.sim.tracing import Tracer

        self.tracer = Tracer(enabled=config.trace)

        # -- observability (repro.obs) ------------------------------------
        from repro.obs.sampler import PipelineSampler
        from repro.obs.spans import SpanRecorder

        self.spans = SpanRecorder(
            enabled=config.lifecycle_spans,
            keep_finished=config.span_keep_finished,
        )
        self.metrics.register_resettable(self.spans)
        self.sampler: Optional[PipelineSampler] = None
        if config.sample_interval is not None:
            self.sampler = PipelineSampler(self, config.sample_interval)

        # -- identities and keys ------------------------------------------
        self.replica_ids: Tuple[str, ...] = tuple(
            f"r{i}" for i in range(config.num_replicas)
        )
        self.replica_set = frozenset(self.replica_ids)
        self.keystore = KeyStore(system_seed=config.seed)
        group_names = [f"client{i}" for i in range(config.client_groups)]
        for identity in list(self.replica_ids) + group_names:
            self.keystore.register(identity)
        self.client_scheme = make_scheme(
            config.client_scheme, self.keystore, config.crypto_costs
        )
        self.replica_scheme = make_scheme(
            config.replica_scheme, self.keystore, config.crypto_costs
        )

        # -- nodes ----------------------------------------------------------
        self.replicas: Dict[str, Replica] = {
            rid: Replica(self, rid) for rid in self.replica_ids
        }
        self._preload_tables()
        base = config.num_clients // config.client_groups
        remainder = config.num_clients % config.client_groups
        self.client_groups: List[ClientGroup] = [
            ClientGroup(self, i, base + (1 if i < remainder else 0))
            for i in range(config.client_groups)
        ]
        self._started = False

    # ------------------------------------------------------------------
    def _preload_tables(self) -> None:
        """Give every replica an identical copy of the YCSB table (§5.1).

        The table is built once and shared structurally for the in-memory
        backend (replicas copy-on-write via fresh dicts) to keep setup
        time reasonable at 600K records.
        """
        if not self.config.apply_state:
            return
        workload_rng = self.rng.fork("table")
        from repro.workloads.ycsb import YCSBWorkload

        table = YCSBWorkload(
            workload_rng, record_count=self.config.ycsb_records
        ).initial_table()
        for replica in self.replicas.values():
            if isinstance(replica.store, InMemoryKVStore):
                replica.store.preload(dict(table))
            else:
                replica.store.preload(table)

    def contact_replica(self) -> str:
        """Where clients send new requests (the initial primary; replicas
        forward if the view has moved on)."""
        return self.replica_ids[0]

    def steer_replica(self, sender: str, request_id: int) -> str:
        """Where a client sends one specific request.

        Multi-primary RCC spreads clients across the ``num_primaries``
        instance primaries (the point of concurrent consensus: §4.2's
        single-primary ingest bottleneck disappears); deterministic
        hashing means replicas compute the same steer lane when
        re-forwarding.  Single-primary protocols keep the classic
        contact-the-primary behaviour.
        """
        if self.config.protocol != "rcc":
            return self.contact_replica()
        import zlib

        lane = (
            zlib.crc32(sender.encode("utf-8")) + request_id
        ) % self.config.num_primaries
        return self.replica_ids[lane]

    def lane_primaries(self) -> Tuple[str, ...]:
        """The current primary of every consensus lane — the replicas a
        client may contact.  Clients honouring per-lane Busy signals
        rotate across these instead of hammering one busy lane."""
        if self.config.protocol != "rcc":
            return (self.contact_replica(),)
        coordinator = self.replicas[self.replica_ids[0]].engine
        return tuple(
            coordinator.lane_primary(lane)
            for lane in range(self.config.num_primaries)
        )

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def crash_replicas(self, count: int, at_ns: Optional[int] = None) -> List[str]:
        """Crash ``count`` non-primary replicas (the Fig. 17 experiment).

        Crashes the highest-indexed replicas, which never hold the
        primary role in view 0.
        """
        if count > self.config.f:
            raise ValueError(
                f"cannot crash {count} replicas; f={self.config.f} is the bound"
            )
        victims = list(self.replica_ids[-count:]) if count else []
        for victim in victims:
            if at_ns is None:
                self.faults.crash(victim)
            else:
                self.faults.crash_at(victim, at_ns)
        return victims

    def recover_replica(self, replica_id: str, at_ns: Optional[int] = None) -> None:
        """Heal a crashed replica and start its state-transfer recovery
        (§4.7: checkpoints "help a failed replica to update itself")."""

        def _heal() -> None:
            self.faults.recover(replica_id)
            self.replicas[replica_id].begin_recovery()

        if at_ns is None:
            _heal()
        else:
            self.sim.schedule(max(0, at_ns - self.sim.now), _heal)

    def make_byzantine(self, replica_id: str, policy: str, **kwargs) -> None:
        """Install a byzantine behaviour policy on one replica.

        Available policies: "silent", "conflicting-voter",
        "equivocating-primary", "delayed" (takes ``delay_ns``).
        """
        from repro.core.byzantine import make_policy

        self.replicas[replica_id].adversary = make_policy(policy, **kwargs)

    def crash_primary(self, at_ns: Optional[int] = None) -> str:
        victim = self.replica_ids[0]
        if at_ns is None:
            self.faults.crash(victim)
        else:
            self.faults.crash_at(victim, at_ns)
        return victim

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        for replica in self.replicas.values():
            replica.start()
        ramp = max(1, self.config.warmup // 2)
        for group in self.client_groups:
            group.start(ramp_ns=ramp)
        if self.sampler is not None:
            self.sim.spawn(self.sampler.run(), name="obs.sampler")

    def run(self) -> ExperimentResult:
        """Warm up, measure, and report (the §5.1 protocol)."""
        config = self.config
        if not self._started:
            self.start()
        self.sim.run(until=config.warmup)
        self.metrics.begin_measurement()
        self.sim.run(until=config.warmup + config.measure)
        return self._collect()

    def _collect(self) -> ExperimentResult:
        metrics = self.metrics
        # materialise instruments that a no-progress run never touched
        for name in (
            "txns_completed",
            "ops_completed",
            "requests_completed",
            "fast_path_completions",
            "slow_path_completions",
        ):
            metrics.counter(name)
        latency = metrics.histogram("request_latency")
        primary = self.replicas[self.replica_ids[0]]
        backups = [self.replicas[rid] for rid in self.replica_ids[1:]]

        def stage_table(replica: Replica) -> Dict[str, float]:
            table = {}
            prefix = f"{replica.replica_id}."
            for thread_id, _busy in replica.cpu.busy_ns.items():
                stage = thread_id[len(prefix):]
                table[stage] = replica.cpu.saturation(thread_id)
            return table

        backup_table: Dict[str, List[float]] = {}
        for backup in backups:
            if self.faults.is_crashed(backup.replica_id, self.sim.now):
                continue
            for stage, value in stage_table(backup).items():
                backup_table.setdefault(stage, []).append(value)

        return ExperimentResult(
            throughput_txns_per_s=metrics.throughput_per_second("txns_completed"),
            throughput_ops_per_s=metrics.throughput_per_second("ops_completed"),
            latency_mean_s=latency.mean_seconds(),
            latency_p50_s=latency.percentile_seconds(50),
            latency_p99_s=latency.percentile_seconds(99),
            latency_max_s=latency.max_seconds(),
            completed_requests=metrics.counters["requests_completed"].value,
            completed_txns=metrics.counters["txns_completed"].value,
            primary_saturation=stage_table(primary),
            backup_saturation={
                stage: sum(values) / len(values)
                for stage, values in backup_table.items()
            },
            messages_sent=self.network.messages_sent,
            bytes_sent=self.network.bytes_sent,
            dropped_messages=self.network.dropped_messages,
            chain_height=primary.chain.height,
            stable_checkpoint=primary.checkpoints.stable_sequence,
            fast_path_completions=metrics.counters["fast_path_completions"].value,
            slow_path_completions=metrics.counters["slow_path_completions"].value,
            invalid_messages=sum(
                replica.invalid_messages for replica in self.replicas.values()
            ),
            stage_latency=self.spans.stage_table(),
            busy_nacks_sent=sum(
                replica.flow.nacks_sent for replica in self.replicas.values()
            ),
            busy_nacks_received=sum(
                group.busy_nacks_received for group in self.client_groups
            ),
            requests_shed=sum(
                replica.flow.shed_requests for replica in self.replicas.values()
            ),
            admission_rejected=sum(
                replica.admission.rejected_inflight
                + replica.admission.rejected_per_client
                for replica in self.replicas.values()
            ),
        )

    # ------------------------------------------------------------------
    # safety validation (used by tests)
    # ------------------------------------------------------------------
    def validate_safety(self, faulty: Tuple[str, ...] = ()) -> int:
        """Check single-common-order across replicas and chain integrity.

        Returns the proven common prefix length.
        """
        crashed = {
            rid
            for rid in self.replica_ids
            if self.faults.is_crashed(rid, self.sim.now)
        }
        faulty_set = set(faulty) | crashed
        logs = {
            rid: replica.executed_log for rid, replica in self.replicas.items()
        }
        prefix = check_execution_consistency(logs, faulty=sorted(faulty_set))
        for rid, replica in self.replicas.items():
            if rid not in faulty_set:
                replica.chain.validate()
        # replicas that executed exactly the same number of batches must
        # have identical state
        if self.config.apply_state and self.config.storage_backend == "memory":
            by_length: Dict[int, Dict[str, Dict[str, str]]] = {}
            for rid, replica in self.replicas.items():
                if rid in faulty_set:
                    continue
                by_length.setdefault(len(replica.executed_log), {})[rid] = (
                    replica.store._records
                )
            for states in by_length.values():
                check_state_convergence(states)
        return prefix

    def close(self) -> None:
        """Release external resources (SQLite connections)."""
        for replica in self.replicas.values():
            replica.store.close()
