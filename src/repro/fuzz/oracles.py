"""The fuzzer's oracle bank.

Each oracle checks one paper-level guarantee against a finished
deployment; the runner (:mod:`repro.fuzz.runner`) evaluates all of them
and reports every violation, not just the first:

- ``execution-order`` — all non-faulty replicas executed consistent
  prefixes of one common (sequence, digest) order, their chains validate,
  and replicas at equal log length hold identical state
  (:func:`repro.consensus.safety.check_execution_consistency` via
  ``ResilientDBSystem.validate_safety``).  Skipped — along with
  checkpoint consistency — when a speculative protocol (Zyzzyva, PoE)
  runs under an equivocating primary: speculative logs may legally
  diverge until view change repairs them, and the protocols' safety
  guarantee lives in the client-reply quorums, which stay checked.
- ``client-replies`` — every completed client request's (sequence, result
  digest) appears in the executed log of some non-byzantine replica: a
  reply quorum can never attest to an order nobody honest executed.
- ``checkpoint-consistency`` — replicas that attested a checkpoint at the
  same sequence attested the same state digest, and every stabilised
  checkpoint matches those attestations
  (:func:`repro.consensus.safety.check_checkpoint_consistency`).
- ``bounded-liveness`` — every sequence a non-faulty replica had
  committed by the end of the measurement window was executed once the
  deployment quiesced (:func:`repro.consensus.safety.check_bounded_liveness`),
  and the deployment made progress at all.  Only applies while faults stay
  within ``f``, no view-0 instance primary is itself faulted (recovering
  from a wedged primary takes a view change plus client retransmission,
  which operate on timescales beyond the fuzz window; under rcc that
  applies to each of the r0..r{m-1} lane primaries), and no messages were
  irrecoverably dropped (``Scenario.has_link_faults``).
- ``overload-protection`` — the flow-control bookkeeping is sound
  (:func:`repro.flow.invariants.check_flow_invariants`): no replica ever
  shed a request it had already assigned a sequence number (shedding is
  only legal pre-ordering), and every shed client request was either
  busy-NACKed or eventually completed via a retry — overload protection
  may slow clients down but never silently loses their requests.
- ``rcc-unification`` (protocol "rcc" only) — every honest replica's
  executed log is exactly the deterministic round-robin unification of
  its per-instance commit logs
  (:func:`repro.multi.unifier.check_unified_execution`), and honest
  replicas agree per (instance, instance sequence) on the committed
  digest — the cross-lane analogue of execution-order safety.

``check_client_replies`` is pure data-in/data-out so it is directly
unit-testable and usable outside the fuzzer, matching the standalone
checkers in :mod:`repro.consensus.safety`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.consensus.safety import (
    LivenessViolation,
    SafetyViolation,
    check_bounded_liveness,
    check_checkpoint_consistency,
)
from repro.flow.invariants import check_flow_invariants
from repro.fuzz.scenario import PRIMARY_POLICIES
from repro.storage.blockchain import ChainViolation

#: protocols that execute speculatively, before agreement completes —
#: their replica logs may legitimately diverge under an equivocating
#: primary (repair happens via client certificates / view change); only
#: client-visible replies carry the safety guarantee there
_SPECULATIVE_PROTOCOLS = ("zyzzyva", "poe")


@dataclass(frozen=True)
class Violation:
    """One oracle failure, self-describing for artifacts and logs."""

    oracle: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


# ----------------------------------------------------------------------
# pure checkers
# ----------------------------------------------------------------------
def check_client_replies(
    completions: Sequence[Tuple[int, Optional[int], Optional[str]]],
    executed_logs: Mapping[str, Sequence[Tuple[int, str]]],
    faulty: Sequence[str] = (),
) -> int:
    """Every completed reply must match what honest replicas executed.

    ``completions`` is a client group's completion log of (request id,
    sequence, result digest); ``executed_logs`` maps replica id to its
    executed (sequence, digest) log.  A completion requires a response
    quorum containing at least one honest replica, so the attested
    (sequence, digest) must appear in *some* non-faulty log — a missing
    sequence means a quorum acknowledged work nobody honest performed; a
    digest no honest replica executed there means the reply contradicts
    every honest order.  (Matching any honest log, not one designated
    log, keeps the check sound when speculative execution legitimately
    diverges; inter-replica agreement is the execution-order oracle's
    job.)

    Returns the number of completions cross-checked.
    """
    faulty_set = set(faulty)
    union: Dict[int, Dict[str, str]] = {}
    for rid in sorted(executed_logs):
        if rid in faulty_set:
            continue
        for sequence, digest in executed_logs[rid]:
            union.setdefault(sequence, {}).setdefault(digest, rid)
    checked = 0
    for request_id, sequence, digest in completions:
        if sequence is None or digest is None:
            continue
        checked += 1
        executed = union.get(sequence)
        if executed is None:
            raise SafetyViolation(
                f"request {request_id} completed at sequence {sequence} "
                f"but no non-faulty replica executed that sequence"
            )
        if digest not in executed:
            witness_digest = sorted(executed)[0]
            raise SafetyViolation(
                f"request {request_id} completed with digest {digest!r} at "
                f"sequence {sequence}, but replica "
                f"{executed[witness_digest]} executed {witness_digest!r} "
                f"there and no non-faulty replica executed {digest!r}"
            )
    return checked


# ----------------------------------------------------------------------
# the bank
# ----------------------------------------------------------------------
def run_oracle_bank(
    system,
    scenario,
    committed_snapshot: Optional[Mapping[str, int]] = None,
) -> List[Violation]:
    """Evaluate every applicable oracle; return all violations found.

    ``committed_snapshot`` is the per-replica committed watermark sampled
    *before* the quiesce window (see ``Replica.committed_watermark``); the
    liveness oracle compares it against executed watermarks now.
    """
    violations: List[Violation] = []
    byzantine = set(scenario.byzantine_targets)
    ever_crashed = set(scenario.crash_targets)
    replica_divergence_legal = _speculative_split_possible(scenario)

    # -- execution-order safety + chain validity + state convergence ----
    if not replica_divergence_legal:
        try:
            system.validate_safety(faulty=tuple(sorted(byzantine)))
        except (SafetyViolation, ChainViolation) as exc:
            violations.append(Violation("execution-order", str(exc)))

    # -- client replies match executed logs -----------------------------
    executed_logs = {
        rid: replica.executed_log for rid, replica in system.replicas.items()
    }
    for group in system.client_groups:
        try:
            check_client_replies(
                group.completion_log, executed_logs, faulty=tuple(byzantine)
            )
        except SafetyViolation as exc:
            violations.append(
                Violation("client-replies", f"{group.name}: {exc}")
            )

    # -- checkpoint consistency -----------------------------------------
    if not replica_divergence_legal:
        histories = {
            rid: replica.checkpoint_digests
            for rid, replica in system.replicas.items()
        }
        try:
            check_checkpoint_consistency(
                histories, faulty=tuple(sorted(byzantine))
            )
            _check_stable_digests(system, byzantine)
        except SafetyViolation as exc:
            violations.append(Violation("checkpoint-consistency", str(exc)))

    # -- rcc: unification is sound and lanes agree across replicas --------
    if scenario.protocol == "rcc":
        violations.extend(
            _check_rcc_unification(system, scenario, byzantine | ever_crashed)
        )

    # -- overload protection: shed/NACK bookkeeping stays sound -----------
    # applies unconditionally: with protection off the counters are all
    # zero and the check is vacuous; with it on, a sequence-assigned
    # request must never be shed and every shed request must have been
    # NACKed or (after a retry) completed
    for problem in check_flow_invariants(system):
        violations.append(Violation("overload-protection", problem))

    # -- bounded liveness (only while the BFT contract holds) ------------
    if committed_snapshot is not None and _liveness_applicable(scenario):
        liveness_faulty = tuple(sorted(byzantine | ever_crashed))
        executed = {
            rid: replica.executed_watermark
            for rid, replica in system.replicas.items()
        }
        try:
            check_bounded_liveness(
                committed_snapshot, executed, faulty=liveness_faulty
            )
        except LivenessViolation as exc:
            violations.append(Violation("bounded-liveness", str(exc)))
        completed = sum(
            group.completed_requests for group in system.client_groups
        )
        if completed == 0:
            violations.append(
                Violation(
                    "bounded-liveness",
                    "deployment made no progress: zero completed requests "
                    "with faults within f and no link faults",
                )
            )
    return violations


def _speculative_split_possible(scenario) -> bool:
    """True when replica-level logs may legally diverge: a speculative
    protocol whose view-0 primary runs an equivocation-capable policy."""
    return scenario.protocol in _SPECULATIVE_PROTOCOLS and any(
        event.kind == "byzantine"
        and event.target == "r0"
        and event.policy in PRIMARY_POLICIES
        for event in scenario.events
    )


def _liveness_applicable(scenario) -> bool:
    # the view-0 (instance) primaries are r0..r{m-1} by construction
    # (Scenario.to_config); a faulted primary can legitimately stall its
    # view — e.g. a two-faced primary splits the prepare votes so neither
    # digest reaches quorum — and the view-change rescue does not reliably
    # fit in the fuzz window
    faulty = set(scenario.faulty_replicas)
    return (
        not scenario.has_link_faults
        and len(faulty) <= scenario.f
        and not faulty.intersection(scenario.instance_primaries)
        and scenario.bug is None
    )


def _check_rcc_unification(system, scenario, faulty) -> List[Violation]:
    """Protocol "rcc": per-replica, the executed log must be the
    round-robin unification of that replica's own per-instance commit
    logs; across replicas, honest lanes must agree on every (instance,
    instance sequence) digest."""
    from repro.multi.unifier import check_unified_execution, unify_commit_logs

    violations: List[Violation] = []
    lanes = range(scenario.num_primaries)
    combined: Dict[int, List[Tuple[int, str]]] = {lane: [] for lane in lanes}
    for rid in sorted(system.replicas):
        if rid in faulty:
            continue
        replica = system.replicas[rid]
        try:
            check_unified_execution(
                replica.executed_log,
                replica.engine.commit_log,
                scenario.num_primaries,
            )
        except SafetyViolation as exc:
            violations.append(Violation("rcc-unification", f"{rid}: {exc}"))
        for lane, entries in replica.engine.commit_log.items():
            combined[lane].extend(entries)
    try:
        # merging every honest replica's commit log per lane surfaces any
        # cross-replica digest disagreement as a per-lane conflict
        unify_commit_logs(combined, scenario.num_primaries)
    except SafetyViolation as exc:
        violations.append(Violation("rcc-unification", str(exc)))
    return violations


def _check_stable_digests(system, byzantine) -> None:
    """A stabilised checkpoint (2f+1 votes) must agree with the digests
    non-faulty replicas attested at that sequence."""
    attested: Dict[int, Tuple[str, str]] = {}
    for rid in sorted(system.replicas):
        if rid in byzantine:
            continue
        for sequence, digest in system.replicas[rid].checkpoint_digests.items():
            attested.setdefault(sequence, (rid, digest))
    for rid in sorted(system.replicas):
        if rid in byzantine:
            continue
        store = system.replicas[rid].checkpoints
        if store.stable_digest is None:
            continue
        entry = attested.get(store.stable_sequence)
        if entry is not None and entry[1] != store.stable_digest:
            raise SafetyViolation(
                f"replica {rid} stabilised checkpoint {store.stable_sequence} "
                f"with digest {store.stable_digest!r}, but replica {entry[0]} "
                f"attested {entry[1]!r} there"
            )
