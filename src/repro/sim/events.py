"""Effect objects that simulation processes yield to the kernel.

A process is a Python generator.  Each ``yield`` hands the kernel an
*effect* describing what the process is waiting for.  The kernel resumes
the process (via ``generator.send(value)``) when the effect completes.

Supported effects:

- ``Timeout(delay)`` or a bare ``int`` — resume after ``delay`` ticks.
- ``SimEvent`` — resume when the event is triggered; the trigger value is
  the result of the ``yield``.
- ``SimQueue.get()`` / bounded ``SimQueue.put(item)`` — see
  :mod:`repro.sim.queues`.
- ``Resource.acquire()`` — see :mod:`repro.sim.resources`.
- ``Process`` — join: resume when the target process finishes.
"""

from __future__ import annotations

from typing import Any, List


class _TimeoutSentinel:
    """Unique marker delivered when an event is triggered by a timer."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<TIMEOUT>"


#: Sentinel value delivered to waiters when a :class:`SimEvent` fires due to
#: an attached timer rather than a real completion (see
#: :meth:`SimEvent.trigger_after`).
TIMEOUT = _TimeoutSentinel()


class Timeout:
    """Effect: suspend the yielding process for ``delay`` clock ticks."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        self.delay = int(delay)

    def _bind(self, sim, process) -> None:
        sim.schedule(self.delay, process.resume, None)


class SimEvent:
    """A one-shot event that processes can wait on.

    The first call to :meth:`trigger` resumes every waiter with the trigger
    value; later triggers are ignored (this makes race patterns such as
    "response arrives" vs. "client timer fires" easy to express — whichever
    happens first wins, the loser is a no-op).
    """

    __slots__ = ("sim", "_waiters", "_callbacks", "triggered", "value")

    def __init__(self, sim):
        self.sim = sim
        self._waiters: List[Any] = []
        self._callbacks: List[Any] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> bool:
        """Fire the event, resuming all waiters.  Returns False if already
        fired (in which case nothing happens)."""
        if self.triggered:
            return False
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        callbacks, self._callbacks = self._callbacks, []
        for process in waiters:
            self.sim.schedule(0, process.resume, value)
        for fn in callbacks:
            self.sim.schedule(0, fn, value)
        return True

    def trigger_after(self, delay: int, value: Any = TIMEOUT) -> None:
        """Arrange for the event to fire with ``value`` after ``delay`` ticks
        unless something else triggers it first."""
        self.sim.schedule(delay, self.trigger, value)

    def on_trigger(self, fn) -> None:
        """Register a callback invoked with the trigger value (callback-style
        alternative to yielding on the event)."""
        if self.triggered:
            self.sim.schedule(0, fn, self.value)
        else:
            self._callbacks.append(fn)

    def _bind(self, sim, process) -> None:
        if self.triggered:
            sim.schedule(0, process.resume, self.value)
        else:
            self._waiters.append(process)


class Timer:
    """A cancellable one-shot timer.

    ``Timer(sim, delay, fn, *args)`` schedules ``fn(*args)`` after ``delay``
    ticks; :meth:`cancel` before expiry suppresses the call.  Used for
    protocol retransmission/view-change timers.
    """

    __slots__ = ("_cancelled", "_fired")

    def __init__(self, sim, delay: int, fn, *args):
        self._cancelled = False
        self._fired = False

        def _fire() -> None:
            if not self._cancelled:
                self._fired = True
                fn(*args)

        sim.schedule(delay, _fire)

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def active(self) -> bool:
        return not (self._cancelled or self._fired)
