"""NIC-level transport between endpoints.

Model per message, src → dst:

1. The message enters ``src``'s transmit queue; the TX NIC process drains
   it FIFO, occupying the NIC for ``size ÷ bandwidth`` (serialisation).
2. After the topology's one-way propagation latency it reaches ``dst``'s
   receive queue; the RX NIC process occupies the receiving NIC for the
   same serialisation time, then delivers into ``dst.inbox``.

Both ends matter: a primary broadcasting large ``Pre-prepare`` messages is
TX-bound, while a primary collecting 2f+1 ``Prepare``/``Commit`` messages
from every backup is RX-bound.  The fault plan is consulted at transmit
time (sender crash) and delivery time (receiver crash, drops, partitions).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.net.faults import FaultPlan
from repro.net.message import Message
from repro.net.topology import Topology
from repro.sim.queues import SimQueue


class Endpoint:
    """One network-attached node (replica or client group)."""

    def __init__(self, network: "Network", name: str, nic_gbps: Optional[float]):
        self.network = network
        self.name = name
        self.nic_gbps = nic_gbps  # None = topology default
        sim = network.sim
        #: messages ready for the node's input threads
        self.inbox = SimQueue(sim, name=f"{name}.inbox")
        self._tx_queue = SimQueue(sim, name=f"{name}.tx")
        self._rx_queue = SimQueue(sim, name=f"{name}.rx")
        sim.spawn(self._tx_loop(), name=f"{name}.tx-nic")
        sim.spawn(self._rx_loop(), name=f"{name}.rx-nic")

    def _transmission_ns(self, size_bytes: int) -> int:
        if self.nic_gbps is None:
            return self.network.topology.transmission_ns(size_bytes)
        bits = size_bytes * 8
        return int(bits / (self.nic_gbps * 1e9) * 1e9)

    def _tx_loop(self):
        network = self.network
        sim = network.sim
        while True:
            dst, message, size = yield self._tx_queue.get()
            tx_ns = self._transmission_ns(size)
            if tx_ns:
                yield tx_ns
                network.nic_busy.add(tx_ns)
            if network.faults.should_deliver(self.name, dst, sim.now):
                latency = network.topology.one_way_latency_ns
                if network.topology.jitter_ns:
                    latency += sim.rng.randint(0, network.topology.jitter_ns)
                endpoint = network.endpoints[dst]
                sim.schedule(latency, endpoint._rx_queue.put_nowait, (message, size))
            else:
                network.dropped_messages += 1

    def _rx_loop(self):
        network = self.network
        sim = network.sim
        while True:
            message, size = yield self._rx_queue.get()
            tx_ns = self._transmission_ns(size)
            if tx_ns:
                yield tx_ns
            if network.faults.is_crashed(self.name, sim.now):
                network.dropped_messages += 1
                continue
            inbox = self.inbox
            if inbox.capacity is None:
                inbox.put_nowait(message)
            elif inbox.policy == "block":
                # back-pressure onto the RX NIC: delivery stalls (and the
                # RX queue grows) until the input threads catch up
                yield inbox.put(message)
            elif not inbox.offer(message):
                # "reject" refused the newest arrival; shed_oldest drops
                # are accounted by the inbox's on_shed callback instead
                network.dropped_messages += 1


class Network:
    """The datacenter fabric connecting all endpoints."""

    def __init__(
        self,
        sim,
        topology: Optional[Topology] = None,
        faults: Optional[FaultPlan] = None,
    ):
        self.sim = sim
        self.topology = topology or Topology()
        self.faults = faults or FaultPlan(sim.rng.fork("faults"))
        self.endpoints: Dict[str, Endpoint] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.dropped_messages = 0

        from repro.sim.metrics import BusyTracker

        self.nic_busy = BusyTracker("nic")

    def reset_window(self) -> None:
        """Zero traffic statistics (called when a measurement window opens)."""
        self.messages_sent = 0
        self.bytes_sent = 0
        self.dropped_messages = 0
        self.nic_busy.reset()

    def register(self, name: str, nic_gbps: Optional[float] = None) -> Endpoint:
        """Attach an endpoint; returns its handle (with ``inbox``)."""
        if name in self.endpoints:
            raise ValueError(f"endpoint {name!r} already registered")
        endpoint = Endpoint(self, name, nic_gbps)
        self.endpoints[name] = endpoint
        return endpoint

    def send(self, src: str, dst: str, message: Message) -> None:
        """Queue ``message`` for transmission src → dst."""
        if dst not in self.endpoints:
            raise KeyError(f"unknown destination endpoint {dst!r}")
        if self.faults.is_crashed(src, self.sim.now):
            self.dropped_messages += 1
            return
        size = message.wire_bytes()
        self.messages_sent += 1
        self.bytes_sent += size
        message.created_at = self.sim.now
        self.endpoints[src]._tx_queue.put_nowait((dst, message, size))

    def broadcast(self, src: str, destinations: Iterable[str], message: Message) -> None:
        """Send one copy of ``message`` to every destination (not ``src``)."""
        for dst in destinations:
            if dst != src:
                self.send(src, dst, message)
