"""Full-system tests: multi-primary (RCC) deployments end to end."""

import pytest

from repro.core import ResilientDBSystem, SystemConfig
from repro.multi import check_unified_execution, unify_commit_logs
from repro.sim.clock import millis


def rcc_config(**overrides):
    defaults = dict(
        num_replicas=4,
        num_clients=64,
        client_groups=4,
        batch_size=8,
        ycsb_records=500,
        warmup=millis(50),
        measure=millis(100),
        protocol="rcc",
        num_primaries=2,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def test_end_to_end_progress_and_safety():
    system = ResilientDBSystem(rcc_config())
    result = system.run()
    assert result.completed_requests > 100
    assert result.throughput_txns_per_s > 0
    prefix = system.validate_safety()
    assert prefix > 0


def test_both_lanes_contribute_to_the_global_order():
    system = ResilientDBSystem(rcc_config())
    system.run()
    for replica in system.replicas.values():
        engine = replica.engine
        assert engine.frontier[0] > 5
        assert engine.frontier[1] > 5
        # the executed log is exactly the round-robin unification of the
        # replica's own per-lane commit logs
        checked = check_unified_execution(
            replica.executed_log, engine.commit_log, 2
        )
        assert checked == len(replica.executed_log) > 10


def test_honest_replicas_agree_per_lane():
    system = ResilientDBSystem(rcc_config())
    system.run()
    combined = {0: [], 1: []}
    for replica in system.replicas.values():
        for lane, entries in replica.engine.commit_log.items():
            combined[lane].extend(entries)
    # a digest conflict inside any lane would raise SafetyViolation
    unified = unify_commit_logs(combined, 2)
    assert len(unified) > 20


def test_rcc_m1_degenerates_to_pbft_behaviour():
    system = ResilientDBSystem(rcc_config(num_primaries=1))
    result = system.run()
    assert result.completed_requests > 100
    assert system.validate_safety() > 0
    for replica in system.replicas.values():
        assert list(replica.engine.commit_log) == [0]


def test_crashed_lane_primary_wedges_only_its_lane():
    """Crash instance 1's primary mid-run: lane 1 view-changes, lane 0
    stays in view 0, and the merge (plus retransmitted clients) resumes."""
    config = rcc_config(
        view_change_timeout=millis(12), client_retransmit=millis(25)
    )
    system = ResilientDBSystem(config)
    system.faults.crash_at("r1", millis(20))
    result = system.run()
    assert result.completed_requests > 100
    live = [rid for rid in system.replicas if rid != "r1"]
    for rid in live:
        engine = system.replicas[rid].engine
        assert engine.instances[0].view == 0  # lane 0 never suspected
        assert engine.instances[1].view >= 1  # lane 1 rescued
    # the merge kept executing long after the crash
    watermark = max(system.replicas[rid].executed_watermark for rid in live)
    assert watermark > 100
    for rid in live:
        replica = system.replicas[rid]
        check_unified_execution(
            replica.executed_log, replica.engine.commit_log, 2
        )
    assert system.validate_safety(faulty=("r1",)) > 0


def test_deterministic_same_seed():
    results = [
        ResilientDBSystem(rcc_config(seed=7)).run() for _ in range(2)
    ]
    assert results[0].completed_requests == results[1].completed_requests
    assert results[0].throughput_txns_per_s == results[1].throughput_txns_per_s
    assert results[0].chain_height == results[1].chain_height
