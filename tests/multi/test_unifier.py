"""Unit and property tests for the round-robin unifier — the pure core
of the multi-primary (RCC) subsystem."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.consensus.safety import SafetyViolation
from repro.multi import (
    check_unified_execution,
    global_sequence,
    instance_of,
    instance_sequence,
    unify_commit_logs,
)


# ----------------------------------------------------------------------
# the (instance, instance sequence) <-> global sequence bijection
# ----------------------------------------------------------------------
def test_global_sequence_round_robin_layout():
    # m=3: g=1,2,3 are lanes 0,1,2 at seq 1; g=4 starts round two
    assert [global_sequence(k, 1, 3) for k in range(3)] == [1, 2, 3]
    assert [global_sequence(k, 2, 3) for k in range(3)] == [4, 5, 6]
    assert global_sequence(0, 1, 1) == 1
    assert global_sequence(0, 7, 1) == 7


@given(
    m=st.integers(min_value=1, max_value=32),
    g=st.integers(min_value=1, max_value=10_000),
)
def test_mapping_is_a_bijection(m, g):
    lane = instance_of(g, m)
    seq = instance_sequence(g, m)
    assert 0 <= lane < m
    assert seq >= 1
    assert global_sequence(lane, seq, m) == g


def test_mapping_rejects_out_of_range():
    with pytest.raises(ValueError):
        global_sequence(2, 1, 2)
    with pytest.raises(ValueError):
        global_sequence(0, 0, 2)
    with pytest.raises(ValueError):
        instance_of(0, 2)
    with pytest.raises(ValueError):
        instance_sequence(-1, 2)


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def test_unify_merges_contiguous_prefix():
    logs = {0: [(1, "a1"), (2, "a2")], 1: [(1, "b1"), (2, "b2")]}
    assert unify_commit_logs(logs, 2) == [
        (1, "a1"),
        (2, "b1"),
        (3, "a2"),
        (4, "b2"),
    ]


def test_unify_stops_at_first_hole():
    # lane 1 never committed seq 1: the merge cannot leapfrog global 2
    logs = {0: [(1, "a1"), (2, "a2"), (3, "a3")], 1: [(2, "b2")]}
    assert unify_commit_logs(logs, 2) == [(1, "a1")]


def test_unify_handles_missing_lane_key():
    assert unify_commit_logs({0: [(1, "a1")]}, 2) == [(1, "a1")]
    assert unify_commit_logs({}, 3) == []


def test_unify_rejects_conflicting_digests_in_one_lane():
    logs = {0: [(1, "a1"), (1, "evil")]}
    with pytest.raises(SafetyViolation):
        unify_commit_logs(logs, 1)


def test_unify_tolerates_duplicate_identical_entries():
    logs = {0: [(1, "a1"), (1, "a1")], 1: [(1, "b1")]}
    assert unify_commit_logs(logs, 2) == [(1, "a1"), (2, "b1")]


# ----------------------------------------------------------------------
# execution checking
# ----------------------------------------------------------------------
def test_check_unified_execution_accepts_prefix():
    logs = {0: [(1, "a1"), (2, "a2")], 1: [(1, "b1")]}
    executed = [(1, "a1"), (2, "b1"), (3, "a2")]
    assert check_unified_execution(executed, logs, 2) == 3
    # any prefix is fine too
    assert check_unified_execution(executed[:1], logs, 2) == 1


def test_check_unified_execution_rejects_uncommitted_slot():
    with pytest.raises(SafetyViolation):
        check_unified_execution([(2, "b1")], {0: [(1, "a1")]}, 2)


def test_check_unified_execution_rejects_digest_mismatch():
    logs = {0: [(1, "a1")]}
    with pytest.raises(SafetyViolation):
        check_unified_execution([(1, "other")], logs, 2)


# ----------------------------------------------------------------------
# the RCC determinism property: unification is a pure function of the
# per-lane commit logs — independent of commit arrival interleaving
# ----------------------------------------------------------------------
@st.composite
def commit_histories(draw):
    m = draw(st.integers(min_value=1, max_value=4))
    lanes = {}
    for lane in range(m):
        depth = draw(st.integers(min_value=0, max_value=8))
        lanes[lane] = [
            (seq, f"d{lane}.{seq}") for seq in range(1, depth + 1)
        ]
    return m, lanes


@given(history=commit_histories(), data=st.data())
@settings(max_examples=100)
def test_unification_is_arrival_order_invariant(history, data):
    """Flatten every lane's commits into one event stream, deal it back
    in a drawn permutation, and unify: the global order never changes."""
    m, lanes = history
    reference = unify_commit_logs(lanes, m)
    events = [
        (lane, entry) for lane, entries in lanes.items() for entry in entries
    ]
    permuted = data.draw(st.permutations(events))
    rebuilt = {lane: [] for lane in range(m)}
    for lane, entry in permuted:
        rebuilt[lane].append(entry)
    assert unify_commit_logs(rebuilt, m) == reference
    # and the reference order itself is a valid execution of the logs
    assert check_unified_execution(reference, rebuilt, m) == len(reference)
