"""Common interface and cost model for record stores."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StorageCosts:
    """Simulated nanoseconds the execute-thread spends per record access.

    The in-memory figures model a hash-map probe plus a cache-line copy;
    the SQLite figures model the API call + SQL parse/step + page access
    that §5.7 observes the execute-thread busy-waiting on.  Calibrated so
    the Fig. 14 shape (−94% throughput, +24× latency) reproduces.
    """

    memory_read_ns: int = 150
    memory_write_ns: int = 250
    sqlite_read_ns: int = 90_000
    sqlite_write_ns: int = 170_000


class KVStore:
    """Record-store interface used by the execution layer.

    ``read``/``write`` perform the real operation and return the simulated
    cost in nanoseconds, which the caller charges to its CPU.
    """

    name = "kvstore"

    def read(self, key: str):
        """Return ``(value_or_None, cost_ns)``."""
        raise NotImplementedError

    def write(self, key: str, value: str):
        """Store value; return ``cost_ns``."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of records currently stored."""
        raise NotImplementedError

    def close(self) -> None:
        """Release external resources (no-op for in-memory stores)."""
