"""Multi-primary concurrent consensus (RCC-style).

An :class:`InstanceCoordinator` runs ``m`` *independent* PBFT instances —
each an unmodified :class:`~repro.consensus.pbft.PbftReplica` with its own
view, primary rotation and sequence space — and presents them to the host
replica pipeline as one engine.  Lane ``k``'s replica list is rotated so
its view-0 primary is ``r_k``: with ``m`` lanes, ``m`` replicas act as
primaries concurrently, which removes the single-primary ingest bottleneck
the paper measures in Figures 9 and 16.

The coordinator's job is pure translation:

- **inbound**: protocol messages carry their lane in the envelope
  (``message.instance``); the coordinator dispatches each to the right
  inner engine and rejects out-of-range lanes.
- **outbound**: inner actions are re-tagged with the lane id, and every
  sequence-carrying action (``ExecuteReady``, view-change timers) is
  remapped from the lane's local sequence to the global round-robin
  position (:mod:`repro.multi.unifier`), so the host's *single* ordered
  execution thread, checkpointing and blockchain operate on one dense
  global sequence space and never know how many lanes fed it.

Liveness across lanes:

- A committed batch in one lane arms watchdog view-change timers for
  lanes that have fallen behind, so a crashed or byzantine primary is
  replaced by a view change *in its own lane only* — the other ``m − 1``
  lanes never stall.
- Lane leaders run a balance pass (:meth:`balance_actions`, driven by a
  host timer): when another lane is ahead, the leader commits null
  batches — *skip certificates*, each carrying a full 2f+1 commit proof
  from its lane's normal PBFT rounds — so the round-robin merge never
  wedges on an idle or recovering lane.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.consensus.base import (
    Action,
    Broadcast,
    CancelViewChangeTimer,
    EnterView,
    ExecuteReady,
    NotPrimaryError,
    ProposalError,
    QuorumConfig,
    SendTo,
    StartViewChangeTimer,
)
from repro.consensus.messages import PrePrepare, RequestBatch, make_null_batch
from repro.consensus.pbft import PbftReplica
from repro.multi.unifier import global_sequence, instance_of, instance_sequence


@dataclass(frozen=True)
class MultiProposal:
    """What :meth:`InstanceCoordinator.propose` hands back to the host:
    the *global* sequence (for spans/blocks) plus the lane that took it."""

    sequence: int
    instance: int
    message: PrePrepare


class InstanceCoordinator:
    """m concurrent PBFT instances unified into one global order.

    Mirrors the slice of the :class:`~repro.consensus.pbft.PbftReplica`
    interface the replica pipeline drives (message handlers,
    ``advance_stable``, ``on_view_change_timeout``, ``suspect_primary``)
    so the host treats it as just another engine.
    """

    protocol_name = "rcc"

    #: a lane must lag the committing lane by at least this many full
    #: round-robin rounds before its watchdog view-change timer is armed
    #: (1 round of slack absorbs ordinary scheduling jitter)
    WATCHDOG_LAG_ROUNDS = 2

    #: null batches one balance pass may propose per led lane (bounds the
    #: work a single timer tick injects into the pipeline)
    MAX_SKIPS_PER_BALANCE = 8

    #: watchdog fires landing while a lane's view change is already in
    #: flight are ignored, except every N-th consecutive one, which
    #: escalates to the next view — the rescue keeps liveness when the
    #: replacement primary is itself dead, without letting periodic
    #: watchdogs march a recovering lane through views faster than its
    #: new primary can catch the lane up
    ESCALATE_EVERY = 4

    def __init__(
        self,
        replica_id: str,
        replica_ids: Tuple[str, ...],
        quorum: QuorumConfig,
        num_instances: int,
        sequence_window: int = 100_000,
    ):
        if not 1 <= num_instances <= len(replica_ids):
            raise ValueError(
                f"num_instances must be in [1, {len(replica_ids)}], "
                f"got {num_instances}"
            )
        self.replica_id = replica_id
        self.replica_ids = tuple(replica_ids)
        self._quorum = quorum
        self.num_instances = num_instances
        ids = self.replica_ids
        #: lane k's replica list is rotated so ids[k] is its view-0
        #: primary and view changes walk ids[k+1], ids[k+2], ...
        self.instances: List[PbftReplica] = [
            PbftReplica(
                replica_id, ids[k:] + ids[:k], quorum, sequence_window
            )
            for k in range(num_instances)
        ]
        #: next lane-local sequence this replica would propose per lane
        self._next_propose: List[int] = [1] * num_instances
        #: contiguous committed lane-local prefix per lane
        self.frontier: List[int] = [0] * num_instances
        #: committed lane sequences above the frontier (gap tracking)
        self._committed: List[set] = [set() for _ in range(num_instances)]
        #: per-lane commit order as observed locally: lane -> [(lane
        #: sequence, digest)] — the unification oracle's input
        self.commit_log: Dict[int, List[Tuple[int, str]]] = {
            k: [] for k in range(num_instances)
        }
        #: lane sequences already in commit_log (append-once dedup; kept
        #: separate from the frontier machinery, which checkpoints prune)
        self._logged: List[set] = [set() for _ in range(num_instances)]
        self._lane_rr = 0
        #: consecutive watchdog fires observed per lane while its view
        #: change was already running (see ``ESCALATE_EVERY``)
        self._vc_fires: List[int] = [0] * num_instances
        #: lane frontier at each lane's most recent watchdog fire — a
        #: fire only suspects the primary if the lane made *no* progress
        #: since the previous fire (timeout-resets-on-progress)
        self._fire_frontier: List[int] = [0] * num_instances
        #: envelope-level rejects (bad lane id); per-engine rejects live
        #: on the instances
        self.envelope_rejects = 0

    # ------------------------------------------------------------------
    # engine-interface surface the host reads
    # ------------------------------------------------------------------
    @property
    def quorum(self) -> QuorumConfig:
        return self._quorum

    @quorum.setter
    def quorum(self, value: QuorumConfig) -> None:
        # fault-injection hooks (fuzz BUG_REGISTRY) swap engine quorums
        self._quorum = value
        for instance in self.instances:
            instance.quorum = value

    @property
    def view(self) -> int:
        """Monotone progress counter: the sum of lane views (any lane's
        view change bumps it, which is what host-side probes watch)."""
        return sum(instance.view for instance in self.instances)

    @property
    def in_view_change(self) -> bool:
        return any(instance.in_view_change for instance in self.instances)

    @property
    def rejected_messages(self) -> int:
        return self.envelope_rejects + sum(
            instance.rejected_messages for instance in self.instances
        )

    def lanes_led(self) -> List[int]:
        """Lanes this replica currently leads and can propose into."""
        return [
            k
            for k, instance in enumerate(self.instances)
            if instance.is_primary and not instance.in_view_change
        ]

    def leads_any(self) -> bool:
        return bool(self.lanes_led())

    def proposer_of(self, global_seq: int, view: int) -> str:
        """Primary that proposed ``global_seq`` (for block attribution)."""
        lane = instance_of(global_seq, self.num_instances)
        return self.instances[lane].primary_of(view)

    # ------------------------------------------------------------------
    # client steering
    # ------------------------------------------------------------------
    def steer_instance(self, sender: str, request_id: int) -> int:
        """Deterministic lane for a client request — every node computes
        the same lane, so forwarding converges."""
        return (
            zlib.crc32(sender.encode("utf-8")) + request_id
        ) % self.num_instances

    def lane_primary(self, lane: int) -> str:
        """Current primary of one lane (the next view's primary while the
        lane is mid view change) — what Busy-aware clients rotate over."""
        instance = self.instances[lane]
        view = instance.view + (1 if instance.in_view_change else 0)
        return instance.primary_of(view)

    def forward_target(self, sender: str, request_id: int) -> str:
        """Replica a non-leading node forwards this request to: the
        current primary of the request's steer lane (or the next view's
        primary while that lane is changing views, so forwards never
        loop back into a wedged leader)."""
        instance = self.instances[self.steer_instance(sender, request_id)]
        view = instance.view + (1 if instance.in_view_change else 0)
        target = instance.primary_of(view)
        if target == self.replica_id and instance.in_view_change:
            target = instance.primary_of(view + 1)
        return target

    # ------------------------------------------------------------------
    # proposing
    # ------------------------------------------------------------------
    def propose(
        self, digest: str, batch: RequestBatch
    ) -> Tuple[MultiProposal, List[Action]]:
        """Propose ``batch`` in one of the lanes this replica leads,
        round-robin across them.  Raises
        :class:`~repro.consensus.base.NotPrimaryError` when no lane is
        available — the host catches it and re-steers the requests."""
        lanes = self.lanes_led()
        if not lanes:
            raise NotPrimaryError(
                f"{self.replica_id} leads no active consensus instance"
            )
        lane = lanes[self._lane_rr % len(lanes)]
        self._lane_rr += 1
        sequence = self._next_propose[lane]
        self._next_propose[lane] = sequence + 1
        message, actions = self.instances[lane].make_preprepare(
            sequence, digest, batch
        )
        proposal = MultiProposal(
            sequence=global_sequence(lane, sequence, self.num_instances),
            instance=lane,
            message=message,
        )
        return proposal, self._translate(lane, actions)

    def balance_actions(self) -> List[Action]:
        """Skip-certificate pass: for each led lane that has fallen behind
        the tallest lane, propose null batches up to that height.  Each
        null batch commits through the lane's ordinary PBFT rounds, so the
        resulting gap-filler carries a full commit proof and the global
        round-robin merge can cross the lane without executing anything."""
        if self.num_instances == 1:
            return []
        target = 0
        for lane, instance in enumerate(self.instances):
            high = max(
                self.frontier[lane],
                max(instance.slots, default=0),
                self._next_propose[lane] - 1,
            )
            target = max(target, high)
        actions: List[Action] = []
        for lane in self.lanes_led():
            proposed = 0
            while (
                self._next_propose[lane] <= target
                and proposed < self.MAX_SKIPS_PER_BALANCE
            ):
                sequence = self._next_propose[lane]
                self._next_propose[lane] = sequence + 1
                batch = make_null_batch()
                try:
                    _msg, inner = self.instances[lane].make_preprepare(
                        sequence, batch.digest, batch
                    )
                except ProposalError:
                    break
                actions.extend(self._translate(lane, inner))
                proposed += 1
        return actions

    # ------------------------------------------------------------------
    # message handlers (dispatch by envelope instance id)
    # ------------------------------------------------------------------
    def _dispatch(self, handler: str, message) -> List[Action]:
        lane = getattr(message, "instance", 0)
        if not 0 <= lane < self.num_instances:
            self.envelope_rejects += 1
            return []
        actions = getattr(self.instances[lane], handler)(message)
        return self._translate(lane, actions)

    def handle_preprepare(self, message) -> List[Action]:
        return self._dispatch("handle_preprepare", message)

    def handle_prepare(self, message) -> List[Action]:
        return self._dispatch("handle_prepare", message)

    def handle_commit(self, message) -> List[Action]:
        return self._dispatch("handle_commit", message)

    def handle_view_change(self, message) -> List[Action]:
        return self._dispatch("handle_view_change", message)

    def handle_new_view(self, message) -> List[Action]:
        return self._dispatch("handle_new_view", message)

    # ------------------------------------------------------------------
    # host hooks: timers, suspicion, checkpoints, recovery
    # ------------------------------------------------------------------
    def on_view_change_timeout(self, global_seq: int) -> List[Action]:
        lane = instance_of(global_seq, self.num_instances)
        sequence = instance_sequence(global_seq, self.num_instances)
        if sequence <= self.frontier[lane] or sequence in self._committed[lane]:
            self._vc_fires[lane] = 0
            return []  # committed while the timer was in flight
        if self.frontier[lane] > self._fire_frontier[lane]:
            # the lane moved since the last fire: behind, not dead — a
            # recovering lane catching up on skip certificates must not
            # be view-changed out from under its new primary.  (Other
            # lanes' commits keep re-arming the watchdog, and the host's
            # forward probes cover a total stall.)
            self._fire_frontier[lane] = self.frontier[lane]
            self._vc_fires[lane] = 0
            return []
        self._fire_frontier[lane] = self.frontier[lane]
        if self.instances[lane].in_view_change:
            self._vc_fires[lane] += 1
            if self._vc_fires[lane] % self.ESCALATE_EVERY:
                return []  # a rescue is already in flight; don't flap
        else:
            self._vc_fires[lane] = 0
        return self._translate(
            lane, self.instances[lane].on_view_change_timeout(sequence)
        )

    def suspect_primary(self) -> List[Action]:
        """Host-level suspicion (forwarded requests saw no progress at
        all): vote to replace the primaries of the lanes actually holding
        the merge back — those strictly behind the tallest frontier.  A
        healthy lane must never be view-changed because some *other*
        lane's primary died.  When every lane is level (m=1, or a total
        stall), fall back to suspecting every lane we do not lead."""
        tallest = max(self.frontier)
        suspects = [
            lane
            for lane, instance in enumerate(self.instances)
            if not instance.is_primary
            and not instance.in_view_change
            and self.frontier[lane] < tallest
        ]
        if not suspects:
            suspects = [
                lane
                for lane, instance in enumerate(self.instances)
                if not instance.is_primary and not instance.in_view_change
            ]
        actions: List[Action] = []
        for lane in suspects:
            actions.extend(
                self._translate(lane, self.instances[lane].suspect_primary())
            )
        return actions

    def advance_stable(self, global_seq: int) -> int:
        """Checkpoint at *global* ``global_seq`` became stable: advance
        each lane's stable horizon to its share of the global prefix."""
        dropped = 0
        for lane, instance in enumerate(self.instances):
            if global_seq >= lane + 1:
                lane_stable = (global_seq - lane - 1) // self.num_instances + 1
            else:
                lane_stable = 0
            if lane_stable <= 0:
                continue
            dropped += instance.advance_stable(lane_stable)
            if lane_stable > self.frontier[lane]:
                self.frontier[lane] = lane_stable
                self._committed[lane] = {
                    s for s in self._committed[lane] if s > lane_stable
                }
                self._advance_frontier(lane)
            self._next_propose[lane] = max(
                self._next_propose[lane], lane_stable + 1
            )
        return dropped

    def absorb_adopted_log(self, log_slice) -> None:
        """State-transfer adoption: fold the adopted (global sequence,
        digest) entries into the per-lane commit logs and frontiers so the
        unification invariant (executed ⊆ unified commits) survives
        recovery and stale watchdog timers disarm."""
        for global_seq, digest in log_slice:
            lane = instance_of(global_seq, self.num_instances)
            self._record_commit(
                lane, instance_sequence(global_seq, self.num_instances), digest
            )

    def clear_view_change_wedges(self) -> None:
        """Recovery adopted a quorum-attested state: the system is live,
        so lone never-quorate suspicions must not wedge any lane."""
        for instance in self.instances:
            instance.in_view_change = False

    # ------------------------------------------------------------------
    # translation lane-local <-> global
    # ------------------------------------------------------------------
    def _record_commit(self, lane: int, sequence: int, digest: str) -> bool:
        """Record a lane commit.  The log append must NOT be gated on the
        frontier: a cluster-wide checkpoint can advance the frontier past
        a slot whose own ExecuteReady is still in flight on this replica
        (2f+1 *other* replicas suffice to stabilise), and that slot still
        executes here — dropping it would leave the executed log claiming
        a commit the log never recorded."""
        if sequence in self._logged[lane]:
            return False
        self._logged[lane].add(sequence)
        self.commit_log[lane].append((sequence, digest))
        if sequence > self.frontier[lane] and sequence not in self._committed[lane]:
            self._committed[lane].add(sequence)
            self._advance_frontier(lane)
        return True

    def _advance_frontier(self, lane: int) -> None:
        committed = self._committed[lane]
        frontier = self.frontier[lane]
        while frontier + 1 in committed:
            frontier += 1
            committed.discard(frontier)
        self.frontier[lane] = frontier

    def _translate(self, lane: int, actions: List[Action]) -> List[Action]:
        """Tag outbound messages with the lane and remap every
        sequence-carrying action to the global round-robin space."""
        m = self.num_instances
        out: List[Action] = []
        for action in actions:
            if isinstance(action, (Broadcast, SendTo)):
                action.message.instance = lane
                out.append(action)
            elif isinstance(action, ExecuteReady):
                digest = action.request.digest or ""
                self._record_commit(lane, action.sequence, digest)
                out.append(
                    ExecuteReady(
                        sequence=global_sequence(lane, action.sequence, m),
                        view=action.view,
                        request=action.request,
                        commit_proof=action.commit_proof,
                        speculative=action.speculative,
                    )
                )
                out.extend(self._watchdogs_for_lagging_lanes(lane))
            elif isinstance(action, StartViewChangeTimer):
                out.append(
                    StartViewChangeTimer(
                        global_sequence(lane, action.sequence, m)
                    )
                )
            elif isinstance(action, CancelViewChangeTimer):
                out.append(
                    CancelViewChangeTimer(
                        global_sequence(lane, action.sequence, m)
                    )
                )
            elif isinstance(action, EnterView):
                self._sync_next_propose(lane)
                out.append(action)
            else:  # pragma: no cover - future action types
                out.append(action)
        return out

    def _sync_next_propose(self, lane: int) -> None:
        """Entering a new view: if we are its primary, sequence above
        everything the lane has seen (the inner engine already re-proposed
        carried slots and gap fillers, which live in ``slots``)."""
        instance = self.instances[lane]
        high = max(
            instance.stable_sequence,
            self.frontier[lane],
            max(instance.slots, default=0),
            max(self._committed[lane], default=0),
        )
        self._next_propose[lane] = max(self._next_propose[lane], high + 1)

    def _watchdogs_for_lagging_lanes(self, lane: int) -> List[Action]:
        """A commit in ``lane`` proves the deployment is live; arm
        view-change timers for lanes at least ``WATCHDOG_LAG_ROUNDS``
        behind it so a dead primary cannot silently wedge the merge.  The
        host dedups timers by sequence, and each timer's fire-path
        re-checks whether the slot committed meanwhile."""
        m = self.num_instances
        lead = self.frontier[lane]
        actions: List[Action] = []
        for other in range(m):
            if other == lane:
                continue
            behind = lead - self.frontier[other]
            if behind < self.WATCHDOG_LAG_ROUNDS:
                continue
            next_needed = self.frontier[other] + 1
            if next_needed in self._committed[other]:
                continue  # committed out of order; execution will catch up
            actions.append(
                StartViewChangeTimer(global_sequence(other, next_needed, m))
            )
        return actions
