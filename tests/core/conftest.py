"""Shared fixtures for full-system tests: small, fast deployments."""

import pytest

from repro.core import SystemConfig
from repro.sim.clock import millis


@pytest.fixture
def small_config():
    """A fast 4-replica deployment used by most system tests."""
    return SystemConfig(
        num_replicas=4,
        num_clients=64,
        client_groups=4,
        batch_size=8,
        ycsb_records=500,
        warmup=millis(50),
        measure=millis(100),
    )
