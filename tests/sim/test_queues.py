"""Tests for SimQueue semantics (FIFO, multi-consumer, back-pressure)."""

import pytest

from repro.sim import SimQueue, Simulator, Timeout


def test_put_nowait_then_get():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    seen = []

    def consumer():
        item = yield queue.get()
        seen.append(item)

    queue.put_nowait("x")
    sim.spawn(consumer())
    sim.run()
    assert seen == ["x"]


def test_fifo_ordering():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    seen = []

    def consumer():
        for _ in range(3):
            seen.append((yield queue.get()))

    for item in (1, 2, 3):
        queue.put_nowait(item)
    sim.spawn(consumer())
    sim.run()
    assert seen == [1, 2, 3]


def test_multiple_consumers_share_work_fifo():
    """The paper's common-queue design: any enqueued request is consumed as
    soon as any batch-thread is available (§4.3)."""
    sim = Simulator()
    queue = SimQueue(sim, "q")
    seen = []

    def consumer(name):
        while True:
            item = yield queue.get()
            seen.append((name, item))

    sim.spawn(consumer("c1"))
    sim.spawn(consumer("c2"))

    def producer():
        for i in range(4):
            yield Timeout(10)
            queue.put_nowait(i)

    sim.spawn(producer())
    sim.run(until=1000)
    # blocked consumers are served in FIFO order: c1, c2, c1, c2
    assert seen == [("c1", 0), ("c2", 1), ("c1", 2), ("c2", 3)]


def test_get_blocks_until_item_arrives():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    arrival = []

    def consumer():
        item = yield queue.get()
        arrival.append((sim.now, item))

    sim.spawn(consumer())
    sim.schedule(500, queue.put_nowait, "late")
    sim.run()
    assert arrival == [(500, "late")]


def test_bounded_queue_put_nowait_overflow():
    sim = Simulator()
    queue = SimQueue(sim, "q", capacity=1)
    queue.put_nowait("a")
    with pytest.raises(OverflowError):
        queue.put_nowait("b")


def test_bounded_queue_blocking_put_applies_backpressure():
    sim = Simulator()
    queue = SimQueue(sim, "q", capacity=1)
    times = []

    def producer():
        for item in ("a", "b"):
            yield queue.put(item)
            times.append(sim.now)

    def consumer():
        yield Timeout(100)
        queue.get_nowait()
        yield Timeout(100)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    # first put immediate; second blocked until the consumer freed a slot
    assert times[0] == 0
    assert times[1] == 100


def test_queue_wait_statistics():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    queue.put_nowait("x")

    def consumer():
        yield Timeout(250)
        item = yield queue.get()
        assert item == "x"

    sim.spawn(consumer())
    sim.run()
    assert queue.dequeued_total == 1
    assert queue.mean_wait == 250


def test_queue_depth_statistics():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    for i in range(5):
        queue.put_nowait(i)
    assert len(queue) == 5
    assert queue.max_depth == 5
    assert queue.enqueued_total == 5
    queue.get_nowait()
    assert len(queue) == 4


def test_queue_depth_and_waiters_accessors():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    assert queue.depth == 0 and queue.waiters == 0

    def consumer():
        yield queue.get()

    sim.spawn(consumer())
    sim.run()  # consumer now blocked on an empty queue
    assert queue.waiters == 1
    queue.put_nowait("x")
    sim.run()
    assert queue.waiters == 0
    queue.put_nowait("y")
    assert queue.depth == 1


def test_queue_stats_snapshot():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    for i in range(3):
        queue.put_nowait(i)
    queue.get_nowait()
    stats = queue.stats()
    assert stats == {
        "depth": 2,
        "enqueued": 3,
        "dequeued": 1,
        "shed": 0,
        "rejected": 0,
        "max_depth": 3,
        "mean_wait": 0,
    }


def test_get_nowait_empty_raises():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    with pytest.raises(IndexError):
        queue.get_nowait()


def test_handoff_to_waiting_consumer_counts_zero_wait():
    sim = Simulator()
    queue = SimQueue(sim, "q")

    def consumer():
        yield queue.get()

    sim.spawn(consumer())
    sim.run()  # consumer now blocked
    queue.put_nowait("x")
    sim.run()
    assert queue.mean_wait == 0
    assert queue.dequeued_total == 1
