"""Full-system tests: PBFT deployments end to end."""

import pytest

from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis


def test_end_to_end_progress_and_safety(small_config):
    system = ResilientDBSystem(small_config)
    result = system.run()
    assert result.completed_requests > 100
    assert result.throughput_txns_per_s > 0
    assert result.latency_mean_s > 0
    prefix = system.validate_safety()
    assert prefix > 0


def test_all_replicas_build_identical_chains(small_config):
    system = ResilientDBSystem(small_config)
    system.run()
    chains = [replica.chain for replica in system.replicas.values()]
    min_height = min(chain.height for chain in chains)
    assert min_height > 10
    reference = chains[0]
    for chain in chains[1:]:
        for sequence in range(1, min_height + 1):
            ours = chain.get(sequence)
            theirs = reference.get(sequence)
            if ours is None or theirs is None:
                continue  # pruned by a checkpoint on one side
            assert ours.digest == theirs.digest


def test_commit_certificates_embedded_in_blocks(small_config):
    system = ResilientDBSystem(small_config)
    system.run()
    primary = system.replicas["r0"]
    block = primary.chain.head()
    signers = {signer for signer, _ in block.commit_certificate}
    assert len(signers) >= system.quorum.commit_quorum


def test_checkpoints_stabilise_and_prune(small_config):
    config = small_config.with_options(checkpoint_txns=80)  # every 10 batches
    system = ResilientDBSystem(config)
    result = system.run()
    assert result.stable_checkpoint > 0
    primary = system.replicas["r0"]
    horizon = primary.checkpoints.gc_horizon()
    if horizon > 1:
        assert primary.chain.get(horizon - 1) is None  # pruned
        assert len(primary.engine.slots) < primary.chain.height


def test_requests_complete_with_quorum_not_all_replicas(small_config):
    """PBFT clients need only f+1 matching responses."""
    system = ResilientDBSystem(small_config)
    result = system.run()
    assert result.fast_path_completions == result.completed_requests
    assert result.slow_path_completions == 0


def test_latency_includes_queueing(small_config):
    """More closed-loop clients -> same throughput, higher latency."""
    few = ResilientDBSystem(small_config.with_options(num_clients=32)).run()
    many = ResilientDBSystem(small_config.with_options(num_clients=256)).run()
    assert many.latency_mean_s > few.latency_mean_s


def test_deterministic_same_seed():
    config = SystemConfig(
        num_replicas=4,
        num_clients=32,
        client_groups=2,
        batch_size=4,
        ycsb_records=200,
        warmup=millis(20),
        measure=millis(50),
        seed=42,
    )
    first = ResilientDBSystem(config).run()
    second = ResilientDBSystem(config).run()
    assert first.throughput_txns_per_s == second.throughput_txns_per_s
    assert first.latency_mean_s == second.latency_mean_s
    assert first.messages_sent == second.messages_sent


def test_different_seed_different_trace():
    config = SystemConfig(
        num_replicas=4,
        num_clients=32,
        client_groups=2,
        batch_size=4,
        ycsb_records=200,
        warmup=millis(20),
        measure=millis(50),
    )
    first = ResilientDBSystem(config.with_options(seed=1)).run()
    second = ResilientDBSystem(config.with_options(seed=2)).run()
    # workload keys differ, so byte counts almost surely differ
    assert (
        first.bytes_sent != second.bytes_sent
        or first.latency_mean_s != second.latency_mean_s
    )


def test_real_auth_tokens_verified_end_to_end(small_config):
    system = ResilientDBSystem(small_config.with_options(real_auth_tokens=True))
    result = system.run()
    assert result.invalid_messages == 0
    assert result.completed_requests > 0


def test_state_convergence_across_replicas(small_config):
    system = ResilientDBSystem(small_config)
    system.run()
    system.validate_safety()  # includes state-convergence check
    primary_store = system.replicas["r0"].store
    assert primary_store.writes > 0


def test_saturation_report_covers_pipeline_stages(small_config):
    system = ResilientDBSystem(small_config)
    result = system.run()
    for stage in ("batch-0", "batch-1", "worker", "execute"):
        assert stage in result.primary_saturation
    assert "worker" in result.backup_saturation
    # a backup never runs batch threads
    assert "batch-0" not in result.backup_saturation
    assert 0 < result.cumulative_saturation("primary") <= small_config.cores_per_replica


def test_crashed_backups_do_not_stop_progress(small_config):
    system = ResilientDBSystem(small_config)
    system.crash_replicas(1)
    result = system.run()
    assert result.completed_requests > 50
    system.validate_safety()


def test_crash_more_than_f_rejected(small_config):
    system = ResilientDBSystem(small_config)
    with pytest.raises(ValueError):
        system.crash_replicas(2)  # f = 1 at n = 4


def test_more_than_f_crashes_halt_commitment():
    config = SystemConfig(
        num_replicas=4,
        num_clients=16,
        client_groups=2,
        batch_size=4,
        ycsb_records=200,
        warmup=millis(20),
        measure=millis(50),
    )
    system = ResilientDBSystem(config)
    system.faults.crash("r2")
    system.faults.crash("r3")
    result = system.run()
    assert result.completed_requests == 0


def test_sqlite_backend_runs_and_converges(small_config):
    config = small_config.with_options(storage_backend="sqlite", ycsb_records=100)
    system = ResilientDBSystem(config)
    try:
        result = system.run()
        assert result.completed_requests > 0
        logs = {r: rep.executed_log for r, rep in system.replicas.items()}
        from repro.consensus.safety import check_execution_consistency

        check_execution_consistency(logs)
    finally:
        system.close()


def test_cannot_start_twice(small_config):
    system = ResilientDBSystem(small_config)
    system.start()
    with pytest.raises(RuntimeError):
        system.start()
