"""Binary wire codec for protocol messages.

The simulation itself passes message objects by reference (serialising
every message would only burn host CPU), but the wire-size model in each
message's ``payload_bytes()`` needs grounding.  This codec actually
encodes and decodes the protocol messages to compact binary frames so

1. tests can assert that the modelled sizes track real encoded sizes, and
2. downstream users get a concrete starting point for a networked port.

Frame layout::

    magic (2) | version (1) | kind tag (1) | instance (2) |
    sender len (2) | sender | body (type-specific fields, little-endian) ...

The two-byte ``instance`` field is part of the envelope (version 2): it
routes messages between the concurrent consensus instances of a
multi-primary (RCC) deployment and is zero for single-instance protocols.
Strings are length-prefixed UTF-8; sequences are count-prefixed.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.consensus.messages import (
    BusyNack,
    Checkpoint,
    ClientRequest,
    ClientResponse,
    Commit,
    Prepare,
    PrePrepare,
    RequestBatch,
)
from repro.net.message import Message
from repro.workloads.transactions import Operation, OpType, Transaction

MAGIC = b"RD"  # two-byte frame magic
VERSION = 2  # v2 added the instance field to the envelope

_KIND_TAGS = {
    "client-request": 1,
    "pre-prepare": 2,
    "prepare": 3,
    "commit": 4,
    "client-response": 5,
    "checkpoint": 6,
    "busy-nack": 7,
}
_TAG_KINDS = {tag: kind for kind, tag in _KIND_TAGS.items()}


class CodecError(ValueError):
    """Raised on malformed frames."""


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
def _put_str(out: List[bytes], value: str) -> None:
    raw = value.encode("utf-8")
    out.append(struct.pack("<H", len(raw)))
    out.append(raw)


def _get_str(view: memoryview, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from("<H", view, offset)
    offset += 2
    value = bytes(view[offset:offset + length]).decode("utf-8")
    return value, offset + length


def _put_u64(out: List[bytes], value: int) -> None:
    out.append(struct.pack("<Q", value))


def _get_u64(view: memoryview, offset: int) -> Tuple[int, int]:
    (value,) = struct.unpack_from("<Q", view, offset)
    return value, offset + 8


# ----------------------------------------------------------------------
# transactions
# ----------------------------------------------------------------------
def _put_txn(out: List[bytes], txn: Transaction) -> None:
    _put_str(out, txn.client_id)
    _put_u64(out, txn.padding_bytes)
    out.append(struct.pack("<H", len(txn.ops)))
    for op in txn.ops:
        out.append(b"\x01" if op.op_type is OpType.WRITE else b"\x00")
        _put_str(out, op.key)
        _put_str(out, op.value or "")
    # padding rides as literal zero bytes on a real wire
    out.append(b"\x00" * txn.padding_bytes)


def _get_txn(view: memoryview, offset: int) -> Tuple[Transaction, int]:
    client_id, offset = _get_str(view, offset)
    padding, offset = _get_u64(view, offset)
    (op_count,) = struct.unpack_from("<H", view, offset)
    offset += 2
    ops = []
    for _ in range(op_count):
        is_write = view[offset] == 1
        offset += 1
        key, offset = _get_str(view, offset)
        value, offset = _get_str(view, offset)
        if is_write:
            ops.append(Operation(OpType.WRITE, key, value))
        else:
            ops.append(Operation(OpType.READ, key))
    offset += padding
    return Transaction(client_id, tuple(ops), padding_bytes=padding), offset


# ----------------------------------------------------------------------
# message bodies
# ----------------------------------------------------------------------
def _encode_body(message: Message) -> List[bytes]:
    out: List[bytes] = []
    kind = message.kind
    if kind == "client-request":
        _put_u64(out, message.request_id)
        out.append(struct.pack("<H", len(message.txns)))
        for txn in message.txns:
            _put_txn(out, txn)
    elif kind == "pre-prepare":
        _put_u64(out, message.view)
        _put_u64(out, message.sequence)
        _put_str(out, message.digest or "")
        requests = message.request.requests
        out.append(struct.pack("<H", len(requests)))
        for request in requests:
            _put_str(out, request.sender)
            _put_u64(out, request.request_id)
            out.append(struct.pack("<H", len(request.txns)))
            for txn in request.txns:
                _put_txn(out, txn)
    elif kind in ("prepare", "commit"):
        _put_u64(out, message.view)
        _put_u64(out, message.sequence)
        _put_str(out, message.digest or "")
    elif kind == "client-response":
        _put_u64(out, message.view)
        _put_u64(out, message.sequence)
        _put_str(out, message.result_digest)
        out.append(struct.pack("<H", len(message.request_ids)))
        for request_id in message.request_ids:
            _put_u64(out, request_id)
    elif kind == "checkpoint":
        _put_u64(out, message.sequence)
        _put_str(out, message.state_digest)
        _put_u64(out, message.blocks_included)
        out.append(b"\x00" * (message.blocks_included * message.block_bytes))
    elif kind == "busy-nack":
        _put_str(out, message.reason)
        _put_u64(out, message.retry_after_ns)
        out.append(struct.pack("<H", len(message.request_ids)))
        for request_id in message.request_ids:
            _put_u64(out, request_id)
    else:
        raise CodecError(f"no codec for message kind {kind!r}")
    return out


def encode(message: Message) -> bytes:
    """Serialise ``message`` to a binary frame."""
    tag = _KIND_TAGS.get(message.kind)
    if tag is None:
        raise CodecError(f"no codec for message kind {message.kind!r}")
    out: List[bytes] = [
        MAGIC,
        struct.pack("<BBH", VERSION, tag, message.instance),
    ]
    _put_str(out, message.sender)
    out.extend(_encode_body(message))
    return b"".join(out)


def decode(frame: bytes) -> Message:
    """Parse a frame back into a message object (auth tokens excluded —
    they travel in the transport envelope, not the body)."""
    view = memoryview(frame)
    if bytes(view[:2]) != MAGIC:
        raise CodecError("bad magic")
    version, tag, instance = struct.unpack_from("<BBH", view, 2)
    if version != VERSION:
        raise CodecError(f"unsupported version {version}")
    kind = _TAG_KINDS.get(tag)
    if kind is None:
        raise CodecError(f"unknown kind tag {tag}")
    offset = 6
    sender, offset = _get_str(view, offset)
    message = _decode_body(kind, sender, view, offset)
    message.instance = instance
    return message


def _decode_body(kind: str, sender: str, view, offset: int) -> Message:
    if kind == "client-request":
        request_id, offset = _get_u64(view, offset)
        (txn_count,) = struct.unpack_from("<H", view, offset)
        offset += 2
        txns = []
        for _ in range(txn_count):
            txn, offset = _get_txn(view, offset)
            txns.append(txn)
        return ClientRequest(sender, request_id, tuple(txns))
    if kind == "pre-prepare":
        value_view = view
        view_number, offset = _get_u64(value_view, offset)
        sequence, offset = _get_u64(value_view, offset)
        digest, offset = _get_str(value_view, offset)
        (request_count,) = struct.unpack_from("<H", value_view, offset)
        offset += 2
        requests = []
        for _ in range(request_count):
            request_sender, offset = _get_str(value_view, offset)
            request_id, offset = _get_u64(value_view, offset)
            (txn_count,) = struct.unpack_from("<H", value_view, offset)
            offset += 2
            txns = []
            for _ in range(txn_count):
                txn, offset = _get_txn(value_view, offset)
                txns.append(txn)
            requests.append(ClientRequest(request_sender, request_id, tuple(txns)))
        batch = RequestBatch(tuple(requests))
        batch.digest = digest
        return PrePrepare(sender, view_number, sequence, digest, batch)
    if kind in ("prepare", "commit"):
        view_number, offset = _get_u64(view, offset)
        sequence, offset = _get_u64(view, offset)
        digest, offset = _get_str(view, offset)
        cls = Prepare if kind == "prepare" else Commit
        return cls(sender, view_number, sequence, digest)
    if kind == "client-response":
        view_number, offset = _get_u64(view, offset)
        sequence, offset = _get_u64(view, offset)
        result_digest, offset = _get_str(view, offset)
        (id_count,) = struct.unpack_from("<H", view, offset)
        offset += 2
        request_ids = []
        for _ in range(id_count):
            request_id, offset = _get_u64(view, offset)
            request_ids.append(request_id)
        return ClientResponse(
            sender, tuple(request_ids), view_number, sequence, result_digest
        )
    if kind == "busy-nack":
        reason, offset = _get_str(view, offset)
        retry_after, offset = _get_u64(view, offset)
        (id_count,) = struct.unpack_from("<H", view, offset)
        offset += 2
        request_ids = []
        for _ in range(id_count):
            request_id, offset = _get_u64(view, offset)
            request_ids.append(request_id)
        return BusyNack(sender, tuple(request_ids), reason, retry_after)
    # checkpoint
    sequence, offset = _get_u64(view, offset)
    state_digest, offset = _get_str(view, offset)
    blocks_included, offset = _get_u64(view, offset)
    return Checkpoint(sender, sequence, state_digest, blocks_included)


def encoded_size(message: Message) -> int:
    """Real encoded size in bytes (for validating the size model)."""
    return len(encode(message))
