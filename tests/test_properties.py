"""Property-based tests (hypothesis) on core data structures and the
protocol safety invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.consensus import QuorumConfig
from repro.consensus.safety import SafetyViolation, check_execution_consistency
from repro.crypto import CmacAesScheme, Ed25519Scheme, KeyStore
from repro.sim import SimQueue, Simulator
from repro.sim.metrics import LatencyHistogram
from repro.sim.queues import SimPriorityQueue
from repro.sim.rng import DeterministicRNG
from repro.storage import Block, Blockchain, CheckpointStore
from repro.workloads import ZipfianGenerator

from tests.consensus.harness import Cluster, make_request


# ----------------------------------------------------------------------
# quorum arithmetic
# ----------------------------------------------------------------------
@given(n=st.integers(min_value=4, max_value=400))
def test_quorum_intersection_property(n):
    """Any two commit quorums intersect in at least f+1 replicas, so they
    always share a non-faulty one — the root of BFT safety."""
    quorum = QuorumConfig.for_replicas(n)
    overlap = 2 * quorum.commit_quorum - quorum.n
    assert overlap >= quorum.f + 1
    assert quorum.prepare_quorum + 1 == quorum.commit_quorum


# ----------------------------------------------------------------------
# blockchain
# ----------------------------------------------------------------------
@st.composite
def chain_segments(draw):
    length = draw(st.integers(min_value=1, max_value=30))
    return [
        draw(st.text(alphabet="abcdef0123456789", min_size=4, max_size=8))
        for _ in range(length)
    ]


@given(digests=chain_segments())
@settings(max_examples=50)
def test_chain_append_validate_roundtrip(digests):
    from repro.storage.blockchain import CertificationMode

    chain = Blockchain("r0", mode=CertificationMode.PREV_HASH)
    for i, digest in enumerate(digests, start=1):
        chain.append(
            Block(
                sequence=i,
                digest=digest,
                view=0,
                proposer="r0",
                txn_count=1,
                prev_hash=chain.head().block_hash(),
            )
        )
    chain.validate()
    assert chain.height == len(digests)


@given(digests=chain_segments(), tamper_at=st.integers(min_value=0, max_value=28))
@settings(max_examples=50)
def test_chain_tampering_always_detected(digests, tamper_at):
    """Replacing any interior block's digest breaks validation (the
    immutability property of §2.2)."""
    from repro.storage.blockchain import CertificationMode, ChainViolation

    if len(digests) < 2:
        digests = digests + ["aa", "bb"]
    chain = Blockchain("r0", mode=CertificationMode.PREV_HASH)
    for i, digest in enumerate(digests, start=1):
        chain.append(
            Block(
                sequence=i,
                digest=digest,
                view=0,
                proposer="r0",
                txn_count=1,
                prev_hash=chain.head().block_hash(),
            )
        )
    index = 1 + (tamper_at % (len(chain.blocks) - 2)) if len(chain.blocks) > 2 else 1
    victim = chain.blocks[index]
    chain.blocks[index] = Block(
        sequence=victim.sequence,
        digest=victim.digest + "-tampered",
        view=victim.view,
        proposer=victim.proposer,
        txn_count=victim.txn_count,
        prev_hash=victim.prev_hash,
    )
    with pytest.raises(ChainViolation):
        chain.validate()


# ----------------------------------------------------------------------
# checkpoint store
# ----------------------------------------------------------------------
@given(
    votes=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),  # checkpoint index
            st.sampled_from(["dA", "dB"]),
            st.sampled_from(["r0", "r1", "r2", "r3", "r4", "r5"]),
        ),
        max_size=80,
    )
)
@settings(max_examples=100)
def test_checkpoint_stability_monotone(votes):
    store = CheckpointStore(quorum_size=3, interval=10)
    last_stable = 0
    for index, digest, voter in votes:
        store.record_vote(index * 10, digest, voter)
        assert store.stable_sequence >= last_stable
        assert store.gc_horizon() <= store.stable_sequence
        last_stable = store.stable_sequence


# ----------------------------------------------------------------------
# queues
# ----------------------------------------------------------------------
@given(items=st.lists(st.integers(), max_size=50))
def test_queue_preserves_fifo_order(items):
    sim = Simulator()
    queue = SimQueue(sim, "q")
    for item in items:
        queue.put_nowait(item)
    drained = [queue.get_nowait() for _ in items]
    assert drained == items


@given(
    entries=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), st.integers()),
        max_size=50,
    )
)
def test_priority_queue_serves_in_priority_then_fifo_order(entries):
    sim = Simulator()
    queue = SimPriorityQueue(sim, "pq")
    for priority, item in entries:
        queue.put_nowait(item, priority=priority)
    drained = []
    while len(queue):
        drained.append(queue.get_nowait())
    # expected: stable sort by priority
    expected = [item for _priority, item in sorted(
        [(priority, item) for priority, item in entries],
        key=lambda pair: pair[0],
    )]
    # stable sort on priority only

    indexed = sorted(
        enumerate(entries), key=lambda pair: (pair[1][0], pair[0])
    )
    expected = [item for _i, (_priority, item) in indexed]
    assert drained == expected


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
@given(samples=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                        max_size=200))
def test_histogram_percentiles_bounded_by_extremes(samples):
    histogram = LatencyHistogram("h")
    for sample in samples:
        histogram.record(sample)
    p50 = histogram.percentile_seconds(50)
    p99 = histogram.percentile_seconds(99)
    assert min(samples) / 1e9 <= p50 <= p99 <= max(samples) / 1e9
    assert histogram.percentile_seconds(100) == max(samples) / 1e9


# ----------------------------------------------------------------------
# crypto
# ----------------------------------------------------------------------
@given(payload=st.binary(min_size=0, max_size=512))
def test_signature_roundtrip_any_payload(payload):
    store = KeyStore(1)
    store.register("a")
    store.register("b")
    for scheme in (Ed25519Scheme(store), CmacAesScheme(store)):
        token, _ = scheme.authenticate(payload, "a", ["b"])
        valid, _ = scheme.check(payload, token, "a", "b")
        assert valid
        if payload:
            corrupted = bytes([payload[0] ^ 1]) + payload[1:]
            still_valid, _ = scheme.check(corrupted, token, "a", "b")
            assert not still_valid


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------
@given(
    item_count=st.integers(min_value=2, max_value=10_000),
    theta=st.floats(min_value=0.05, max_value=0.95),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50)
def test_zipfian_always_in_range(item_count, theta, seed):
    generator = ZipfianGenerator(item_count, DeterministicRNG(seed), theta=theta)
    for _ in range(50):
        assert 0 <= generator.next_key() < item_count


# ----------------------------------------------------------------------
# PBFT safety under adversarial delivery
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    request_count=st.integers(min_value=1, max_value=8),
    drop_fraction=st.floats(min_value=0.0, max_value=0.15),
)
@settings(max_examples=30, deadline=None)
def test_pbft_safety_under_shuffled_lossy_delivery(seed, request_count,
                                                   drop_fraction):
    """No interleaving or moderate message loss may make two replicas
    execute different batches at the same sequence number."""
    rng = DeterministicRNG(seed)
    cluster = Cluster(4)
    requests = [make_request("client0", i) for i in range(1, request_count + 1)]
    for request in requests:
        cluster.propose(request)

    def tamper(src, dst, message):
        return None if rng.random() < drop_fraction else message

    cluster.tamper = tamper
    steps = 0
    while cluster.wire and steps < 50_000:
        cluster.shuffle_wire(rng)
        cluster.deliver_one()
        steps += 1
    # safety always; liveness only without drops
    check_execution_consistency(cluster.executed)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_pbft_equivocating_primary_never_splits_state(seed):
    """A byzantine primary proposing different digests to different
    backups must not produce divergent executions."""
    rng = DeterministicRNG(seed)
    cluster = Cluster(4)
    good = make_request("client0", 1)
    evil = make_request("client0", 2)
    from repro.consensus.messages import PrePrepare

    # craft conflicting pre-prepares for sequence 1 by hand
    for dst, request in (("r1", good), ("r2", good), ("r3", evil)):
        cluster.wire.append(
            ("r0", dst, PrePrepare("r0", 0, 1, request.digest, request))
        )
    while cluster.wire:
        cluster.shuffle_wire(rng)
        cluster.deliver_one()
    check_execution_consistency(cluster.executed, faulty=["r0"])


def test_execution_consistency_detects_divergence():
    logs = {
        "r0": [(1, "a"), (2, "b")],
        "r1": [(1, "a"), (2, "c")],
    }
    with pytest.raises(SafetyViolation):
        check_execution_consistency(logs)


def test_execution_consistency_detects_gap():
    logs = {"r0": [(1, "a"), (3, "c")]}
    with pytest.raises(SafetyViolation):
        check_execution_consistency(logs)
