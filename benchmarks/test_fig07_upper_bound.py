"""Figure 7: upper-bound throughput/latency with no consensus.

Paper claims: the primary answering clients directly (two independent
threads, no ordering, no communication between replicas) reaches up to
~500K txns/s at ≤0.25 s latency; skipping execution is slightly faster
than executing.
"""

from repro.bench import fig07_upper_bound


def test_fig07_upper_bound(benchmark, record_figure):
    figure = benchmark.pedantic(fig07_upper_bound, rounds=1, iterations=1)
    record_figure(figure)
    no_execution = figure.get("No Execution")
    execution = figure.get("Execution")
    # shape: skipping execution never hurts
    for skip, run in zip(no_execution.throughputs(), execution.throughputs()):
        assert skip >= 0.95 * run
    # scale: hundreds of thousands of txns/s (paper: up to ~500K)
    assert max(no_execution.throughputs()) > 300_000
    # latency stays sub-second at every load (paper: up to 0.25 s)
    assert max(no_execution.latencies() + execution.latencies()) < 1.0
