"""Export observability data: Prometheus text, JSON, CSV, Chrome trace.

Four serialisers, all pure functions of the in-memory instruments:

- :func:`prometheus_text` — the Prometheus exposition format (text/plain
  version 0.0.4) for :class:`~repro.sim.metrics.MetricsRegistry` counters,
  histograms (as summaries) and busy trackers, plus the latest sampler
  values as gauges.  Scrape the file or serve it as-is.
- :func:`metrics_json` — the same data as one JSON document (stable key
  order) for ad-hoc tooling and golden tests.
- :func:`sampler_csv` — the sampler's time series in long format
  (``time_ns,series,value``), one row per sample, ready for pandas or
  gnuplot queue-growth plots.
- :func:`chrome_trace` — Chrome trace-event JSON (load in Perfetto via
  https://ui.perfetto.dev or ``chrome://tracing``) combining lifecycle
  span stages (complete events per pipeline stage) and
  :class:`~repro.sim.tracing.Tracer` records (instant events).

Simulation ticks are nanoseconds; trace-event timestamps are microseconds,
so exported ``ts``/``dur`` values are ticks / 1000.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

from repro.sim.clock import NANOS_PER_SEC

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: quantiles reported for every histogram in Prometheus / JSON exports
QUANTILES = (50.0, 90.0, 99.0)


def _metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitise an instrument name into a legal Prometheus metric name."""
    cleaned = _NAME_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"{prefix}_{cleaned}"


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def prometheus_text(registry, sampler=None, spans=None) -> str:
    """Render a registry (and optional sampler/spans) as Prometheus text."""
    lines: List[str] = []

    for name in sorted(registry.counters):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {registry.counters[name].value}")

    for name in sorted(registry.histograms):
        _summary_lines(lines, _metric_name(name), registry.histograms[name])

    for name in sorted(registry.busy):
        metric = _metric_name(f"busy_{name}_ns")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {registry.busy[name].busy_ns}")

    window = _metric_name("measurement_window_seconds")
    lines.append(f"# TYPE {window} gauge")
    lines.append(f"{window} {registry.window_ns() / NANOS_PER_SEC:.9f}")

    if spans is not None and spans.histograms:
        for stage in sorted(spans.histograms):
            _summary_lines(
                lines,
                _metric_name(f"stage_{stage}"),
                spans.histograms[stage],
            )

    if sampler is not None and sampler.series:
        metric = _metric_name("sample")
        lines.append(f"# TYPE {metric} gauge")
        for name in sorted(sampler.series):
            series = sampler.series[name]
            if not len(series):
                continue
            _at, value = series.points[-1]
            lines.append(f'{metric}{{series="{name}"}} {value}')

    return "\n".join(lines) + "\n"


def _summary_lines(lines: List[str], metric: str, histogram) -> None:
    metric = metric + "_seconds"
    lines.append(f"# TYPE {metric} summary")
    for pct in QUANTILES:
        value = histogram.percentile_seconds(pct) if histogram.count else 0.0
        lines.append(f'{metric}{{quantile="{pct / 100.0:g}"}} {value:.9f}')
    total_seconds = histogram.mean_seconds() * histogram.count
    lines.append(f"{metric}_sum {total_seconds:.9f}")
    lines.append(f"{metric}_count {histogram.count}")


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def metrics_json(registry, sampler=None, spans=None, indent: int = 2) -> str:
    """One JSON document with counters, histograms, busy time, stage
    latency and sampled time series (stable key order)."""
    doc: Dict[str, object] = {
        "counters": {
            name: counter.value
            for name, counter in sorted(registry.counters.items())
        },
        "histograms": {
            name: _histogram_dict(histogram)
            for name, histogram in sorted(registry.histograms.items())
        },
        "busy_ns": {
            name: tracker.busy_ns
            for name, tracker in sorted(registry.busy.items())
        },
        "window_ns": registry.window_ns(),
    }
    if spans is not None:
        doc["stage_latency"] = spans.stage_table()
        doc["spans_completed"] = spans.spans_completed
    if sampler is not None:
        doc["series"] = {
            name: [[at, value] for at, value in series.points]
            for name, series in sorted(sampler.series.items())
        }
    return json.dumps(doc, indent=indent, sort_keys=True)


def _histogram_dict(histogram) -> Dict[str, float]:
    out: Dict[str, float] = {
        "count": histogram.count,
        "mean_s": histogram.mean_seconds(),
        "max_s": histogram.max_seconds(),
    }
    for pct in QUANTILES:
        out[f"p{pct:g}_s"] = (
            histogram.percentile_seconds(pct) if histogram.count else 0.0
        )
    return out


# ----------------------------------------------------------------------
# CSV (sampler time series)
# ----------------------------------------------------------------------
def sampler_csv(sampler) -> str:
    """Long-format CSV of every sampled point: ``time_ns,series,value``."""
    lines = ["time_ns,series,value"]
    for at, name, value in sampler.rows():
        lines.append(f"{at},{name},{value:g}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Chrome trace events (Perfetto)
# ----------------------------------------------------------------------
def chrome_trace(spans=None, tracer=None, indent: Optional[int] = None) -> str:
    """Spans and tracer records as a Chrome trace-event JSON document.

    Lifecycle spans become per-stage complete events (``ph: "X"``) grouped
    under one process per client group, one track per request; tracer
    records become instant events (``ph: "i"``) under one process per
    node.  The result loads directly in Perfetto / chrome://tracing.
    """
    events: List[dict] = []
    pids: Dict[str, int] = {}

    def pid_of(node: str) -> int:
        if node not in pids:
            pids[node] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[node],
                    "tid": 0,
                    "args": {"name": node},
                }
            )
        return pids[node]

    if spans is not None:
        from repro.obs.spans import STAGES

        for (group, request_id), stamps in spans.finished:
            pid = pid_of(group)
            previous = stamps.get("submit")
            if previous is None:
                continue
            for stage in STAGES[1:]:
                stamped = stamps.get(stage)
                if stamped is None:
                    continue
                events.append(
                    {
                        "name": stage,
                        "cat": "lifecycle",
                        "ph": "X",
                        "ts": previous / 1_000,
                        "dur": (stamped - previous) / 1_000,
                        "pid": pid,
                        "tid": request_id,
                        "args": {"request": request_id},
                    }
                )
                previous = stamped

    if tracer is not None:
        for record in tracer.records():
            events.append(
                {
                    "name": record.category,
                    "cat": "tracer",
                    "ph": "i",
                    "s": "t",
                    "ts": record.at / 1_000,
                    "pid": pid_of(record.node),
                    "tid": 0,
                    "args": {"detail": record.detail},
                }
            )

    doc = {"traceEvents": events, "displayTimeUnit": "ns"}
    return json.dumps(doc, indent=indent, sort_keys=True)
