"""Tests for timed queue gets (the batch fill-deadline mechanism)."""


from repro.sim import SimQueue, Simulator, Timeout
from repro.sim.events import TIMEOUT


def test_get_timeout_fires_when_empty():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    results = []

    def consumer():
        item = yield queue.get(timeout=100)
        results.append((sim.now, item))

    sim.spawn(consumer())
    sim.run()
    assert results == [(100, TIMEOUT)]


def test_item_beats_timeout():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    results = []

    def consumer():
        item = yield queue.get(timeout=100)
        results.append((sim.now, item))

    sim.spawn(consumer())
    sim.schedule(40, queue.put_nowait, "early")
    sim.run()
    assert results == [(40, "early")]


def test_timed_out_getter_does_not_steal_later_items():
    """After a waiter times out, the next put must go to the queue (or a
    live waiter), never resume the expired process a second time."""
    sim = Simulator()
    queue = SimQueue(sim, "q")
    events = []

    def impatient():
        item = yield queue.get(timeout=50)
        events.append(("impatient", sim.now, item))
        # goes on to do something else entirely
        yield Timeout(1000)
        events.append(("impatient-done", sim.now, None))

    def patient():
        item = yield queue.get()
        events.append(("patient", sim.now, item))

    sim.spawn(impatient())
    sim.schedule(60, sim.spawn, patient())
    sim.schedule(100, queue.put_nowait, "late")
    sim.run()
    assert ("impatient", 50, TIMEOUT) in events
    assert ("patient", 100, "late") in events


def test_mixed_timed_and_untimed_waiters_fifo():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    got = []

    def waiter(name, timeout=None):
        item = yield queue.get(timeout=timeout)
        got.append((name, item))

    sim.spawn(waiter("a", timeout=1000))
    sim.spawn(waiter("b"))
    sim.schedule(10, queue.put_nowait, 1)
    sim.schedule(20, queue.put_nowait, 2)
    sim.run(until=2000)
    assert got == [("a", 1), ("b", 2)]


def test_expired_waiter_skipped_in_fifo_order():
    sim = Simulator()
    queue = SimQueue(sim, "q")
    got = []

    def waiter(name, timeout=None):
        item = yield queue.get(timeout=timeout)
        got.append((name, sim.now, item))

    sim.spawn(waiter("short", timeout=10))
    sim.spawn(waiter("forever"))
    sim.schedule(50, queue.put_nowait, "x")
    sim.run()
    assert ("short", 10, TIMEOUT) in got
    assert ("forever", 50, "x") in got
