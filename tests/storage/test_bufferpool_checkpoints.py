"""Tests for buffer pools and checkpoint bookkeeping."""

import pytest

from repro.storage import BufferPool, CheckpointStore


# ----------------------------------------------------------------------
# buffer pool
# ----------------------------------------------------------------------
def test_pool_hit_is_cheaper_than_allocation():
    pool = BufferPool(dict, capacity=4)
    _, hit_cost = pool.acquire()
    assert hit_cost == BufferPool.pooled_acquire_ns
    assert hit_cost < BufferPool.alloc_ns


def test_pool_miss_falls_back_to_allocation():
    pool = BufferPool(dict, capacity=1)
    pool.acquire()
    _, miss_cost = pool.acquire()
    assert miss_cost == BufferPool.alloc_ns
    assert pool.hits == 1 and pool.misses == 1


def test_release_recycles_objects():
    pool = BufferPool(dict, capacity=1)
    obj, _ = pool.acquire()
    assert pool.available == 0
    pool.release(obj)
    assert pool.available == 1
    recycled, cost = pool.acquire()
    assert recycled is obj
    assert cost == BufferPool.pooled_acquire_ns


def test_release_beyond_capacity_drops():
    pool = BufferPool(dict, capacity=1)
    pool.release(dict())
    pool.release(dict())
    assert pool.available == 1


def test_disabled_pool_always_allocates():
    pool = BufferPool(dict, capacity=8, enabled=False)
    _, cost = pool.acquire()
    assert cost == BufferPool.alloc_ns
    assert pool.hit_rate() == 0.0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        BufferPool(dict, capacity=-1)


def test_hit_rate():
    pool = BufferPool(dict, capacity=2)
    pool.acquire()
    pool.acquire()
    pool.acquire()  # miss
    assert pool.hit_rate() == pytest.approx(2 / 3)


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
def test_checkpoint_sequence_predicate():
    store = CheckpointStore(quorum_size=3, interval=100)
    assert not store.is_checkpoint_sequence(0)
    assert not store.is_checkpoint_sequence(50)
    assert store.is_checkpoint_sequence(100)
    assert store.is_checkpoint_sequence(200)


def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        CheckpointStore(quorum_size=3, interval=0)


def test_stability_requires_quorum_of_identical_votes():
    store = CheckpointStore(quorum_size=3, interval=10)
    assert not store.record_vote(10, "digestA", "r0")
    assert not store.record_vote(10, "digestA", "r1")
    # a diverging replica's vote (different digest) must not count
    assert not store.record_vote(10, "digestB", "r2")
    assert store.record_vote(10, "digestA", "r3")
    assert store.stable_sequence == 10


def test_duplicate_votes_do_not_count_twice():
    store = CheckpointStore(quorum_size=3, interval=10)
    store.record_vote(10, "d", "r0")
    store.record_vote(10, "d", "r0")
    store.record_vote(10, "d", "r0")
    assert store.stable_sequence == 0


def test_gc_horizon_is_previous_stable_checkpoint():
    store = CheckpointStore(quorum_size=2, interval=10)
    store.record_vote(10, "d10", "r0")
    store.record_vote(10, "d10", "r1")
    assert store.stable_sequence == 10
    assert store.gc_horizon() == 0  # "before the previous checkpoint"
    store.record_vote(20, "d20", "r0")
    store.record_vote(20, "d20", "r1")
    assert store.stable_sequence == 20
    assert store.gc_horizon() == 10


def test_votes_below_stable_horizon_ignored():
    store = CheckpointStore(quorum_size=2, interval=10)
    store.record_vote(20, "d20", "r0")
    store.record_vote(20, "d20", "r1")
    assert not store.record_vote(10, "d10", "r0")
    assert store.pending_checkpoints() == 0


def test_vote_counting_query():
    store = CheckpointStore(quorum_size=3, interval=10)
    store.record_vote(10, "d", "r0")
    assert store.votes_for(10, "d") == 1
    assert store.votes_for(10, "other") == 0
