"""One experiment per figure of the paper's evaluation (§5).

Every function returns a :class:`~repro.bench.report.FigureResult` whose
series mirror the paper's plots.  EXPERIMENTS.md records, per figure, the
paper's claim next to what these functions measure.
"""

from __future__ import annotations

from typing import List

from repro.bench.report import FigureResult, Series, SeriesPoint
from repro.bench.runner import base_config, full_scale, run_config
from repro.crypto.schemes import SchemeName
from repro.sim.clock import millis, seconds

#: the four pipeline stages the Fig. 8/9 study sweeps: (batch, execute)
PIPELINE_CONFIGS = [
    ("0B 0E", 0, 0),
    ("0B 1E", 0, 1),
    ("1B 1E", 1, 1),
    ("2B 1E", 2, 1),
]


def _point(x, result, **extra) -> SeriesPoint:
    merged = {
        "p99_latency_s": result.latency_p99_s,
        "ops_per_s": result.throughput_ops_per_s,
    }
    merged.update(extra)
    return SeriesPoint(
        x=x,
        throughput_txns_per_s=result.throughput_txns_per_s,
        latency_s=result.latency_mean_s,
        extra=merged,
    )


def _replica_counts() -> List[int]:
    return [4, 8, 16, 32] if full_scale() else [4, 16, 32]


def _fig08_replica_counts() -> List[int]:
    """Fig. 8 sweeps 8 (protocol, pipeline) series; keep the quick-mode
    x-axis to two points so the whole figure stays tractable."""
    return [4, 8, 16, 32] if full_scale() else [4, 16]


# ======================================================================
# Figure 1 — the headline: well-crafted PBFT vs protocol-centric Zyzzyva
# ======================================================================
def fig01_headline() -> FigureResult:
    """ResilientDB (PBFT on the full 2B 1E pipeline) against Zyzzyva on a
    protocol-centric single-worker design, as replicas scale 4 → 32.

    Paper: ResilientDB reaches ~175K txns/s, scales to 32 replicas, and
    beats the Zyzzyva system by up to 79%.
    """
    figure = FigureResult(
        "fig01", "PBFT/ResilientDB vs Zyzzyva/protocol-centric", "replicas"
    )
    resilientdb = Series("ResilientDB (PBFT 2B 1E)")
    zyzzyva = Series("Zyzzyva (protocol-centric)")
    for n in _replica_counts():
        config = base_config(num_replicas=n)
        resilientdb.points.append(_point(n, run_config(config)))
        protocol_centric = config.with_options(
            protocol="zyzzyva", batch_threads=0, execute_threads=0
        )
        zyzzyva.points.append(_point(n, run_config(protocol_centric)))
    figure.series = [resilientdb, zyzzyva]
    best = max(
        resilientdb.throughputs()[i] / max(1.0, zyzzyva.throughputs()[i])
        for i in range(len(resilientdb.points))
    )
    figure.note(f"max PBFT-over-Zyzzyva advantage: {(best - 1) * 100:.0f}% "
                f"(paper: up to 79%)")
    return figure


# ======================================================================
# Figure 7 — upper bound: no consensus, no ordering
# ======================================================================
def fig07_upper_bound() -> FigureResult:
    """Primary answers clients directly, two independent threads, no
    consensus; with and without execution.

    Paper: up to ~500K txns/s and ≤0.25 s latency.  The microbenchmark
    strips protocol work, so signatures are off here too.
    """
    figure = FigureResult("fig07", "upper-bound throughput/latency", "clients")
    client_counts = [2_000, 8_000, 16_000] if not full_scale() else [
        4_000, 16_000, 32_000, 64_000,
    ]
    no_execution = Series("No Execution")
    execution = Series("Execution")
    for clients in client_counts:
        config = base_config(
            consensus_enabled=False,
            num_clients=clients,
            client_scheme=SchemeName.NULL,
            replica_scheme=SchemeName.NULL,
        )
        execution.points.append(_point(clients, run_config(config)))
        no_exec = config.with_options(execution_enabled=False)
        no_execution.points.append(_point(clients, run_config(no_exec)))
    figure.series = [no_execution, execution]
    return figure


# ======================================================================
# Figure 8 — threading and pipelining vs replica count
# ======================================================================
def fig08_threading() -> FigureResult:
    """PBFT and Zyzzyva under the four pipeline depths, replicas 4 → 32.

    Paper: PBFT gains 1.39× from 0B0E → 2B1E; Zyzzyva 1.72×; PBFT on the
    full pipeline outperforms every Zyzzyva variant except Zyzzyva on the
    same full pipeline.
    """
    figure = FigureResult("fig08", "effect of threading and pipelining", "replicas")
    counts = _fig08_replica_counts()
    for protocol in ("pbft", "zyzzyva"):
        for label, batch_threads, execute_threads in PIPELINE_CONFIGS:
            series = Series(f"{protocol.upper()} {label}")
            for n in counts:
                config = base_config(
                    protocol=protocol,
                    num_replicas=n,
                    batch_threads=batch_threads,
                    execute_threads=execute_threads,
                )
                series.points.append(_point(n, run_config(config)))
            figure.series.append(series)
    pbft_min = figure.get("PBFT 0B 0E").throughputs()
    pbft_max = figure.get("PBFT 2B 1E").throughputs()
    gain = max(m / max(1.0, b) for b, m in zip(pbft_min, pbft_max))
    figure.note(f"PBFT 0B0E → 2B1E gain: {gain:.2f}x (paper: 1.39x)")
    return figure


# ======================================================================
# Figure 9 — per-thread saturation
# ======================================================================
def fig09_saturation() -> FigureResult:
    """Thread saturation at primary and backups for each pipeline depth.

    Paper: at PBFT 2B1E the batch-threads are the saturated stage at the
    primary; backup workers carry the load elsewhere.
    """
    figure = FigureResult("fig09", "thread saturation levels (%)", "pipeline")
    primary = Series("cumulative (primary)")
    backup = Series("cumulative (backup)")
    for protocol in ("pbft", "zyzzyva"):
        for label, batch_threads, execute_threads in PIPELINE_CONFIGS:
            config = base_config(
                protocol=protocol,
                batch_threads=batch_threads,
                execute_threads=execute_threads,
            )
            result = run_config(config)
            tag = f"{protocol.upper()} {label}"
            primary.points.append(
                SeriesPoint(
                    x=tag,
                    throughput_txns_per_s=result.cumulative_saturation("primary")
                    * 100,
                    latency_s=0.0,
                    extra={
                        f"primary.{stage}": round(value * 100, 1)
                        for stage, value in result.primary_saturation.items()
                    },
                )
            )
            backup.points.append(
                SeriesPoint(
                    x=tag,
                    throughput_txns_per_s=result.cumulative_saturation("backup")
                    * 100,
                    latency_s=0.0,
                    extra={
                        f"backup.{stage}": round(value * 100, 1)
                        for stage, value in result.backup_saturation.items()
                    },
                )
            )
    figure.series = [primary, backup]
    figure.note("y values are cumulative saturation in percent, not txns/s")
    return figure


# ======================================================================
# Figure 10 — transaction batching
# ======================================================================
def fig10_batching() -> FigureResult:
    """Batch size 1 → 5000 at 16 replicas.

    Paper: throughput climbs until ~1000 txns/batch then falls by 3000;
    batching buys up to 66× throughput and −98.4% latency.
    """
    figure = FigureResult("fig10", "effect of transaction batching", "batch size")
    sizes = [1, 10, 100, 1000, 5000]
    if full_scale():
        sizes = [1, 10, 50, 100, 500, 1000, 3000, 5000]
    series = Series("PBFT 2B 1E")
    for size in sizes:
        config = base_config(batch_size=size)
        series.points.append(_point(size, run_config(config)))
    figure.series = [series]
    gains = series.throughputs()
    figure.note(
        f"batching gain vs batch=1: {max(gains) / max(1.0, gains[0]):.1f}x "
        f"(paper: up to 66x)"
    )
    return figure


# ======================================================================
# Figure 11 — multi-operation transactions
# ======================================================================
def fig11_multiop() -> FigureResult:
    """Operations per transaction 1 → 50, batch-threads 2 → 5.

    Paper: txn throughput falls ~93% as ops grow; more batch-threads
    recover up to 66%; measured in ops/s the trend reverses.
    """
    figure = FigureResult("fig11", "multi-operation transactions", "ops/txn")
    op_counts = [1, 10, 50] if not full_scale() else [1, 5, 10, 25, 50]
    for batch_threads in (2, 3, 5):
        series = Series(f"{batch_threads}B 1E")
        for ops in op_counts:
            config = base_config(ops_per_txn=ops, batch_threads=batch_threads)
            result = run_config(config)
            series.points.append(_point(ops, result))
        figure.series.append(series)
    two_thread = figure.get("2B 1E")
    drop = 1 - two_thread.throughputs()[-1] / max(1.0, two_thread.throughputs()[0])
    figure.note(f"txn-throughput drop at 50 ops (2B): {drop * 100:.0f}% (paper: 93%)")
    first, last = two_thread.points[0], two_thread.points[-1]
    figure.note(
        "ops/s trend reverses: "
        f"{first.extra['ops_per_s'] / 1e3:.0f}K → "
        f"{last.extra['ops_per_s'] / 1e3:.0f}K ops/s"
    )
    return figure


# ======================================================================
# Figure 12 — message size
# ======================================================================
def fig12_message_size() -> FigureResult:
    """Pre-prepare payload 8 KB → 64 KB at 16 replicas.

    Paper: −52% throughput and +1.09× latency from 8 KB to 64 KB; the
    system becomes network-bound while the threads sit idle.
    """
    figure = FigureResult("fig12", "effect of message size", "payload KB")
    sizes_kb = [0, 8, 64] if not full_scale() else [0, 8, 16, 32, 64]
    series = Series("PBFT 2B 1E")
    for size_kb in sizes_kb:
        config = base_config(
            payload_padding_bytes=size_kb * 1024 // base_config().batch_size,
        )
        result = run_config(config)
        series.points.append(
            _point(size_kb, result,
                   cumulative_saturation=result.cumulative_saturation("primary"))
        )
    figure.series = [series]
    with_payload = [p for p in series.points if p.x != 0]
    if len(with_payload) >= 2:
        drop = 1 - (
            with_payload[-1].throughput_txns_per_s
            / max(1.0, with_payload[0].throughput_txns_per_s)
        )
        figure.note(f"8KB → 64KB throughput drop: {drop * 100:.0f}% (paper: 52%)")
    return figure


# ======================================================================
# Figure 13 — cryptographic signature schemes
# ======================================================================
def fig13_crypto() -> FigureResult:
    """The four signing configurations of §5.6 at 16 replicas.

    Paper: NONE is fastest but unsafe; CMAC+ED25519 is the best safe
    configuration; RSA costs 125× more latency than CMAC+ED25519.
    """
    figure = FigureResult("fig13", "effect of signature schemes", "scheme")
    configurations = [
        ("NONE", SchemeName.NULL, SchemeName.NULL),
        ("ED25519", SchemeName.ED25519, SchemeName.ED25519),
        ("RSA", SchemeName.RSA, SchemeName.RSA),
        ("CMAC+ED25519", SchemeName.ED25519, SchemeName.CMAC_AES),
    ]
    series = Series("PBFT 2B 1E")
    for label, client_scheme, replica_scheme in configurations:
        config = base_config(
            client_scheme=client_scheme, replica_scheme=replica_scheme
        )
        series.points.append(_point(label, run_config(config)))
    figure.series = [series]
    by_label = {point.x: point for point in series.points}
    none_tp = by_label["NONE"].throughput_txns_per_s
    combo_tp = by_label["CMAC+ED25519"].throughput_txns_per_s
    figure.note(
        f"crypto cost: combo reaches {combo_tp / max(1.0, none_tp) * 100:.0f}% "
        f"of NONE (paper: crypto costs >=49% throughput)"
    )
    figure.note(
        f"RSA latency / combo latency: "
        f"{by_label['RSA'].latency_s / max(1e-9, by_label['CMAC+ED25519'].latency_s):.0f}x "
        f"(paper: 125x)"
    )
    return figure


# ======================================================================
# Figure 14 — in-memory vs off-memory storage
# ======================================================================
def fig14_storage() -> FigureResult:
    """In-memory key-value state vs SQLite at 16 replicas.

    Paper: SQLite costs 94% of throughput and 24× latency.
    """
    figure = FigureResult("fig14", "in-memory vs SQLite storage", "backend")
    series = Series("PBFT 2B 1E")
    for backend in ("memory", "sqlite"):
        # fewer clients than the base config: with SQLite's tiny capacity,
        # 8K closed-loop clients push steady-state latency far past the
        # measurement window and censor the latency comparison
        config = base_config(storage_backend=backend, num_clients=1_000)
        series.points.append(_point(backend, run_config(config)))
    figure.series = [series]
    memory, sqlite = series.points
    figure.note(
        f"SQLite throughput loss: "
        f"{(1 - sqlite.throughput_txns_per_s / max(1.0, memory.throughput_txns_per_s)) * 100:.0f}% "
        f"(paper: 94%)"
    )
    figure.note(
        f"SQLite latency factor: "
        f"{sqlite.latency_s / max(1e-9, memory.latency_s):.1f}x (paper: 24x)"
    )
    return figure


# ======================================================================
# Figure 15 — number of clients
# ======================================================================
def fig15_clients() -> FigureResult:
    """Closed-loop clients 1K → 20K (paper: 4K → 80K, scaled 4×).

    Paper: throughput saturates around the 32K-client mark (8K here) and
    latency keeps growing linearly — ~5× more latency for 5× the clients
    past saturation.
    """
    figure = FigureResult("fig15", "effect of clients", "clients")
    counts = [1_000, 4_000, 8_000, 16_000]
    if full_scale():
        counts = [4_000, 8_000, 16_000, 32_000, 64_000, 80_000]
    series = Series("PBFT 2B 1E")
    for clients in counts:
        config = base_config(num_clients=clients)
        series.points.append(_point(clients, run_config(config)))
    figure.series = [series]
    latencies = series.latencies()
    figure.note(
        f"latency growth across sweep: {latencies[-1] / max(1e-9, latencies[0]):.1f}x "
        f"while throughput changes "
        f"{series.throughputs()[-1] / max(1.0, series.throughputs()[2]) * 100 - 100:.1f}% "
        f"past saturation"
    )
    return figure


# ======================================================================
# Figure 16 — hardware cores
# ======================================================================
def fig16_cores() -> FigureResult:
    """Replicas on 1/2/4/8-core machines.

    Paper: 8 cores vs 1 core buys 8.92× throughput — the pipeline needs
    the parallel hardware it was designed for.
    """
    figure = FigureResult("fig16", "effect of hardware cores", "cores")
    series = Series("PBFT 2B 1E")
    for cores in (1, 2, 4, 8):
        config = base_config(cores_per_replica=cores)
        series.points.append(_point(cores, run_config(config)))
    figure.series = [series]
    gain = series.throughputs()[-1] / max(1.0, series.throughputs()[0])
    figure.note(f"8-core over 1-core gain: {gain:.2f}x (paper: 8.92x)")
    return figure


# ======================================================================
# Figure 17 — replica failures
# ======================================================================
def fig17_failures() -> FigureResult:
    """0, 1 and f=5 crashed backups at 16 replicas, PBFT vs Zyzzyva.

    Paper: PBFT's throughput barely dips; Zyzzyva's collapses (~39×) with
    even one failure because its clients wait out a timeout for the 3f+1
    fast path on every request.
    """
    figure = FigureResult("fig17", "effect of replica failures", "failures")
    pbft = Series("PBFT")
    zyzzyva = Series("Zyzzyva")
    for failures in (0, 1, 5):
        config = base_config()
        pbft.points.append(_point(failures, run_config(config, crash_backups=failures)))
        # under failures Zyzzyva's period is the client timeout, so the
        # measurement window must cover at least one full timeout cycle
        zyz_config = config.with_options(
            protocol="zyzzyva",
            zyzzyva_client_timeout=seconds(2),
            measure=seconds(2.4) if failures else config.measure,
            warmup=millis(200) if failures else config.warmup,
        )
        zyzzyva.points.append(
            _point(failures, run_config(zyz_config, crash_backups=failures))
        )
    figure.series = [pbft, zyzzyva]
    collapse = zyzzyva.throughputs()[0] / max(1.0, zyzzyva.throughputs()[1])
    figure.note(f"Zyzzyva collapse with one failure: {collapse:.1f}x (paper: ~39x)")
    dip = 1 - pbft.throughputs()[2] / max(1.0, pbft.throughputs()[0])
    figure.note(f"PBFT dip with f failures: {dip * 100:.1f}% (paper: small)")
    return figure


# ======================================================================
# Figure 18 — multi-primary concurrent consensus (RCC-style)
# ======================================================================
def fig18_rcc_scaling() -> FigureResult:
    """Throughput as the number of concurrent PBFT instances m grows at
    16 replicas, plus one run that crashes an instance primary mid-warmup.

    RCC's thesis (and §6's "multiple concurrent primaries" lesson): a
    single primary's bandwidth bounds single-instance throughput, so m
    concurrent instances unified round-robin should scale it ~m-fold
    until replicas saturate.  The crash run shows the failure story —
    the wedged lane view-changes on its own while every other lane keeps
    committing, and skip certificates keep the global merge live.
    """
    from repro.core.system import ResilientDBSystem

    figure = FigureResult(
        "fig18", "multi-primary (RCC) instance scaling", "primaries"
    )
    config = base_config(protocol="rcc")
    figure.meta.update(
        {
            "num_replicas": config.num_replicas,
            "num_clients": config.num_clients,
            "batch_size": config.batch_size,
            "warmup_ns": config.warmup,
            "measure_ns": config.measure,
            "crash_at_ns": millis(20),
            "view_change_timeout_ns": millis(12),
            "client_retransmit_ns": millis(25),
        }
    )
    fault_free = Series("RCC fault-free")
    for m in (1, 2, 3, 4):
        fault_free.points.append(
            _point(m, run_config(config.with_options(num_primaries=m)))
        )

    # crash instance 1's view-0 primary (r1) mid-warmup; a short view
    # change timeout keeps the rescue inside the measurement window, and
    # client retransmission (broadcast, forwarded to live lane primaries)
    # re-routes the requests the dead lane swallowed
    faulty = Series("RCC m=2, lane-1 primary crashed")
    crash_config = config.with_options(
        num_primaries=2,
        view_change_timeout=millis(12),
        client_retransmit=millis(25),
    )
    system = ResilientDBSystem(crash_config)
    try:
        system.faults.crash_at("r1", millis(20))
        result = system.run()
    finally:
        system.close()
    faulty.points.append(
        _point(
            2,
            result,
            chain_height=float(result.chain_height),
            stable_checkpoint=float(result.stable_checkpoint),
        )
    )

    figure.series = [fault_free, faulty]
    speedup = fault_free.throughputs()[2] / max(1.0, fault_free.throughputs()[0])
    figure.note(f"m=3 over m=1 speedup: {speedup:.2f}x (ideal: 3x)")
    figure.note(
        "crash run: the dead lane view-changes, skip certificates level "
        "the lanes, and retransmitted requests re-route — no wedge"
    )
    return figure


# ======================================================================
# Overload — graceful degradation with end-to-end flow control (ISSUE 5)
# ======================================================================
def fig19_overload_degradation() -> FigureResult:
    """Goodput and p99 as offered load sweeps 0.5× → 10× of capacity,
    with and without overload protection.

    §6's robustness lesson: a fabric must degrade gracefully, not
    collapse, when clients outrun it.  Here "protected" deployments run
    the full flow-control stack — bounded batch queues with the
    ``reject`` policy, primary admission control (busy-NACKs), and
    adaptive clients (AIMD pending windows + exponential-backoff
    retransmission).  The claim this figure checks: protected goodput at
    10× offered load stays within ~20% of the sweep's peak while p99 of
    *completed* requests stays bounded, because excess demand is turned
    away at the door (NACKed) instead of queued; the unprotected
    contrast keeps goodput too (closed-loop clients self-limit) but its
    p99 grows with every queued client.
    """
    figure = FigureResult(
        "overload", "graceful degradation under overload", "offered load (x)"
    )
    multipliers = (0.5, 1.0, 2.0, 4.0, 10.0)
    base_clients = 48  # ~saturation for this 4-replica, batch-8 deployment

    def overload_config(clients: int, protocol: str, m: int, protected: bool):
        config = base_config(
            protocol=protocol,
            num_primaries=m,
            num_replicas=4,
            num_clients=clients,
            client_groups=4,
            batch_size=8,
            batch_threads=1,
            execute_threads=1,
            ycsb_records=1_000,
            warmup=millis(40),
            measure=millis(100),
            seed=11,
        )
        if not protected:
            return config
        return config.with_options(
            queue_policy="reject",
            batch_queue_capacity=64,
            # per-lane budget: m concurrent primaries admit m x 12 slots
            admission_max_inflight=12 * m,
            client_retransmit=millis(4),
            client_window_initial=4,
        )

    figure.meta.update(
        {
            "base_clients": base_clients,
            "multipliers": list(multipliers),
            "queue_policy": "reject",
            "batch_queue_capacity": 64,
            "admission_max_inflight_per_lane": 12,
            "client_retransmit_ns": millis(4),
            "client_window_initial": 4,
        }
    )

    variants = (
        ("PBFT protected", "pbft", 1, True),
        ("RCC m=2 protected", "rcc", 2, True),
        ("PBFT unprotected", "pbft", 1, False),
    )
    for label, protocol, m, protected in variants:
        series = Series(label)
        for mult in multipliers:
            clients = int(base_clients * mult)
            result = run_config(overload_config(clients, protocol, m, protected))
            series.points.append(
                _point(
                    mult,
                    result,
                    busy_nacks=float(result.busy_nacks_sent),
                    requests_shed=float(result.requests_shed),
                    admission_rejected=float(result.admission_rejected),
                )
            )
        figure.series.append(series)

    for label in ("PBFT protected", "RCC m=2 protected"):
        series = figure.get(label)
        throughputs = series.throughputs()
        retained = throughputs[-1] / max(1.0, max(throughputs))
        figure.note(f"{label}: goodput at 10x = {retained * 100:.0f}% of peak")
    protected_p99 = figure.get("PBFT protected").points[-1].extra["p99_latency_s"]
    raw_p99 = figure.get("PBFT unprotected").points[-1].extra["p99_latency_s"]
    figure.note(
        f"p99 at 10x: protected {protected_p99 * 1e3:.2f}ms vs "
        f"unprotected {raw_p99 * 1e3:.2f}ms — rejection keeps queues "
        "short; back-pressure alone lets wait times grow with clients"
    )
    return figure
