"""Result containers and paper-style text tables for the bench harness."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List


def format_stage_latency(stage_latency: Dict[str, Dict[str, float]]) -> str:
    """Render a per-stage latency breakdown (``ExperimentResult.stage_latency``)
    as a text table — the "where did the p99 go" view.

    Latency between consecutive stamped pipeline hand-offs is attributed
    to the later stage; ``total`` is submit → reply.  Returns "" when no
    spans were collected (observability disabled or no completions).
    """
    if not stage_latency:
        return ""
    lines = ["-- stage latency (ms) --"]
    lines.append(f"{'stage':<10} {'count':>9} {'mean':>9} {'p50':>9} {'p99':>9}")
    for stage, stats in stage_latency.items():
        lines.append(
            f"{stage:<10} {int(stats['count']):>9}"
            f" {stats['mean_s'] * 1e3:>9.3f}"
            f" {stats['p50_s'] * 1e3:>9.3f}"
            f" {stats['p99_s'] * 1e3:>9.3f}"
        )
    return "\n".join(lines)


@dataclass
class SeriesPoint:
    """One (x, y) measurement of a figure's series."""

    x: object
    throughput_txns_per_s: float
    latency_s: float
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class Series:
    """One line of a figure (e.g. "PBFT 2B 1E")."""

    name: str
    points: List[SeriesPoint] = field(default_factory=list)

    def throughputs(self) -> List[float]:
        return [point.throughput_txns_per_s for point in self.points]

    def latencies(self) -> List[float]:
        return [point.latency_s for point in self.points]

    def xs(self) -> List[object]:
        return [point.x for point in self.points]


@dataclass
class FigureResult:
    """All series regenerating one figure, plus shape notes."""

    figure_id: str
    title: str
    x_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: free-form run metadata (config knobs, scale) carried into the JSON
    #: export so a ``BENCH_<id>.json`` is self-describing
    meta: Dict[str, object] = field(default_factory=dict)

    def get(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"no series named {name!r} in {self.figure_id}")

    def note(self, text: str) -> None:
        self.notes.append(text)

    # ------------------------------------------------------------------
    def format_table(self) -> str:
        """Render throughput and latency tables like the paper's plots."""
        lines = [f"== {self.figure_id}: {self.title} =="]
        xs = self.series[0].xs() if self.series else []
        header = f"{self.x_label:>14} " + " ".join(
            f"{series.name:>22}" for series in self.series
        )
        lines.append("-- throughput (txns/s) --")
        lines.append(header)
        for i, x in enumerate(xs):
            row = f"{str(x):>14} "
            for series in self.series:
                value = (
                    series.points[i].throughput_txns_per_s
                    if i < len(series.points)
                    else float("nan")
                )
                row += f" {value / 1e3:>20.1f}K"
            lines.append(row)
        lines.append("-- latency (s) --")
        lines.append(header)
        for i, x in enumerate(xs):
            row = f"{str(x):>14} "
            for series in self.series:
                value = (
                    series.points[i].latency_s
                    if i < len(series.points)
                    else float("nan")
                )
                row += f" {value:>21.4f}"
            lines.append(row)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console output
        print(self.format_table())

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A machine-readable mirror of :meth:`format_table`: every series
        point with its throughput, mean latency and extras (the ``_point``
        helper stashes p99 latency and ops/s there)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "meta": dict(self.meta),
            "notes": list(self.notes),
            "series": [
                {
                    "name": series.name,
                    "points": [
                        {
                            "x": point.x,
                            "throughput_txns_per_s": point.throughput_txns_per_s,
                            "latency_s": point.latency_s,
                            "extra": dict(point.extra),
                        }
                        for point in series.points
                    ],
                }
                for series in self.series
            ],
        }


def write_figure_json(figure: FigureResult, path: str) -> str:
    """Persist ``figure`` as JSON (the ``BENCH_<figure_id>.json`` export
    the bench harness drops at the repo root).  Returns ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(figure.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
