"""Full-system tests for the PoE extension protocol."""

import pytest

from repro.core import ResilientDBSystem


@pytest.fixture
def poe_config(small_config):
    return small_config.with_options(protocol="poe")


def test_end_to_end_progress(poe_config):
    system = ResilientDBSystem(poe_config)
    result = system.run()
    assert result.completed_requests > 100
    assert system.validate_safety() > 10


def test_clients_complete_on_commit_quorum(poe_config):
    """PoE clients need 2f+1 matching speculative responses, not 3f+1."""
    system = ResilientDBSystem(poe_config)
    result = system.run()
    assert result.fast_path_completions == result.completed_requests
    assert result.slow_path_completions == 0


def test_one_crash_does_not_collapse(poe_config):
    healthy = ResilientDBSystem(poe_config).run()
    crashed_system = ResilientDBSystem(poe_config)
    crashed_system.crash_replicas(1)
    degraded = crashed_system.run()
    # unlike Zyzzyva, no timeout path: throughput stays in family
    assert degraded.throughput_txns_per_s > 0.8 * healthy.throughput_txns_per_s
    assert degraded.latency_mean_s < 2 * healthy.latency_mean_s


def test_blocks_synthesise_quorum_certificates(poe_config):
    system = ResilientDBSystem(poe_config)
    system.run()
    primary = system.replicas["r0"]
    primary.chain.validate()
    head = primary.chain.head()
    assert len(head.commit_certificate) >= system.quorum.commit_quorum
