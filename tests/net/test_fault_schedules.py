"""Declarative time-based fault healing: recover_at and heal_link_at."""

from repro.net.faults import FaultPlan
from repro.sim.rng import DeterministicRNG


def test_recover_at_heals_scheduled_crash():
    plan = FaultPlan()
    plan.crash_at("r1", 100)
    plan.recover_at("r1", 500)
    assert not plan.is_crashed("r1", 50)
    assert plan.is_crashed("r1", 100)
    assert plan.is_crashed("r1", 499)
    assert not plan.is_crashed("r1", 500)
    assert not plan.is_crashed("r1", 10_000)


def test_recover_at_heals_immediate_crash():
    plan = FaultPlan()
    plan.crash("r2")
    plan.recover_at("r2", 300)
    assert plan.is_crashed("r2", 299)
    assert not plan.is_crashed("r2", 300)


def test_crashed_nodes_excludes_healed():
    plan = FaultPlan()
    plan.crash("r1")
    plan.crash_at("r2", 100)
    plan.recover_at("r1", 200)
    assert plan.crashed_nodes(150) == {"r1", "r2"}
    assert plan.crashed_nodes(250) == {"r2"}


def test_recover_clears_the_schedule_too():
    plan = FaultPlan()
    plan.crash("r1")
    plan.recover_at("r1", 500)
    plan.recover("r1")
    plan.crash("r1")
    # the old recover_at deadline must not resurrect this new crash
    assert plan.is_crashed("r1", 600)


def test_heal_link_at_stops_dropping_from_deadline():
    plan = FaultPlan(rng=DeterministicRNG(1))
    plan.drop_link("r0", "r1", probability=1.0)
    plan.heal_link_at("r0", "r1", 1_000)
    assert not plan.should_deliver("r0", "r1", 999)
    assert plan.should_deliver("r0", "r1", 1_000)
    assert plan.should_deliver("r0", "r1", 5_000)
    # the reverse direction was never faulted
    assert plan.should_deliver("r1", "r0", 0)


def test_heal_link_clears_scheduled_heal():
    plan = FaultPlan(rng=DeterministicRNG(1))
    plan.drop_link("r0", "r1", probability=1.0)
    plan.heal_link_at("r0", "r1", 1_000)
    plan.heal_link("r0", "r1")
    # a fresh fault on the same link is not affected by the stale deadline
    plan.drop_link("r0", "r1", probability=1.0)
    assert not plan.should_deliver("r0", "r1", 2_000)


def test_healed_link_preserves_rng_draw_pattern():
    """The heal zeroes the probability *before* any draw, so a healed
    plan makes exactly the same rng draws as one with no deadline —
    scenario determinism does not depend on heal timing."""
    healed = FaultPlan(rng=DeterministicRNG(9))
    plain = FaultPlan(rng=DeterministicRNG(9))
    for plan in (healed, plain):
        plan.drop_link("r0", "r1", probability=0.5)
    healed.heal_link_at("r0", "r1", 50)
    outcomes = []
    for now in range(0, 100, 10):
        healed_delivery = healed.should_deliver("r0", "r1", now)
        outcomes.append((now, healed_delivery, plain.should_deliver("r0", "r1", now)))
    # after the deadline the healed link always delivers
    assert all(delivered for now, delivered, _ in outcomes if now >= 50)
    # before it, both plans saw identical draws and agree exactly
    for now, healed_delivery, plain_delivery in outcomes:
        if now < 50:
            assert healed_delivery == plain_delivery
