"""Byzantine-behaviour tests: safety must hold beyond simple crashes."""

import pytest

from repro.core import ResilientDBSystem
from repro.core.byzantine import make_policy
from repro.sim.clock import millis


@pytest.fixture
def byz_config(small_config):
    # n=7 tolerates f=2, giving policies room to misbehave
    return small_config.with_options(
        num_replicas=7, num_clients=48, batch_size=6
    )


def test_policy_factory():
    for name in ("silent", "conflicting-voter", "equivocating-primary"):
        assert make_policy(name).name == name
    assert make_policy("delayed", delay_ns=10).delay_ns == 10
    with pytest.raises(ValueError):
        make_policy("mind-control")


def test_silent_backups_within_f_are_harmless(byz_config):
    system = ResilientDBSystem(byz_config)
    system.make_byzantine("r5", "silent")
    system.make_byzantine("r6", "silent")
    result = system.run()
    assert result.completed_requests > 50
    system.validate_safety(faulty=("r5", "r6"))


def test_conflicting_voters_cannot_break_agreement(byz_config):
    system = ResilientDBSystem(byz_config)
    system.make_byzantine("r5", "conflicting-voter")
    system.make_byzantine("r6", "conflicting-voter")
    result = system.run()
    assert result.completed_requests > 50
    system.validate_safety(faulty=("r5", "r6"))
    # their poisoned votes were bucketed away, never counted
    honest = system.replicas["r1"].engine
    for slot in honest.slots.values():
        for digest, voters in slot.commits.items():
            if digest.startswith("byzantine:"):
                assert not slot.committed or slot.digest != digest


def test_equivocating_primary_cannot_split_executions(byz_config):
    """Half the backups get a proposal whose digest doesn't match the
    batch; they reject it at the re-hash check.  No two honest replicas
    may execute different batches at one sequence."""
    system = ResilientDBSystem(byz_config)
    system.make_byzantine("r0", "equivocating-primary")
    system.run()
    system.validate_safety(faulty=("r0",))
    # the forged proposals were detected somewhere
    rejected = sum(
        replica.invalid_messages
        for rid, replica in system.replicas.items()
        if rid != "r0"
    )
    assert rejected > 0


def test_delayed_replica_slows_nothing_down_fatally(byz_config):
    system = ResilientDBSystem(byz_config)
    system.make_byzantine("r6", "delayed", delay_ns=millis(5))
    result = system.run()
    assert result.completed_requests > 50
    system.validate_safety(faulty=("r6",))


def test_byzantine_replica_cannot_forge_other_identities(byz_config):
    """The keystore enforces key custody: a byzantine node signing as
    someone else produces tokens that fail verification."""
    system = ResilientDBSystem(byz_config.with_options(real_auth_tokens=True))
    scheme = system.replica_scheme
    # r5 tries to forge a message from r1 to r2: it must MAC under the
    # (r1, r2) pair key, which custody denies it — the best it can do is
    # MAC under its own pair key, which r2 rejects for sender r1
    forged_token, _ = scheme.authenticate(b"evil", "r5", ["r2"])
    valid, _ = scheme.check(b"evil", forged_token, "r1", "r2")
    assert not valid
