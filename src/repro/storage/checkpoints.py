"""Checkpoint bookkeeping (§4.7).

A replica sends a ``Checkpoint`` message after executing every Δ requests;
when it has collected 2f+1 *identical* checkpoint messages from distinct
replicas for a sequence number, that checkpoint becomes **stable** and all
data before the *previous* stable checkpoint may be garbage-collected.

The store tracks per-sequence vote sets keyed by state digest (identical
means same sequence *and* same digest — a diverging replica's vote must not
count toward stability).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple


class CheckpointStore:
    """Collects checkpoint votes and reports stability / GC horizons."""

    def __init__(self, quorum_size: int, interval: int):
        if interval <= 0:
            raise ValueError(f"checkpoint interval must be > 0, got {interval}")
        self.quorum_size = quorum_size
        self.interval = interval
        #: (sequence, digest) -> set of voter ids
        self._votes: Dict[Tuple[int, str], Set[str]] = {}
        self.stable_sequence: int = 0
        #: digest the current stable checkpoint was attested with (None
        #: until the first checkpoint stabilises) — the fuzzer's
        #: checkpoint-consistency oracle compares these across replicas
        self.stable_digest: Optional[str] = None
        self._previous_stable: int = 0

    def is_checkpoint_sequence(self, sequence: int) -> bool:
        """True when a replica should emit a checkpoint after ``sequence``."""
        return sequence > 0 and sequence % self.interval == 0

    def record_vote(self, sequence: int, digest: str, voter: str) -> bool:
        """Record one replica's checkpoint message.

        Returns True when this vote makes the checkpoint newly stable.
        """
        if sequence <= self.stable_sequence:
            return False
        voters = self._votes.setdefault((sequence, digest), set())
        voters.add(voter)
        if len(voters) >= self.quorum_size:
            self._previous_stable = self.stable_sequence
            self.stable_sequence = sequence
            self.stable_digest = digest
            # every vote set at or below the new stable horizon is moot
            self._votes = {
                key: value for key, value in self._votes.items() if key[0] > sequence
            }
            return True
        return False

    def gc_horizon(self) -> int:
        """Sequence number before which requests/messages/blocks may be
        discarded — "clears all the data before the previous checkpoint"."""
        return self._previous_stable

    def votes_for(self, sequence: int, digest: str) -> int:
        return len(self._votes.get((sequence, digest), ()))

    def pending_checkpoints(self) -> int:
        return len(self._votes)
