"""Tests for the overload-protection primitives (repro.flow)."""
