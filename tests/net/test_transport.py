"""Tests for the NIC-level transport and fault injection."""

import pytest

from repro.net import FaultPlan, Message, Network, Topology, WIRE_HEADER_BYTES
from repro.sim import Simulator, micros, seconds


class Ping(Message):
    kind = "ping"

    __slots__ = ("body_bytes",)

    def __init__(self, sender, body_bytes=0):
        super().__init__(sender)
        self.body_bytes = body_bytes

    def payload_bytes(self):
        return self.body_bytes


def make_network(sim, **topo_kwargs):
    network = Network(sim, topology=Topology(**topo_kwargs))
    a = network.register("a")
    b = network.register("b")
    return network, a, b


def drain_one(sim, endpoint, collected):
    def loop():
        message = yield endpoint.inbox.get()
        collected.append((sim.now, message))

    sim.spawn(loop())


def test_message_delivered_with_latency_and_serialisation():
    sim = Simulator()
    network, _a, b = make_network(
        sim, one_way_latency_ns=micros(100), nic_gbps=10.0
    )
    got = []
    drain_one(sim, b, got)
    message = Ping("a", body_bytes=10_000)
    network.send("a", "b", message)
    sim.run(until=seconds(1))
    assert len(got) == 1
    arrival, delivered = got[0]
    assert delivered is message
    size = message.wire_bytes()
    tx_ns = Topology(nic_gbps=10.0).transmission_ns(size)
    # TX serialisation + propagation + RX serialisation
    assert arrival == 2 * tx_ns + micros(100)


def test_wire_size_accounting():
    message = Ping("a", body_bytes=500)
    assert message.wire_bytes() == WIRE_HEADER_BYTES + 500
    # auth adds the per-receiver token size
    from repro.crypto import Ed25519Scheme, KeyStore

    store = KeyStore(0)
    store.register("a")
    scheme = Ed25519Scheme(store)
    message.auth, _ = scheme.authenticate(b"x", "a", ["b"])
    assert message.wire_bytes() == WIRE_HEADER_BYTES + 500 + 64


def test_nic_serialises_back_to_back_sends():
    """Two large messages from one endpoint share its TX NIC, so the second
    arrives one serialisation time after the first."""
    sim = Simulator()
    network, _a, b = make_network(sim, one_way_latency_ns=0, nic_gbps=1.0)
    arrivals = []

    def drain():
        while True:
            yield b.inbox.get()
            arrivals.append(sim.now)

    sim.spawn(drain())
    first = Ping("a", body_bytes=100_000)
    second = Ping("a", body_bytes=100_000)
    network.send("a", "b", first)
    network.send("a", "b", second)
    sim.run(until=seconds(1))
    tx_ns = Topology(nic_gbps=1.0).transmission_ns(first.wire_bytes())
    assert arrivals == [2 * tx_ns, 3 * tx_ns]


def test_broadcast_excludes_sender():
    sim = Simulator()
    network = Network(sim, topology=Topology(one_way_latency_ns=0))
    endpoints = {name: network.register(name) for name in ("a", "b", "c")}
    received = {name: [] for name in endpoints}

    def drain(name):
        while True:
            message = yield endpoints[name].inbox.get()
            received[name].append(message)

    for name in endpoints:
        sim.spawn(drain(name))
    network.broadcast("a", list(endpoints), Ping("a"))
    sim.run(until=seconds(1))
    assert len(received["b"]) == 1 and len(received["c"]) == 1
    assert received["a"] == []


def test_duplicate_registration_rejected():
    sim = Simulator()
    network = Network(sim)
    network.register("a")
    with pytest.raises(ValueError):
        network.register("a")


def test_send_to_unknown_endpoint_rejected():
    sim = Simulator()
    network = Network(sim)
    network.register("a")
    with pytest.raises(KeyError):
        network.send("a", "ghost", Ping("a"))


def test_crashed_receiver_drops_message():
    sim = Simulator()
    network, _a, b = make_network(sim, one_way_latency_ns=0)
    network.faults.crash("b")
    got = []
    drain_one(sim, b, got)
    network.send("a", "b", Ping("a"))
    sim.run(until=seconds(1))
    assert got == []
    assert network.dropped_messages == 1


def test_crashed_sender_sends_nothing():
    sim = Simulator()
    network, _a, b = make_network(sim, one_way_latency_ns=0)
    network.faults.crash("a")
    got = []
    drain_one(sim, b, got)
    network.send("a", "b", Ping("a"))
    sim.run(until=seconds(1))
    assert got == []


def test_scheduled_crash_takes_effect_at_time():
    sim = Simulator()
    network, _a, b = make_network(sim, one_way_latency_ns=0)
    network.faults.crash_at("b", micros(500))
    arrivals = []

    def drain():
        while True:
            yield b.inbox.get()
            arrivals.append(sim.now)

    sim.spawn(drain())
    network.send("a", "b", Ping("a"))
    sim.schedule(micros(600), network.send, "a", "b", Ping("a"))
    sim.run(until=seconds(1))
    assert len(arrivals) == 1


def test_partition_blocks_both_directions():
    sim = Simulator()
    network, a, b = make_network(sim, one_way_latency_ns=0)
    network.faults.partition(["a"], ["b"])
    got_a, got_b = [], []
    drain_one(sim, a, got_a)
    drain_one(sim, b, got_b)
    network.send("a", "b", Ping("a"))
    network.send("b", "a", Ping("b"))
    sim.run(until=seconds(1))
    assert got_a == [] and got_b == []
    network.faults.heal_partitions()
    network.send("a", "b", Ping("a"))
    sim.run(until=seconds(2))
    assert len(got_b) == 1


def test_lossy_link_drops_deterministically():
    sim = Simulator(seed=3)
    network, _a, b = make_network(sim, one_way_latency_ns=0)
    network.faults.drop_link("a", "b", probability=0.5)
    count = []

    def drain():
        while True:
            yield b.inbox.get()
            count.append(1)

    sim.spawn(drain())
    for _ in range(100):
        network.send("a", "b", Ping("a"))
    sim.run(until=seconds(1))
    assert 20 < len(count) < 80  # roughly half, seeded so stable
    assert network.dropped_messages == 100 - len(count)


def test_fault_plan_validation():
    plan = FaultPlan()
    with pytest.raises(ValueError):
        plan.drop_link("a", "b", probability=1.5)


def test_network_statistics():
    sim = Simulator()
    network, _a, b = make_network(sim, one_way_latency_ns=0)
    got = []
    drain_one(sim, b, got)
    message = Ping("a", body_bytes=1000)
    network.send("a", "b", message)
    sim.run(until=seconds(1))
    assert network.messages_sent == 1
    assert network.bytes_sent == message.wire_bytes()
