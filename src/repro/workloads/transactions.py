"""Client transactions and their operations.

Mirrors ResilientDB's transaction base class (§4.8): a transaction carries
its identifier, the issuing client, and its data — here a list of typed
read/write operations plus optional padding payload (the Fig. 12 experiment
grows requests by attaching a set of 8-byte integers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class OpType(str, enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Operation:
    """One key-value access inside a transaction."""

    op_type: OpType
    key: str
    value: Optional[str] = None

    def __post_init__(self):
        if self.op_type is OpType.WRITE and self.value is None:
            raise ValueError(f"write to {self.key!r} requires a value")

    def wire_bytes(self) -> int:
        key_bytes = len(self.key)
        value_bytes = len(self.value) if self.value is not None else 0
        return 1 + key_bytes + value_bytes  # 1 = op tag


@dataclass
class Transaction:
    """A client transaction: one or more operations plus padding payload.

    ``txn_id`` is assigned by the primary's input-thread when the request is
    sequenced (§4.3); until then it is None.
    """

    client_id: str
    ops: Tuple[Operation, ...]
    #: extra integers-as-payload, in bytes (Fig. 12's message-size knob)
    padding_bytes: int = 0
    txn_id: Optional[int] = None
    #: simulation time the client issued it (for end-to-end latency)
    submitted_at: Optional[int] = None

    def __post_init__(self):
        if not self.ops:
            raise ValueError("transaction must contain at least one operation")
        if self.padding_bytes < 0:
            raise ValueError(f"padding_bytes must be >= 0, got {self.padding_bytes}")

    @property
    def op_count(self) -> int:
        return len(self.ops)

    def wire_bytes(self) -> int:
        """Serialized size: fixed header + operations + padding."""
        return 16 + sum(op.wire_bytes() for op in self.ops) + self.padding_bytes

    def canonical_bytes(self) -> bytes:
        """Stable byte encoding used for digests and request signatures."""
        parts = [self.client_id]
        for op in self.ops:
            parts.append(f"{op.op_type.value}:{op.key}:{op.value or ''}")
        parts.append(str(self.padding_bytes))
        return "|".join(parts).encode("utf-8")
