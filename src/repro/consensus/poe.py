"""Proof-of-Execution (PoE) — the paper's own follow-up protocol [21].

§2.1: "PoE tries to eliminate the limitations of Zyzzyva by providing a
two-phase, speculative consensus protocol but requires one phase of
quadratic communication among all the replicas."

Model implemented here (simplified from the PoE paper, Gupta et al. 2019):

1. The primary broadcasts ``Propose`` (sequence, digest, batch).
2. Every replica that accepts the proposal broadcasts ``Support`` —
   the single quadratic phase.
3. A replica holding 2f+1 matching ``Support`` messages *speculatively
   executes* the batch and answers the client; clients complete on 2f+1
   matching responses (not 3f+1 — this is what removes Zyzzyva's
   fragility under backup failures).

Like the Zyzzyva engine, view change is out of scope: the experiments
only fail backups, which PoE rides out without any protocol action.

This is an *extension* beyond the paper's evaluation; the bench
``benchmarks/test_ext_poe.py`` places PoE between PBFT and Zyzzyva on
message cost and shows it keeps Zyzzyva-class throughput under the
failures that collapse Zyzzyva.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.consensus.base import Action, Broadcast, ExecuteReady, QuorumConfig
from repro.consensus.messages import ClientRequest
from repro.net.message import Message


class Propose(Message):
    """PoE phase 1: primary → backups."""

    kind = "poe-propose"

    __slots__ = ("view", "sequence", "digest", "request")

    def __init__(self, sender, view, sequence, digest, request):
        super().__init__(sender)
        self.view = view
        self.sequence = sequence
        self.digest = digest
        self.request = request

    def payload_bytes(self) -> int:
        return 48 + self.request.payload_bytes()

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.view, self.sequence, self.digest)


class Support(Message):
    """PoE phase 2: all → all (the quadratic phase)."""

    kind = "poe-support"

    __slots__ = ("view", "sequence", "digest")

    def __init__(self, sender, view, sequence, digest):
        super().__init__(sender)
        self.view = view
        self.sequence = sequence
        self.digest = digest

    def payload_bytes(self) -> int:
        return 48 + 32

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.view, self.sequence, self.digest)


@dataclass
class _PoeSlot:
    propose: object = None
    digest: object = None
    supports: Dict[str, Set[str]] = field(default_factory=dict)
    sent_support: bool = False
    executed: bool = False


class PoeReplica:
    """One replica's PoE engine.  I/O-free; returns actions."""

    def __init__(
        self,
        replica_id: str,
        replica_ids: Tuple[str, ...],
        quorum: QuorumConfig,
        sequence_window: int = 100_000,
    ):
        if replica_id not in replica_ids:
            raise ValueError(f"{replica_id!r} not in replica set")
        if len(replica_ids) != quorum.n:
            raise ValueError(
                f"replica set size {len(replica_ids)} != quorum n {quorum.n}"
            )
        self.replica_id = replica_id
        self.replica_ids = tuple(replica_ids)
        self.quorum = quorum
        self.sequence_window = sequence_window
        self.view = 0
        self.next_order_sequence = 1
        self.slots: Dict[int, _PoeSlot] = {}
        self.stable_sequence = 0
        self.rejected_messages = 0

    def primary_of(self, view: int) -> str:
        return self.replica_ids[view % len(self.replica_ids)]

    @property
    def is_primary(self) -> bool:
        return self.primary_of(self.view) == self.replica_id

    def _slot(self, sequence: int) -> _PoeSlot:
        slot = self.slots.get(sequence)
        if slot is None:
            slot = _PoeSlot()
            self.slots[sequence] = slot
        return slot

    # ------------------------------------------------------------------
    # primary side
    # ------------------------------------------------------------------
    def make_propose(
        self, digest: str, request: ClientRequest
    ) -> Tuple[Propose, List[Action]]:
        if not self.is_primary:
            raise RuntimeError(f"{self.replica_id} is not primary of view {self.view}")
        sequence = self.next_order_sequence
        self.next_order_sequence += 1
        message = Propose(self.replica_id, self.view, sequence, digest, request)
        slot = self._slot(sequence)
        slot.propose = message
        slot.digest = digest
        slot.sent_support = True
        support = Support(self.replica_id, self.view, sequence, digest)
        actions: List[Action] = [Broadcast(message), Broadcast(support)]
        self._record_support(slot, self.replica_id, digest)
        actions.extend(self._maybe_execute(sequence, slot))
        return message, actions

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def handle_propose(self, message: Propose) -> List[Action]:
        if message.view != self.view or message.sender != self.primary_of(self.view):
            self.rejected_messages += 1
            return []
        if not (
            self.stable_sequence
            < message.sequence
            <= self.stable_sequence + self.sequence_window
        ):
            self.rejected_messages += 1
            return []
        slot = self._slot(message.sequence)
        if slot.propose is not None and slot.digest != message.digest:
            self.rejected_messages += 1  # equivocation: first wins
            return []
        if slot.sent_support:
            return []
        slot.propose = message
        slot.digest = message.digest
        slot.sent_support = True
        support = Support(self.replica_id, self.view, message.sequence, message.digest)
        actions: List[Action] = [Broadcast(support)]
        self._record_support(slot, self.replica_id, message.digest)
        actions.extend(self._maybe_execute(message.sequence, slot))
        return actions

    def handle_support(self, message: Support) -> List[Action]:
        if message.view != self.view:
            self.rejected_messages += 1
            return []
        if not (
            self.stable_sequence
            < message.sequence
            <= self.stable_sequence + self.sequence_window
        ):
            self.rejected_messages += 1
            return []
        slot = self._slot(message.sequence)
        self._record_support(slot, message.sender, message.digest)
        return self._maybe_execute(message.sequence, slot)

    def _record_support(self, slot: _PoeSlot, sender: str, digest: str) -> None:
        slot.supports.setdefault(digest, set()).add(sender)

    def _maybe_execute(self, sequence: int, slot: _PoeSlot) -> List[Action]:
        if slot.executed or slot.propose is None or slot.digest is None:
            return []
        voters = slot.supports.get(slot.digest, ())
        if len(voters) < self.quorum.certificate_quorum:
            return []
        slot.executed = True
        return [
            ExecuteReady(
                sequence=sequence,
                view=self.view,
                request=slot.propose.request,
                speculative=True,  # execution precedes any commit proof
            )
        ]

    # ------------------------------------------------------------------
    def advance_stable(self, sequence: int) -> int:
        if sequence <= self.stable_sequence:
            return 0
        self.stable_sequence = sequence
        old = [s for s in self.slots if s <= sequence]
        for s in old:
            del self.slots[s]
        return len(old)
