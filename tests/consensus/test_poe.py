"""Tests for the PoE (Proof-of-Execution) extension protocol."""

import pytest

from repro.consensus import QuorumConfig
from repro.consensus.base import ExecuteReady
from repro.consensus.poe import PoeReplica, Propose, Support
from repro.consensus.safety import check_execution_consistency
from repro.sim.rng import DeterministicRNG

from tests.consensus.harness import Cluster, make_request


def test_single_request_executes_everywhere():
    cluster = Cluster(4, protocol="poe")
    request = make_request("client0", 1)
    cluster.propose(request)
    cluster.run()
    for rid in cluster.ids:
        assert cluster.executed[rid] == [(1, request.digest)]


def test_two_phases_only():
    """PoE per request: n-1 proposes + n broadcasts of support = one
    quadratic phase, strictly between Zyzzyva's linear and PBFT's two
    quadratic phases."""
    poe = Cluster(4, protocol="poe")
    poe.propose(make_request("client0", 1))
    poe.run()
    pbft = Cluster(4, protocol="pbft")
    pbft.propose(make_request("client0", 1))
    pbft.run()
    zyz = Cluster(4, protocol="zyzzyva")
    zyz.propose(make_request("client0", 1))
    zyz.run()

    def delivered(cluster):
        return sum(
            replica.rejected_messages for replica in cluster.replicas.values()
        )

    # count wire messages instead: re-run with counting
    def wire_count(protocol):
        cluster = Cluster(4, protocol=protocol)
        count = [0]
        original = cluster.deliver_one

        def counting():
            if cluster.wire:
                count[0] += 1
            return original()

        cluster.deliver_one = counting
        cluster.propose(make_request("client0", 1))
        cluster.run()
        return count[0]

    zyz_messages = wire_count("zyzzyva")
    poe_messages = wire_count("poe")
    pbft_messages = wire_count("pbft")
    assert zyz_messages < poe_messages < pbft_messages


def test_ordered_execution_many_requests():
    cluster = Cluster(7, protocol="poe")
    requests = [make_request("client0", i) for i in range(1, 9)]
    for request in requests:
        cluster.propose(request)
    cluster.run()
    check_execution_consistency(cluster.executed)
    assert all(len(log) == 8 for log in cluster.executed.values())


def test_reordered_delivery_safe():
    rng = DeterministicRNG(9)
    for _ in range(5):
        cluster = Cluster(4, protocol="poe")
        for i in range(1, 6):
            cluster.propose(make_request("client0", i))
        while cluster.wire:
            cluster.shuffle_wire(rng)
            cluster.deliver_one()
        check_execution_consistency(cluster.executed)


def test_progress_with_f_crashes():
    cluster = Cluster(4, protocol="poe")
    cluster.crashed.add("r3")
    request = make_request("client0", 1)
    cluster.propose(request)
    cluster.run()
    for rid in ("r0", "r1", "r2"):
        assert cluster.executed[rid] == [(1, request.digest)]


def test_support_quorum_is_commit_sized():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PoeReplica("r1", ids, quorum)
    request = make_request("client0", 1)
    replica.handle_propose(Propose("r0", 0, 1, request.digest, request))
    # own support + r0's would be 2; need 2f+1 = 3 for execution
    actions = replica.handle_support(Support("r0", 0, 1, request.digest))
    assert not any(isinstance(action, ExecuteReady) for action in actions)
    actions = replica.handle_support(Support("r2", 0, 1, request.digest))
    assert any(isinstance(action, ExecuteReady) for action in actions)


def test_equivocation_rejected():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PoeReplica("r1", ids, quorum)
    request_a = make_request("client0", 1)
    request_b = make_request("client0", 2)
    replica.handle_propose(Propose("r0", 0, 1, request_a.digest, request_a))
    replica.handle_propose(Propose("r0", 0, 1, request_b.digest, request_b))
    assert replica.slots[1].digest == request_a.digest
    assert replica.rejected_messages == 1


def test_forged_proposal_rejected():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PoeReplica("r1", ids, quorum)
    request = make_request("client0", 1)
    forged = Propose("r2", 0, 1, request.digest, request)  # r2 is no primary
    assert replica.handle_propose(forged) == []


def test_conflicting_supports_bucketed_by_digest():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PoeReplica("r1", ids, quorum)
    request = make_request("client0", 1)
    replica.handle_propose(Propose("r0", 0, 1, request.digest, request))
    replica.handle_support(Support("r2", 0, 1, "evil"))
    replica.handle_support(Support("r3", 0, 1, "evil"))
    assert not replica.slots[1].executed


def test_non_primary_cannot_propose():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    backup = PoeReplica("r1", ids, quorum)
    with pytest.raises(RuntimeError):
        backup.make_propose("d", make_request("c", 1))


def test_advance_stable_gc():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    primary = PoeReplica("r0", ids, quorum)
    for i in range(1, 6):
        primary.make_propose(f"d{i}", make_request("c", i))
    assert primary.advance_stable(3) == 3
    assert sorted(primary.slots) == [4, 5]
