"""Pytest root configuration.

Ensures the in-tree ``src/`` layout is importable even when the package has
not been installed (the offline environment lacks ``wheel``, which breaks
``pip install -e .``; ``python setup.py develop`` works, but tests should
not depend on it having been run).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
