"""Randomised scenario generation, deterministically derived from a seed.

``generate_scenario(master_seed, index)`` is a pure function: the same
``(master_seed, index)`` always yields the same :class:`Scenario` (the
draws come from a :class:`~repro.sim.rng.DeterministicRNG` forked on that
pair), so every run of a campaign is replayable from the two integers the
CLI prints — no corpus file required.

Generated scenarios always stay inside the BFT contract: the number of
replicas that crash or turn byzantine never exceeds ``f``, partitions
never isolate more than ``f`` replicas, and primary-only policies
(equivocation) land on the view-0 primary.  Scenarios that *violate* the
contract on purpose (the oracle self-tests) are hand-built instead — see
``BUG_REGISTRY`` in :mod:`repro.fuzz.runner`.
"""

from __future__ import annotations

from typing import List

from repro.core.byzantine import POLICY_NAMES
from repro.fuzz.scenario import (
    BACKUP_POLICIES,
    PRIMARY_POLICIES,
    FaultEvent,
    Scenario,
)
from repro.sim.rng import DeterministicRNG

#: knob pools — kept small so a 50-run campaign finishes in well under two
#: minutes while still crossing protocol × faults × byzantine × config
_PROTOCOLS = ("pbft", "zyzzyva", "poe", "rcc")
_REPLICA_COUNTS = (4, 4, 4, 5, 7)  # weighted toward fast 4-replica runs
_CLIENT_COUNTS = (12, 16, 24, 32)
_GROUP_COUNTS = (1, 2, 4)
_BATCH_SIZES = (2, 4, 8, 16)
_CHECKPOINT_TXNS = (24, 48, 96, 10_000)  # 10K = effectively "never"

assert set(PRIMARY_POLICIES) | set(BACKUP_POLICIES) <= set(POLICY_NAMES)


def _round(value: float) -> float:
    return round(value, 3)


def _overload_knobs(rng: DeterministicRNG, batch_size: int) -> dict:
    """Draw one overload-protection configuration.

    Lossy policies are only ever applied where the protocol tolerates
    loss: the batch queue (client requests, recovered by NACK + client
    retransmission) and admission control.  Protocol queues (work,
    checkpoint, output, inbox) stay unbounded — shedding quorum votes
    would manufacture liveness failures the oracles would then blame on
    the protection machinery.
    """
    policy = rng.choice(("reject", "reject", "shed_oldest", "block"))
    knobs = {
        "queue_policy": policy,
        "batch_queue_capacity": rng.choice((2, 4, 8)) * max(batch_size, 2),
        "admission_max_inflight": rng.choice((4, 8, 16, None)),
        "admission_max_per_client": rng.choice((2, 4, None)),
        # always give clients a retransmit base so shed requests are
        # recovered inside the fuzz window
        "client_retransmit_ms": rng.choice((3.0, 5.0, 8.0)),
        "client_window_initial": rng.choice((1, 2, 4, None)),
    }
    return knobs


def generate_scenario(master_seed: int, index: int) -> Scenario:
    """Deterministically draw scenario ``index`` of campaign ``master_seed``."""
    rng = DeterministicRNG(master_seed).fork(f"scenario-{index}")

    protocol = rng.choice(_PROTOCOLS)
    num_replicas = rng.choice(_REPLICA_COUNTS)
    f = (num_replicas - 1) // 3
    num_clients = rng.choice(_CLIENT_COUNTS)
    client_groups = min(rng.choice(_GROUP_COUNTS), num_clients)
    batch_size = rng.choice(_BATCH_SIZES)
    # bound the consensus-round count so campaign runs stay ~1s each:
    # small batches and wide clusters multiply rounds/messages per txn
    if num_replicas >= 7:
        batch_size = max(batch_size, 8)
    if batch_size <= 4:
        num_clients = min(num_clients, 16)
    warmup_ms = 25.0
    measure_ms = _round(rng.uniform(30.0, 50.0))

    # rcc: multiple concurrent instances, each led by one of r0..r{m-1};
    # a short view-change timeout lets lane view changes fire inside the
    # fuzz window (the 5s default would dwarf it)
    num_primaries = 1
    view_change_timeout_ms = None
    if protocol == "rcc":
        num_primaries = min(rng.choice((2, 2, 3)), num_replicas)
        view_change_timeout_ms = _round(rng.uniform(8.0, 15.0))
    primaries = [f"r{i}" for i in range(num_primaries)]
    backups = [f"r{i}" for i in range(num_primaries, num_replicas)]

    events: List[FaultEvent] = []
    budget = f

    # -- primary misbehaviour -------------------------------------------
    # under rcc the victim is a *specific instance's* primary, so the
    # campaign exercises per-lane containment, not just r0
    if budget and rng.random() < 0.30:
        budget -= 1
        events.append(
            FaultEvent(
                kind="byzantine",
                at_ms=0.0,
                target=rng.choice(primaries),
                policy=rng.choice(PRIMARY_POLICIES),
            )
        )

    # -- rcc: crash one instance primary mid-run --------------------------
    # the canonical multi-primary failure: lane k's primary dies, lane k
    # view-changes, the other lanes keep committing and the merge resumes
    if protocol == "rcc" and budget and rng.random() < 0.25:
        victim = rng.choice(primaries)
        if not any(event.target == victim for event in events):
            budget -= 1
            events.append(
                FaultEvent(
                    kind="crash",
                    at_ms=_round(
                        rng.uniform(warmup_ms * 0.5, warmup_ms + measure_ms * 0.4)
                    ),
                    target=victim,
                )
            )

    # -- backup crashes and byzantine policies ---------------------------
    victim_count = rng.randint(0, budget)
    victims = rng.sample(backups, victim_count) if victim_count else []
    for victim in victims:
        at_ms = _round(rng.uniform(warmup_ms * 0.4, warmup_ms + measure_ms * 0.7))
        if rng.random() < 0.55:
            events.append(FaultEvent(kind="crash", at_ms=at_ms, target=victim))
            if rng.random() < 0.35:
                recover_at = _round(at_ms + rng.uniform(5.0, 20.0))
                events.append(
                    FaultEvent(kind="recover", at_ms=recover_at, target=victim)
                )
        else:
            policy = rng.choice(BACKUP_POLICIES)
            events.append(
                FaultEvent(
                    kind="byzantine",
                    at_ms=_round(rng.uniform(0.0, at_ms)),
                    target=victim,
                    policy=policy,
                    delay_ms=(
                        _round(rng.uniform(0.5, 4.0))
                        if policy == "delayed"
                        else 0.0
                    ),
                )
            )

    # -- link-level faults (gate the liveness oracle off) ----------------
    if rng.random() < 0.25:
        for _ in range(rng.randint(1, 2)):
            src, dst = rng.sample([f"r{i}" for i in range(num_replicas)], 2)
            at_ms = _round(rng.uniform(warmup_ms * 0.5, warmup_ms + measure_ms * 0.5))
            events.append(
                FaultEvent(
                    kind="drop-link",
                    at_ms=at_ms,
                    src=src,
                    dst=dst,
                    probability=_round(rng.uniform(0.01, 0.08)),
                    until_ms=_round(at_ms + rng.uniform(5.0, 25.0)),
                )
            )
    if f >= 1 and rng.random() < 0.15:
        isolated = tuple(rng.sample(backups, rng.randint(1, f)))
        at_ms = _round(rng.uniform(warmup_ms, warmup_ms + measure_ms * 0.4))
        events.append(
            FaultEvent(
                kind="partition",
                at_ms=at_ms,
                group=isolated,
                until_ms=_round(at_ms + rng.uniform(5.0, 20.0)),
            )
        )

    ops_per_txn = rng.choice((1, 1, 1, 2))
    checkpoint_txns = rng.choice(_CHECKPOINT_TXNS)
    zyzzyva_timeout_ms = _round(rng.uniform(5.0, 12.0))

    # -- overload protection (ISSUE 5): a slice of the mixed campaign ----
    # runs with bounded queues + admission + client backoff, so the flow
    # invariants are fuzzed against crashes/byzantine/link faults too
    overload: dict = {}
    if rng.random() < 0.18:
        overload = _overload_knobs(rng, batch_size)

    return Scenario(
        seed=master_seed * 1_000_003 + index,
        protocol=protocol,
        num_primaries=num_primaries,
        view_change_timeout_ms=view_change_timeout_ms,
        num_replicas=num_replicas,
        num_clients=num_clients,
        client_groups=client_groups,
        batch_size=batch_size,
        ops_per_txn=ops_per_txn,
        checkpoint_txns=checkpoint_txns,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        zyzzyva_timeout_ms=zyzzyva_timeout_ms,
        events=tuple(events),
        label=f"run-{index}",
        **overload,
    )


def generate_overload_scenario(master_seed: int, index: int) -> Scenario:
    """Deterministically draw an *overload-focused* scenario: a small
    cluster driven well past capacity with protection always on.

    Compared to :func:`generate_scenario` this pins the deployment shape
    (n=4, heavy client load, small batches) and always applies
    :func:`_overload_knobs`, so a campaign of these concentrates on the
    flow-control machinery: shed/NACK bookkeeping, AIMD windows,
    retransmission backoff and the never-shed-a-sequenced-request
    invariant — with occasional crash faults layered on top.
    """
    rng = DeterministicRNG(master_seed).fork(f"overload-{index}")

    protocol = rng.choice(("pbft", "pbft", "rcc", "poe", "zyzzyva"))
    num_replicas = 4
    num_clients = rng.choice((48, 64, 96))
    client_groups = rng.choice((2, 4))
    batch_size = rng.choice((4, 8))
    num_primaries = 1
    view_change_timeout_ms = None
    if protocol == "rcc":
        num_primaries = rng.choice((2, 3))
        view_change_timeout_ms = _round(rng.uniform(8.0, 15.0))
    warmup_ms = 25.0
    measure_ms = _round(rng.uniform(35.0, 45.0))

    events: List[FaultEvent] = []
    # a minority of runs also crash one backup: overload plus a real
    # fault is where release/backlog accounting is easiest to get wrong
    if rng.random() < 0.25:
        victim = f"r{rng.randint(num_primaries, num_replicas - 1)}"
        events.append(
            FaultEvent(
                kind="crash",
                at_ms=_round(rng.uniform(warmup_ms, warmup_ms + measure_ms * 0.5)),
                target=victim,
            )
        )

    ops_per_txn = 1
    checkpoint_txns = rng.choice((48, 96))
    zyzzyva_timeout_ms = _round(rng.uniform(5.0, 12.0))
    overload = _overload_knobs(rng, batch_size)

    return Scenario(
        seed=master_seed * 1_000_003 + index,
        protocol=protocol,
        num_primaries=num_primaries,
        view_change_timeout_ms=view_change_timeout_ms,
        num_replicas=num_replicas,
        num_clients=num_clients,
        client_groups=client_groups,
        batch_size=batch_size,
        ops_per_txn=ops_per_txn,
        checkpoint_txns=checkpoint_txns,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        zyzzyva_timeout_ms=zyzzyva_timeout_ms,
        events=tuple(events),
        label=f"overload-{index}",
        **overload,
    )
