"""Extension: PoE (Proof-of-Execution) vs PBFT and Zyzzyva.

The paper's §2.1 positions the authors' follow-up protocol: "PoE tries to
eliminate the limitations of Zyzzyva by providing a two-phase, speculative
consensus protocol but requires one phase of quadratic communication."

This bench verifies that positioning on the ResilientDB pipeline:
Zyzzyva-class throughput when healthy, PBFT-class robustness when a
backup crashes (no 3f+1 fast-path fragility).
"""

from repro.bench.report import FigureResult, Series, SeriesPoint
from repro.bench.runner import base_config, run_config
from repro.sim.clock import millis, seconds


def _run_protocols(crash_backups: int):
    results = {}
    for protocol in ("pbft", "poe", "zyzzyva"):
        config = base_config(protocol=protocol)
        if protocol == "zyzzyva" and crash_backups:
            config = config.with_options(
                zyzzyva_client_timeout=seconds(2),
                warmup=millis(200),
                measure=seconds(2.4),
            )
        results[protocol] = run_config(config, crash_backups=crash_backups)
    return results


def ext_poe_comparison() -> FigureResult:
    figure = FigureResult(
        "ext-poe", "PoE vs PBFT vs Zyzzyva, healthy and under one crash",
        "failures",
    )
    for protocol in ("pbft", "poe", "zyzzyva"):
        figure.series.append(Series(protocol.upper()))
    for crashes in (0, 1):
        results = _run_protocols(crashes)
        for protocol, result in results.items():
            figure.get(protocol.upper()).points.append(
                SeriesPoint(
                    x=crashes,
                    throughput_txns_per_s=result.throughput_txns_per_s,
                    latency_s=result.latency_mean_s,
                )
            )
    return figure


def test_ext_poe(benchmark, record_figure):
    figure = benchmark.pedantic(ext_poe_comparison, rounds=1, iterations=1)
    record_figure(figure)
    poe = dict(zip(figure.get("POE").xs(), figure.get("POE").throughputs()))
    pbft = dict(zip(figure.get("PBFT").xs(), figure.get("PBFT").throughputs()))
    zyzzyva = dict(
        zip(figure.get("ZYZZYVA").xs(), figure.get("ZYZZYVA").throughputs())
    )
    # healthy: PoE keeps pace with both
    assert poe[0] > 0.9 * max(pbft[0], zyzzyva[0])
    # one crash: PoE stays PBFT-robust while Zyzzyva collapses
    assert poe[1] > 0.85 * poe[0]
    assert zyzzyva[1] < zyzzyva[0] / 10
    figure.note(
        "PoE keeps Zyzzyva-class speed with PBFT-class failure robustness"
    )
