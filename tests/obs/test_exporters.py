"""Golden-output tests for the exporters (repro.obs.exporters)."""

import json
import re

from repro.obs.exporters import (
    chrome_trace,
    metrics_json,
    prometheus_text,
    sampler_csv,
)
from repro.obs.sampler import PipelineSampler, TimeSeries
from repro.obs.spans import SpanRecorder
from repro.sim.kernel import Simulator
from repro.sim.metrics import MetricsRegistry
from repro.sim.tracing import Tracer

#: one Prometheus exposition line: comment, blank, or `name{labels} value`
_PROM_LINE = re.compile(
    r"^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+|)$"
)


def small_registry():
    sim = Simulator()
    registry = MetricsRegistry(sim)
    registry.counter("txns_completed").increment(42)
    histogram = registry.histogram("request_latency")
    for latency in (1_000, 2_000, 3_000, 4_000):
        histogram.record(latency)
    registry.busy_tracker("nic").add(5_000)
    sim.now = 1_000_000
    return registry


# ----------------------------------------------------------------------
# Prometheus
# ----------------------------------------------------------------------
def test_prometheus_golden():
    text = prometheus_text(small_registry())
    assert text == (
        "# TYPE repro_txns_completed_total counter\n"
        "repro_txns_completed_total 42\n"
        "# TYPE repro_request_latency_seconds summary\n"
        'repro_request_latency_seconds{quantile="0.5"} 0.000002000\n'
        'repro_request_latency_seconds{quantile="0.9"} 0.000004000\n'
        'repro_request_latency_seconds{quantile="0.99"} 0.000004000\n'
        "repro_request_latency_seconds_sum 0.000010000\n"
        "repro_request_latency_seconds_count 4\n"
        "# TYPE repro_busy_nic_ns gauge\n"
        "repro_busy_nic_ns 5000\n"
        "# TYPE repro_measurement_window_seconds gauge\n"
        "repro_measurement_window_seconds 0.001000000\n"
    )


def test_prometheus_every_line_is_valid():
    sampler = PipelineSampler.__new__(PipelineSampler)
    sampler.series = {"r0.batch-q.depth": TimeSeries("r0.batch-q.depth")}
    sampler.series["r0.batch-q.depth"].append(10, 3.0)
    spans = SpanRecorder(enabled=True)
    spans.begin(("c", 1), 0)
    spans.stamp(("c", 1), "input", 5)
    spans.finish(("c", 1), 9)
    text = prometheus_text(small_registry(), sampler=sampler, spans=spans)
    for line in text.splitlines():
        assert _PROM_LINE.match(line), f"invalid Prometheus line: {line!r}"
    assert 'repro_sample{series="r0.batch-q.depth"} 3.0' in text
    assert "repro_stage_input_seconds_count 1" in text


def test_prometheus_sanitises_names():
    registry = small_registry()
    registry.counter("weird-name.with/chars").increment()
    text = prometheus_text(registry)
    assert "repro_weird_name_with_chars_total 1" in text


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def test_metrics_json_structure():
    spans = SpanRecorder(enabled=True)
    spans.begin(("c", 1), 0)
    spans.finish(("c", 1), 100)
    doc = json.loads(metrics_json(small_registry(), spans=spans))
    assert doc["counters"] == {"txns_completed": 42}
    assert doc["window_ns"] == 1_000_000
    latency = doc["histograms"]["request_latency"]
    assert latency["count"] == 4
    assert latency["p50_s"] == 2e-6
    assert latency["max_s"] == 4e-6
    assert doc["spans_completed"] == 1
    assert "total" in doc["stage_latency"]
    # stable output: serialising twice is byte-identical
    assert metrics_json(small_registry()) == metrics_json(small_registry())


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def test_sampler_csv_golden():
    sampler = PipelineSampler.__new__(PipelineSampler)
    series_a = TimeSeries("a.depth")
    series_a.append(10, 1.0)
    series_a.append(20, 2.5)
    series_b = TimeSeries("b.depth")
    series_b.append(10, 0.0)
    sampler.series = {"b.depth": series_b, "a.depth": series_a}
    assert sampler_csv(sampler) == (
        "time_ns,series,value\n"
        "10,a.depth,1\n"
        "10,b.depth,0\n"
        "20,a.depth,2.5\n"
    )


# ----------------------------------------------------------------------
# Chrome trace events (Perfetto)
# ----------------------------------------------------------------------
def test_chrome_trace_spans_and_tracer():
    spans = SpanRecorder(enabled=True, keep_finished=10)
    spans.begin(("client0", 3), 1_000)
    spans.stamp(("client0", 3), "input", 2_000)
    spans.stamp(("client0", 3), "execute", 5_000)
    spans.finish(("client0", 3), 6_000)
    tracer = Tracer()
    tracer.record(4_000, "r0", "checkpoint", "stable at 10")

    doc = json.loads(chrome_trace(spans=spans, tracer=tracer))
    assert doc["displayTimeUnit"] == "ns"
    events = doc["traceEvents"]
    assert isinstance(events, list)

    meta = [e for e in events if e["ph"] == "M"]
    assert {e["args"]["name"] for e in meta} == {"client0", "r0"}

    slices = [e for e in events if e["ph"] == "X"]
    assert [e["name"] for e in slices] == ["input", "execute", "reply"]
    input_slice = slices[0]
    assert input_slice["ts"] == 1.0  # 1_000 ns -> 1 us
    assert input_slice["dur"] == 1.0
    assert input_slice["tid"] == 3
    # stages tile the span with no gaps
    assert slices[1]["ts"] == input_slice["ts"] + input_slice["dur"]

    instants = [e for e in events if e["ph"] == "i"]
    assert instants[0]["name"] == "checkpoint"
    assert instants[0]["args"]["detail"] == "stable at 10"
    assert instants[0]["s"] == "t"

    # every event carries the fields Perfetto's importer requires
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event)


def test_chrome_trace_empty_inputs():
    doc = json.loads(chrome_trace())
    assert doc["traceEvents"] == []
