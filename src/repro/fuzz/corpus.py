"""Failure artifacts: self-contained JSON repros for failing scenarios.

Each artifact bundles the exact scenario (and its shrunk form, when the
campaign shrank it) with the violations the oracle bank reported, so a
failure found anywhere — a nightly CI run, a teammate's machine — replays
locally with::

    python -m repro fuzz --replay path/to/artifact.json

The loader also accepts a bare ``Scenario.to_json()`` document, so
hand-written scenarios replay through the same door.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.fuzz.scenario import Scenario

ARTIFACT_VERSION = 1


def save_artifact(outcome, directory: str, shrunk: Optional[Scenario] = None) -> str:
    """Write a failing outcome as a replayable JSON artifact; return path."""
    os.makedirs(directory, exist_ok=True)
    scenario = outcome.scenario
    name = scenario.label or f"seed-{scenario.seed}"
    path = os.path.join(directory, f"fuzz-{name}.json")
    payload = {
        "version": ARTIFACT_VERSION,
        "scenario": scenario.to_dict(),
        "violations": [
            {"oracle": violation.oracle, "message": violation.message}
            for violation in outcome.violations
        ],
        "completed_requests": outcome.completed_requests,
    }
    if shrunk is not None:
        payload["shrunk_scenario"] = shrunk.to_dict()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_scenario(path: str, prefer_shrunk: bool = True) -> Scenario:
    """Load a scenario from an artifact or a bare scenario JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if "scenario" in payload:  # artifact wrapper
        if prefer_shrunk and "shrunk_scenario" in payload:
            return Scenario.from_dict(payload["shrunk_scenario"])
        return Scenario.from_dict(payload["scenario"])
    return Scenario.from_dict(payload)
