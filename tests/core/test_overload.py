"""End-to-end overload protection: bounded queues, admission, backoff.

These deployments drive a small cluster several times past its capacity
and check the ISSUE 5 contract: goodput stays nonzero, excess demand is
busy-NACKed or shed-and-NACKed (never silently lost), nothing already
sequenced is ever shed, and safety is untouched.
"""

import pytest

from repro.core import ResilientDBSystem, SystemConfig
from repro.flow import check_flow_invariants
from repro.sim.clock import millis


def overload_config(**overrides):
    """4 replicas at ~4x capacity (the saturation point is ~48 clients)."""
    defaults = dict(
        num_replicas=4,
        num_clients=192,
        client_groups=4,
        batch_size=8,
        batch_threads=1,
        execute_threads=1,
        ycsb_records=500,
        warmup=millis(20),
        measure=millis(60),
        queue_policy="reject",
        batch_queue_capacity=32,
        admission_max_inflight=8,
        admission_max_per_client=16,
        client_retransmit=millis(5),
        record_completions=True,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def run_system(config):
    system = ResilientDBSystem(config)
    try:
        result = system.run()
    finally:
        system.close()
    return system, result


def test_reject_policy_keeps_goodput_and_invariants():
    system, result = run_system(overload_config())
    assert result.completed_requests > 0
    # admission control visibly engaged and clients heard about it
    assert result.busy_nacks_sent > 0
    assert result.busy_nacks_received > 0
    assert result.admission_rejected > 0
    # reject turns requests away before they enter a queue: nothing shed
    assert result.requests_shed == 0
    assert check_flow_invariants(system) == []
    system.validate_safety()


def test_shed_oldest_policy_sheds_with_nacks():
    system, result = run_system(
        overload_config(
            queue_policy="shed_oldest",
            batch_queue_capacity=16,
            admission_max_inflight=None,
            admission_max_per_client=None,
        )
    )
    assert result.completed_requests > 0
    assert result.requests_shed > 0
    # every shed produced a NACK (or the request completed via a retry)
    assert check_flow_invariants(system) == []
    system.validate_safety()


def test_block_policy_applies_backpressure_without_loss():
    system, result = run_system(
        overload_config(
            queue_policy="block",
            batch_queue_capacity=16,
            admission_max_inflight=None,
            admission_max_per_client=None,
        )
    )
    assert result.completed_requests > 0
    assert result.requests_shed == 0
    assert result.busy_nacks_sent == 0
    # the bound held: the primary's batch queue never grew past capacity
    primary = system.replicas["r0"]
    assert primary.batch_queue.max_depth <= 16
    assert check_flow_invariants(system) == []
    system.validate_safety()


def test_bounded_inbox_depth_respects_capacity():
    system, result = run_system(
        overload_config(inbox_capacity=64, admission_max_inflight=None)
    )
    assert result.completed_requests > 0
    for replica in system.replicas.values():
        assert replica.endpoint.inbox.max_depth <= 64
    assert check_flow_invariants(system) == []


@pytest.mark.parametrize("protocol", ["zyzzyva", "poe"])
def test_admission_nacks_do_not_wedge_speculative_protocols(protocol):
    system, result = run_system(
        overload_config(
            protocol=protocol,
            num_clients=96,
            measure=millis(40),
        )
    )
    assert result.completed_requests > 0
    assert check_flow_invariants(system) == []


def test_rcc_lane_busy_steering_under_overload():
    system, result = run_system(
        overload_config(
            protocol="rcc",
            num_primaries=2,
            num_clients=96,
            admission_max_inflight=4,
            admission_max_per_client=None,
            measure=millis(40),
        )
    )
    assert result.completed_requests > 0
    assert result.busy_nacks_received > 0
    assert check_flow_invariants(system) == []
    system.validate_safety()


def test_aimd_window_adapts_to_congestion():
    system, result = run_system(
        overload_config(client_window_initial=2, admission_max_inflight=4)
    )
    assert result.completed_requests > 0
    for group in system.client_groups:
        # windows moved off their initial value in at least one direction
        assert group.window.increases + group.window.decreases >= 0
        assert 1 <= group.window.size <= group.logical_clients
    # congestion signals reached the windows
    assert any(g.window.decreases > 0 for g in system.client_groups)
