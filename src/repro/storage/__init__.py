"""Storage layer: record stores, the blockchain ledger, buffer pools.

Covers three of the paper's design levers:

* **In-memory vs off-memory state** (§3, Fig. 14): an in-memory key-value
  store against a real SQLite-backed store whose access latency is charged
  to the simulated execute-thread (which busy-waits on it, as in §5.7).
* **Chain management** (§2.2, §4.6): an immutable ledger beginning at a
  genesis block, where each block is certified either by hashing its
  predecessor (traditional) or by embedding the 2f+1 commit signatures
  that consensus already produced (ResilientDB's cheaper choice).
* **Buffer pools** (§4.8): recycled message/transaction objects that avoid
  per-message allocation cost.
"""

from repro.storage.blockchain import Block, Blockchain, CertificationMode
from repro.storage.bufferpool import BufferPool
from repro.storage.checkpoints import CheckpointStore
from repro.storage.memstore import InMemoryKVStore
from repro.storage.sqlstore import SqliteKVStore
from repro.storage.base import KVStore, StorageCosts

__all__ = [
    "Block",
    "Blockchain",
    "BufferPool",
    "CertificationMode",
    "CheckpointStore",
    "InMemoryKVStore",
    "KVStore",
    "SqliteKVStore",
    "StorageCosts",
]
