"""Byzantine replica behaviours.

The paper's threat model (§2.1) is full byzantine failure — "some of which
could be byzantine" — but its experiments only exercise crashes (§5.10).
This module goes further: it wraps a replica's consensus engine with an
*adversary policy* that actively misbehaves, so the test suite can check
that safety (single common order, §4.5–4.6) survives behaviours crashes
never produce:

- ``EquivocatingPrimary`` — proposes different batches to different
  backups at the same sequence number.
- ``ConflictingVoter`` — votes (Prepare/Commit/Support) for a corrupted
  digest instead of the proposed one.
- ``SilentReplica`` — participates in nothing (fail-stop without the
  crash being visible to the transport).
- ``DelayedReplica`` — withholds every outgoing message for a fixed
  delay, stressing the out-of-order machinery.

Policies transform the *actions* an engine emits, so they compose with
any engine (PBFT, Zyzzyva, PoE).  The framework still prevents identity
forgery — a byzantine replica signs with its own keys (the crypto layer
enforces key custody), exactly the power model of the paper.
"""

from __future__ import annotations

from typing import List

from repro.consensus.base import Action, Broadcast, SendTo
from repro.consensus.messages import Commit, Prepare, PrePrepare


class AdversaryPolicy:
    """Base policy: pass actions through unchanged (honest)."""

    name = "honest"

    def transform(self, replica, actions: List[Action]) -> List[Action]:
        return actions


class SilentReplica(AdversaryPolicy):
    """Send nothing, ever.  Differs from a crash in that the node still
    receives and processes messages (it can lie later)."""

    name = "silent"

    def transform(self, replica, actions: List[Action]) -> List[Action]:
        return [
            action
            for action in actions
            if not isinstance(action, (Broadcast, SendTo))
        ]


class ConflictingVoter(AdversaryPolicy):
    """Replace the digest in every outgoing vote with a corrupted one.

    Honest replicas bucket votes by digest, so these votes land in a
    separate bucket and can never help the honest digest reach quorum —
    the behaviour the per-digest vote accounting exists to contain.
    """

    name = "conflicting-voter"

    def transform(self, replica, actions: List[Action]) -> List[Action]:
        transformed: List[Action] = []
        for action in actions:
            message = getattr(action, "message", None)
            if isinstance(message, (Prepare, Commit)):
                corrupted = type(message)(
                    message.sender,
                    message.view,
                    message.sequence,
                    "byzantine:" + (message.digest or ""),
                )
                if isinstance(action, Broadcast):
                    transformed.append(Broadcast(corrupted))
                else:
                    transformed.append(SendTo(action.dst, corrupted))
            else:
                transformed.append(action)
        return transformed


class EquivocatingPrimary(AdversaryPolicy):
    """As primary, send half the backups a different proposal.

    Converts each ``Broadcast(PrePrepare)`` into per-destination sends
    where the second half of the replica set receives a proposal whose
    digest does not match the batch — honest backups reject it when they
    re-hash the batch (§4.3's digest check), so at most one of the two
    proposals can ever prepare.
    """

    name = "equivocating-primary"

    def transform(self, replica, actions: List[Action]) -> List[Action]:
        transformed: List[Action] = []
        for action in actions:
            message = getattr(action, "message", None)
            if isinstance(action, Broadcast) and isinstance(message, PrePrepare):
                others = [
                    rid for rid in replica.system.replica_ids
                    if rid != replica.replica_id
                ]
                half = len(others) // 2
                for dst in others[:half]:
                    transformed.append(SendTo(dst, message))
                forged = PrePrepare(
                    message.sender,
                    message.view,
                    message.sequence,
                    "equivocation:" + message.digest,
                    message.request,
                )
                for dst in others[half:]:
                    transformed.append(SendTo(dst, forged))
            else:
                transformed.append(action)
        return transformed


class DelayedReplica(AdversaryPolicy):
    """Withhold every outgoing message for ``delay_ns`` before releasing
    it (violates timeliness, not content)."""

    name = "delayed"

    def __init__(self, delay_ns: int):
        self.delay_ns = delay_ns

    def transform(self, replica, actions: List[Action]) -> List[Action]:
        immediate: List[Action] = []
        for action in actions:
            if isinstance(action, (Broadcast, SendTo)):
                replica.sim.schedule(
                    self.delay_ns, self._release, replica, action
                )
            else:
                immediate.append(action)
        return immediate

    @staticmethod
    def _release(replica, action: Action) -> None:
        replica.sim.spawn(
            replica._dispatch(
                [action], f"{replica.replica_id}.worker", transformed=True
            ),
            name=f"{replica.replica_id}.delayed-release",
        )


_POLICIES = {
    "silent": SilentReplica,
    "conflicting-voter": ConflictingVoter,
    "equivocating-primary": EquivocatingPrimary,
}


def make_policy(name: str, **kwargs) -> AdversaryPolicy:
    """Factory: policy by name (``delayed`` takes ``delay_ns``)."""
    if name == "delayed":
        return DelayedReplica(kwargs.get("delay_ns", 0))
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown adversary policy {name!r}") from None
