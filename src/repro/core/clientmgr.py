"""Closed-loop clients (§5.1, §5.8).

The paper drives every experiment with up to 80K closed-loop clients: each
client keeps one request in flight and issues the next one the moment the
previous completes.  That model is what produces Fig. 15's signature — as
clients grow, throughput saturates while latency rises linearly (the extra
requests simply queue).

Simulating 80K coroutines would be wasteful; instead clients are grouped.
A :class:`ClientGroup` owns one network endpoint and manages
``clients_per_group`` *logical* clients as pending-request records.  Group
size changes nothing about offered load or completion logic — it only
coalesces endpoints.

Completion rules:

- **PBFT**: f+1 matching responses from distinct replicas.
- **Zyzzyva fast path**: 3f+1 responses matching on (view, sequence,
  result digest, history hash).
- **Zyzzyva slow path**: if the fast path misses the client's timer but
  ≥ 2f+1 responses match, the client sends a ``CommitCertificate`` to all
  replicas and completes on 2f+1 ``LocalCommit`` acks.  With even one
  crashed backup every request takes this path, which is the mechanism
  behind Fig. 17's collapse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.consensus.messages import ClientRequest, CommitCertificate
from repro.flow import AIMDWindow, RetransmitBackoff
from repro.sim.clock import millis
from repro.sim.events import Timer
from repro.workloads.ycsb import YCSBWorkload


@dataclass
class PendingRequest:
    """Book-keeping for one in-flight logical-client request."""

    submitted_at: int
    txn_count: int
    #: the request message, kept for retransmission
    request: Optional[ClientRequest] = None
    #: the armed retransmit / Zyzzyva timer, cancelled on completion
    timer: Optional[Timer] = None
    #: PBFT: responding replica -> result digest
    responses: Dict[str, str] = field(default_factory=dict)
    #: Zyzzyva: match key -> set of responders
    spec_matches: Dict[Tuple, Set[str]] = field(default_factory=dict)
    #: Zyzzyva slow path state
    certificate_sent: bool = False
    certificate_sequence: Optional[int] = None
    certificate_digest: Optional[str] = None
    local_commits: Set[str] = field(default_factory=set)
    retransmissions: int = 0
    #: busy-nacks received for this request (feeds the backoff exponent)
    nacks: int = 0


class ClientGroup:
    """A bundle of logical closed-loop clients sharing one endpoint."""

    def __init__(self, system, index: int, logical_clients: int):
        self.system = system
        self.config = system.config
        self.sim = system.sim
        self.name = f"client{index}"
        self.logical_clients = logical_clients
        self.endpoint = system.network.register(self.name)
        rng = system.rng.fork(self.name)
        self.workload = YCSBWorkload(
            rng,
            record_count=self.config.ycsb_records,
            ops_per_txn=self.config.ops_per_txn,
            padding_bytes=self.config.payload_padding_bytes,
            write_fraction=self.config.write_fraction,
            theta=self.config.ycsb_theta,
        )
        self.next_request_id = 0
        self.pending: Dict[int, PendingRequest] = {}
        # -- overload protection (repro.flow) ---------------------------
        config = self.config
        base_retry = config.client_retransmit or millis(5)
        self.backoff = RetransmitBackoff(
            base=base_retry,
            factor=config.retransmit_backoff_factor,
            cap=config.retransmit_backoff_max,
            jitter=config.retransmit_jitter,
            rng=system.rng.fork(f"{self.name}.flow"),
        )
        # the AIMD pending window; by default every logical client may
        # have its one request in flight (no windowing until congestion)
        initial = config.client_window_initial or logical_clients
        self.window = AIMDWindow(
            initial=max(1, min(initial, logical_clients)),
            min_size=min(config.client_window_min, max(1, logical_clients)),
            max_size=logical_clients,
            additive=config.client_window_additive,
            decrease=config.client_window_decrease,
            cooldown=base_retry,
        )
        #: logical clients whose next request awaits window room
        self._deferred = 0
        self.busy_nacks_received = 0
        #: RCC: lane primary -> time its Busy signal expires
        self._lane_busy_until: Dict[str, int] = {}
        self.completed_requests = 0
        self.fast_path_completions = 0
        self.slow_path_completions = 0
        #: (request_id, sequence, result digest) per completion, recorded
        #: when ``config.record_completions`` is on (the fuzzer's reply
        #: oracle matches these against replica executed logs)
        self.completion_log: List[Tuple[int, Optional[int], Optional[str]]] = []

    # ------------------------------------------------------------------
    def start(self, ramp_ns: int) -> None:
        """Spawn the response loop and stagger the initial window of
        requests over ``ramp_ns`` to avoid a synthetic thundering herd."""
        self.sim.spawn(self._inbox_loop(), name=f"{self.name}.inbox")
        for i in range(self.logical_clients):
            delay = (ramp_ns * i) // max(1, self.logical_clients)
            self.sim.schedule(delay, self._send_new_request)

    # ------------------------------------------------------------------
    # request issue
    # ------------------------------------------------------------------
    def _send_new_request(self) -> None:
        config = self.config
        if len(self.pending) >= self.window.size:
            # AIMD window closed: this logical client's next request is
            # deferred until completions reopen room
            self._deferred += 1
            return
        request_id = self.next_request_id
        self.next_request_id += 1
        txns = tuple(
            self.workload.next_transaction(self.name)
            for _ in range(config.client_batch_txns)
        )
        request = ClientRequest(self.name, request_id, txns)
        # multi-primary RCC steers each request to its lane's primary
        # (avoiding lanes that recently signalled Busy); single-primary
        # protocols contact the initial primary
        target = self._steer_target(request_id)
        if config.real_auth_tokens:
            request.auth, _ = self.system.client_scheme.authenticate(
                request.signable_bytes(), self.name, [target]
            )
        pending = PendingRequest(
            submitted_at=self.sim.now, txn_count=len(txns), request=request
        )
        self.pending[request_id] = pending
        spans = self.system.spans
        if spans.enabled:
            spans.begin((self.name, request_id), self.sim.now)
        self.system.network.send(self.name, target, request)
        if config.protocol == "zyzzyva":
            pending.timer = Timer(
                self.sim,
                config.zyzzyva_client_timeout,
                self._on_zyzzyva_timeout,
                request_id,
            )
        elif config.client_retransmit is not None:
            pending.timer = Timer(
                self.sim, self.backoff.delay(0), self._on_retransmit,
                request_id, request,
            )

    def _steer_target(self, request_id: int) -> str:
        target = self.system.steer_replica(self.name, request_id)
        if self.config.protocol != "rcc" or not self._lane_busy_until:
            return target
        now = self.sim.now
        if self._lane_busy_until.get(target, 0) <= now:
            return target
        # the steered lane is busy: rotate deterministically to the first
        # lane primary that has not recently said Busy
        primaries = self.system.lane_primaries()
        if target not in primaries:
            return target
        start = primaries.index(target)
        for offset in range(1, len(primaries)):
            candidate = primaries[(start + offset) % len(primaries)]
            if self._lane_busy_until.get(candidate, 0) <= now:
                return candidate
        return target

    def _release_deferred(self) -> None:
        while self._deferred and len(self.pending) < self.window.size:
            self._deferred -= 1
            self._send_new_request()

    def _on_retransmit(self, request_id: int, request: ClientRequest) -> None:
        pending = self.pending.get(request_id)
        if pending is None:
            return
        pending.retransmissions += 1
        replica_ids = self.system.replica_ids
        if self.config.protocol == "rcc":
            # the steer target may be a dead lane primary; fail over to a
            # single rotating fallback, which forwards to the lane's
            # *current* primary — broadcasting from every steered-away
            # client would square the message load under one crash
            target = self.system.steer_replica(self.name, request_id)
            index = replica_ids.index(target)
            fallback = replica_ids[
                (index + pending.retransmissions) % len(replica_ids)
            ]
            self.system.network.send(self.name, fallback, request)
        else:
            # PBFT clients that suspect the primary broadcast to all
            # replicas, which forward to the current primary
            for rid in replica_ids:
                self.system.network.send(self.name, rid, request)
        if self.config.client_retransmit is not None:
            # exponential backoff (with jitter) keeps retransmissions of a
            # long-unanswered request from compounding an overload
            pending.timer = Timer(
                self.sim,
                self.backoff.delay(pending.retransmissions + pending.nacks),
                self._on_retransmit, request_id, request,
            )

    # ------------------------------------------------------------------
    # overload signals (busy-nack)
    # ------------------------------------------------------------------
    def _handle_busy(self, message) -> None:
        """A replica refused or shed one of our requests: treat it as a
        congestion signal (shrink the window, back off, steer away)."""
        self.busy_nacks_received += 1
        self.window.on_congestion(self.sim.now)
        if self.config.protocol == "rcc":
            self._lane_busy_until[message.sender] = (
                self.sim.now + self.backoff.delay(1)
            )
        for request_id in message.request_ids:
            pending = self.pending.get(request_id)
            if pending is None:
                continue  # answered by another replica in the meantime
            pending.nacks += 1
            self._schedule_retry(request_id, pending)

    def _schedule_retry(self, request_id: int, pending: PendingRequest) -> None:
        if pending.timer is not None:
            pending.timer.cancel()
        delay = self.backoff.delay(pending.retransmissions + pending.nacks)
        if self.config.protocol == "zyzzyva":
            pending.timer = Timer(
                self.sim, delay, self._retry_zyzzyva, request_id
            )
        else:
            pending.timer = Timer(
                self.sim, delay, self._retry_after_nack, request_id
            )

    def _retry_after_nack(self, request_id: int) -> None:
        """Resend a NACKed request to its steer target only — the primary
        is alive, just busy; a suspect-the-primary broadcast would
        multiply exactly the load that caused the NACK."""
        pending = self.pending.get(request_id)
        if pending is None or pending.request is None:
            return
        pending.retransmissions += 1
        self.system.network.send(
            self.name, self._steer_target(request_id), pending.request
        )
        if self.config.client_retransmit is not None:
            pending.timer = Timer(
                self.sim,
                self.backoff.delay(pending.retransmissions + pending.nacks),
                self._on_retransmit, request_id, pending.request,
            )

    def _retry_zyzzyva(self, request_id: int) -> None:
        """NACKed Zyzzyva request: resend, then fall back to the normal
        client-timeout path (which owns certificate handling)."""
        pending = self.pending.get(request_id)
        if pending is None or pending.request is None:
            return
        pending.retransmissions += 1
        self.system.network.send(
            self.name, self._steer_target(request_id), pending.request
        )
        pending.timer = Timer(
            self.sim, self.config.zyzzyva_client_timeout,
            self._on_zyzzyva_timeout, request_id,
        )

    # ------------------------------------------------------------------
    # response handling
    # ------------------------------------------------------------------
    def _inbox_loop(self):
        quorum_needed = self.system.quorum.client_response_quorum
        # Zyzzyva's fast path needs every replica to answer identically;
        # PoE's speculative responses already carry a 2f+1 support quorum,
        # so 2f+1 matching responses complete the request
        if self.config.protocol == "zyzzyva":
            fast_needed = self.system.quorum.fast_path_quorum
        else:
            fast_needed = self.system.quorum.certificate_quorum
        commit_needed = self.system.quorum.certificate_quorum
        upper_bound = not self.config.consensus_enabled
        while True:
            message = yield self.endpoint.inbox.get()
            kind = message.kind
            if kind == "client-response":
                for request_id in message.request_ids:
                    pending = self.pending.get(request_id)
                    if pending is None:
                        continue
                    pending.responses[message.sender] = message.result_digest
                    matching = sum(
                        1
                        for digest in pending.responses.values()
                        if digest == message.result_digest
                    )
                    if upper_bound or matching >= quorum_needed:
                        self._complete(
                            request_id, fast=True,
                            sequence=message.sequence,
                            digest=message.result_digest,
                        )
            elif kind == "spec-response":
                key = (
                    message.view,
                    message.sequence,
                    message.result_digest,
                    message.history_hash,
                )
                for request_id in message.request_ids:
                    pending = self.pending.get(request_id)
                    if pending is None:
                        continue
                    responders = pending.spec_matches.setdefault(key, set())
                    responders.add(message.sender)
                    if len(responders) >= fast_needed:
                        self._complete(
                            request_id, fast=True,
                            sequence=message.sequence,
                            digest=message.result_digest,
                        )
            elif kind == "local-commit":
                # sequence-scoped ack; match any pending request awaiting
                # certificates for that sequence
                self._handle_local_commit(message, commit_needed)
            elif kind == "busy-nack":
                self._handle_busy(message)

    def _handle_local_commit(self, message, commit_needed: int) -> None:
        for request_id, pending in list(self.pending.items()):
            if (
                not pending.certificate_sent
                or pending.certificate_sequence != message.sequence
            ):
                continue
            pending.local_commits.add(message.sender)
            if len(pending.local_commits) >= commit_needed:
                self._complete(
                    request_id, fast=False,
                    sequence=pending.certificate_sequence,
                    digest=pending.certificate_digest,
                )

    # ------------------------------------------------------------------
    # Zyzzyva client timer (§5.10)
    # ------------------------------------------------------------------
    def _on_zyzzyva_timeout(self, request_id: int) -> None:
        pending = self.pending.get(request_id)
        if pending is None:
            return  # completed on the fast path; timer is moot
        commit_needed = self.system.quorum.certificate_quorum
        best_key, responders = None, set()
        for key, who in pending.spec_matches.items():
            if len(who) > len(responders):
                best_key, responders = key, who
        if best_key is not None and len(responders) >= commit_needed:
            if not pending.certificate_sent:
                pending.certificate_sent = True
                view, sequence, result_digest, _history = best_key
                pending.certificate_sequence = sequence
                pending.certificate_digest = result_digest
                certificate = CommitCertificate(
                    self.name, view, sequence, result_digest,
                    tuple(sorted(responders)[:commit_needed]),
                )
                if self.config.real_auth_tokens:
                    certificate.auth, _ = self.system.client_scheme.authenticate(
                        certificate.signable_bytes(), self.name,
                        list(self.system.replica_ids),
                    )
                for rid in self.system.replica_ids:
                    self.system.network.send(self.name, rid, certificate)
            # re-arm in case local-commits get lost too
            pending.timer = Timer(self.sim, self.config.zyzzyva_client_timeout,
                                  self._on_zyzzyva_timeout, request_id)
        else:
            # not even a certificate quorum: retransmit the whole request
            pending.retransmissions += 1
            pending.timer = Timer(self.sim, self.config.zyzzyva_client_timeout,
                                  self._on_zyzzyva_timeout, request_id)

    # ------------------------------------------------------------------
    def _complete(
        self,
        request_id: int,
        fast: bool,
        sequence: Optional[int] = None,
        digest: Optional[str] = None,
    ) -> None:
        pending = self.pending.pop(request_id, None)
        if pending is None:
            return
        # the request is answered: its retransmit (or Zyzzyva) timer must
        # never fire again
        if pending.timer is not None:
            pending.timer.cancel()
            pending.timer = None
        self.window.on_success()
        if self.config.record_completions:
            self.completion_log.append((request_id, sequence, digest))
        self.completed_requests += 1
        metrics = self.system.metrics
        if fast:
            self.fast_path_completions += 1
            metrics.counter("fast_path_completions").increment()
        else:
            self.slow_path_completions += 1
            metrics.counter("slow_path_completions").increment()
        latency = self.sim.now - pending.submitted_at
        metrics.histogram("request_latency").record(latency)
        spans = self.system.spans
        if spans.enabled:
            spans.finish((self.name, request_id), self.sim.now)
        metrics.counter("requests_completed").increment()
        metrics.counter("txns_completed").increment(pending.txn_count)
        metrics.counter("ops_completed").increment(
            pending.txn_count * self.config.ops_per_txn
        )
        # closed loop: this logical client immediately issues its next
        # one, plus any deferred clients the window now has room for
        self._send_new_request()
        self._release_deferred()
