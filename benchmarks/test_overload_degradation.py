"""Overload figure: graceful degradation with end-to-end flow control.

Sweeps offered load 0.5× → 10× of a small deployment's capacity for
protected PBFT, protected RCC (m=2) and an unprotected PBFT contrast.
"Protected" is the full ISSUE 5 stack: bounded batch queues (``reject``
policy), primary admission control busy-NACKing excess demand, and
adaptive clients (AIMD pending windows, exponential-backoff
retransmission).  The acceptance claim: goodput at 10× stays within 20%
of the sweep's peak for both protected protocols, and the p99 of
completed requests stays bounded because overload is turned away at the
door rather than absorbed into queues.
"""

from repro.bench import fig19_overload_degradation


def test_overload_degradation(benchmark, record_figure):
    figure = benchmark.pedantic(fig19_overload_degradation, rounds=1, iterations=1)
    record_figure(figure)

    for label in ("PBFT protected", "RCC m=2 protected"):
        series = figure.get(label)
        throughputs = series.throughputs()
        peak = max(throughputs)
        assert peak > 0
        # graceful degradation: driving the system 10x past capacity
        # costs at most 20% of peak goodput
        assert throughputs[-1] >= 0.8 * peak, (
            f"{label}: goodput at 10x load is {throughputs[-1]:.0f}, "
            f"less than 80% of peak {peak:.0f}"
        )

    protected = figure.get("PBFT protected")
    unprotected = figure.get("PBFT unprotected")
    # at 10x load the protection visibly engaged: excess demand was
    # busy-NACKed by admission control instead of being queued
    at_10x = protected.points[-1]
    assert at_10x.extra["busy_nacks"] > 0
    # a sequence-assigned request is never shed (reject policy turns
    # requests away before ordering; nothing already ordered is lost)
    assert at_10x.extra["requests_shed"] == 0

    # bounded p99: completed-request tail latency under 10x overload
    # stays within 3x of the protected sweep's 1x point, while the
    # unprotected tail grows with every queued client
    p99_at_1x = protected.points[1].extra["p99_latency_s"]
    p99_at_10x = at_10x.extra["p99_latency_s"]
    assert p99_at_10x <= 3.0 * p99_at_1x, (
        f"protected p99 grew {p99_at_10x / p99_at_1x:.1f}x from 1x to 10x"
    )
    assert unprotected.points[-1].extra["p99_latency_s"] > p99_at_10x
