"""Benchmark harness plumbing.

Each benchmark regenerates one figure of the paper, prints the series as a
text table, and persists it under ``benchmarks/results/`` so the output
survives pytest's capture.  Wall-clock time measured by pytest-benchmark
is the cost of the simulation itself, not a claim about the paper.
"""

import os
import sys

import pytest

_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# make the in-tree package importable exactly like the root conftest does
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture
def record_figure():
    """Returns a callback that prints and persists a FigureResult."""

    def _record(figure):
        from repro.bench.report import write_figure_json

        table = figure.format_table()
        print()
        print(table)
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        path = os.path.join(_RESULTS_DIR, f"{figure.figure_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(table + "\n")
        # machine-readable twin at the repo root (throughput, latency
        # percentiles in point extras, config in meta)
        write_figure_json(
            figure, os.path.join(_REPO_ROOT, f"BENCH_{figure.figure_id}.json")
        )
        return figure

    return _record
