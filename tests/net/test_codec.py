"""Tests for the binary wire codec and its agreement with the size model."""

import pytest

from repro.consensus.messages import (
    Checkpoint,
    ClientRequest,
    ClientResponse,
    Commit,
    Prepare,
    PrePrepare,
    RequestBatch,
)
from repro.net.codec import CodecError, decode, encode, encoded_size
from repro.workloads import Operation, OpType, Transaction


def make_request(request_id=1, txns=2, ops=1, padding=0):
    return ClientRequest(
        "client0",
        request_id,
        tuple(
            Transaction(
                "client0",
                tuple(
                    Operation(OpType.WRITE, f"key{t}-{o}", "value" * 4)
                    for o in range(ops)
                ),
                padding_bytes=padding,
            )
            for t in range(txns)
        ),
    )


def test_client_request_roundtrip():
    request = make_request(request_id=42, txns=3, ops=2)
    decoded = decode(encode(request))
    assert decoded.kind == "client-request"
    assert decoded.sender == "client0"
    assert decoded.request_id == 42
    assert len(decoded.txns) == 3
    assert decoded.txns[0].ops == request.txns[0].ops
    assert decoded.batch_bytes() == request.batch_bytes()


def test_preprepare_roundtrip():
    batch = RequestBatch((make_request(1), make_request(2)))
    batch.digest = "d" * 64
    message = PrePrepare("r0", 3, 99, batch.digest, batch)
    decoded = decode(encode(message))
    assert decoded.view == 3 and decoded.sequence == 99
    assert decoded.digest == "d" * 64
    assert len(decoded.request.requests) == 2
    assert decoded.request.batch_bytes() == batch.batch_bytes()


def test_vote_roundtrips():
    for cls, kind in ((Prepare, "prepare"), (Commit, "commit")):
        message = cls("r7", 1, 12345, "digest")
        decoded = decode(encode(message))
        assert decoded.kind == kind
        assert decoded.sender == "r7"
        assert (decoded.view, decoded.sequence, decoded.digest) == (1, 12345, "digest")


def test_response_roundtrip():
    message = ClientResponse("r0", (5, 6, 7), 0, 88, "result")
    decoded = decode(encode(message))
    assert decoded.request_ids == (5, 6, 7)
    assert decoded.result_digest == "result"


def test_checkpoint_roundtrip_and_bulk():
    message = Checkpoint("r0", 1000, "state", blocks_included=5)
    frame = encode(message)
    assert len(frame) >= 5 * message.block_bytes  # blocks ride literally
    decoded = decode(frame)
    assert decoded.sequence == 1000
    assert decoded.blocks_included == 5


def test_padding_rides_on_the_wire():
    plain = make_request(padding=0)
    padded = make_request(padding=1000)
    assert encoded_size(padded) - encoded_size(plain) >= 2 * 1000  # 2 txns


def test_size_model_tracks_encoded_size():
    """payload_bytes() must stay within 2x of the real encoding for the
    messages the experiments sweep."""
    batch = RequestBatch(tuple(make_request(i, txns=10) for i in range(10)))
    batch.digest = "d" * 64
    for message in (
        make_request(txns=10),
        PrePrepare("r0", 0, 1, batch.digest, batch),
        Prepare("r0", 0, 1, "d" * 64),
        Commit("r0", 0, 1, "d" * 64),
        ClientResponse("r0", tuple(range(10)), 0, 1, "d" * 64),
        Checkpoint("r0", 100, "d" * 64, blocks_included=10),
    ):
        real = encoded_size(message)
        modelled = message.wire_bytes()
        assert 0.4 <= modelled / real <= 2.5, (message.kind, modelled, real)


def test_bad_frames_rejected():
    with pytest.raises(CodecError):
        decode(b"XX garbage")
    request = make_request()
    frame = bytearray(encode(request))
    frame[2] = 99  # unsupported version
    with pytest.raises(CodecError):
        decode(bytes(frame))


def test_unsupported_kind_rejected():
    from repro.consensus.messages import ViewChange

    with pytest.raises(CodecError):
        encode(ViewChange("r0", 1, 0, ()))
