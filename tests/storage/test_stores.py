"""Tests for the in-memory and SQLite record stores."""

import pytest

from repro.storage import InMemoryKVStore, SqliteKVStore, StorageCosts


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    if request.param == "memory":
        yield InMemoryKVStore()
    else:
        sql_store = SqliteKVStore()
        yield sql_store
        sql_store.close()


def test_read_missing_returns_none(store):
    value, cost = store.read("nope")
    assert value is None
    assert cost > 0


def test_write_then_read(store):
    store.write("user1", "alice")
    value, _ = store.read("user1")
    assert value == "alice"


def test_overwrite(store):
    store.write("k", "v1")
    store.write("k", "v2")
    value, _ = store.read("k")
    assert value == "v2"
    assert store.size() == 1


def test_preload_and_size(store):
    store.preload({f"key{i}": f"value{i}" for i in range(100)})
    assert store.size() == 100
    value, _ = store.read("key42")
    assert value == "value42"


def test_access_counters(store):
    store.write("a", "1")
    store.read("a")
    store.read("b")
    assert store.writes == 1
    assert store.reads == 2


def test_cost_gap_reproduces_off_memory_penalty():
    """The Fig. 14 premise: SQLite access is orders of magnitude dearer."""
    costs = StorageCosts()
    memory = InMemoryKVStore(costs)
    sqlite = SqliteKVStore(costs)
    try:
        _, memory_read = memory.read("k")
        memory_write = memory.write("k", "v")
        _, sqlite_read = sqlite.read("k")
        sqlite_write = sqlite.write("k", "v")
    finally:
        sqlite.close()
    assert sqlite_read > 100 * memory_read
    assert sqlite_write > 100 * memory_write


def test_sqlite_persists_to_disk(tmp_path):
    path = str(tmp_path / "chain.db")
    store = SqliteKVStore(path=path)
    store.write("durable", "yes")
    store.close()
    reopened = SqliteKVStore(path=path)
    try:
        value, _ = reopened.read("durable")
        assert value == "yes"
    finally:
        reopened.close()
