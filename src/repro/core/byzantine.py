"""Byzantine replica behaviours.

The paper's threat model (§2.1) is full byzantine failure — "some of which
could be byzantine" — but its experiments only exercise crashes (§5.10).
This module goes further: it wraps a replica's consensus engine with an
*adversary policy* that actively misbehaves, so the test suite can check
that safety (single common order, §4.5–4.6) survives behaviours crashes
never produce:

- ``EquivocatingPrimary`` — proposes different batches to different
  backups at the same sequence number, with a forged digest that does not
  match the batch content (caught by the backups' re-hash check).
- ``TwoFacedPrimary`` — the sharper equivocation: both proposals carry
  *correctly computed* digests over different batches, so no local check
  can reject them — only quorum intersection keeps the cluster in one
  order.  This is the adversary the fuzzer pairs with deliberately
  weakened quorums to prove its oracles catch real divergence.
- ``ConflictingVoter`` — votes (Prepare/Commit/Support) for a corrupted
  digest instead of the proposed one, and corrupts the result digest of
  speculative responses (driving Zyzzyva clients off the fast path).
- ``SilentReplica`` — participates in nothing (fail-stop without the
  crash being visible to the transport).
- ``DelayedReplica`` — withholds every outgoing message for a fixed
  delay, stressing the out-of-order machinery.

Policies transform the *actions* an engine emits, so they compose with
any engine (PBFT, Zyzzyva, PoE).  The framework still prevents identity
forgery — a byzantine replica signs with its own keys (the crypto layer
enforces key custody), exactly the power model of the paper.
"""

from __future__ import annotations

from typing import List

from repro.consensus.base import Action, Broadcast, SendTo
from repro.consensus.messages import (
    Commit,
    OrderRequest,
    Prepare,
    PrePrepare,
    RequestBatch,
    SpecResponse,
)
from repro.consensus.poe import Propose, Support
from repro.crypto.hashing import digest_bytes

#: message types that carry a proposal (primary → backups) for each engine
_PROPOSAL_TYPES = (PrePrepare, OrderRequest, Propose)

#: vote messages whose digest a conflicting voter corrupts, per engine:
#: PBFT prepares/commits, PoE supports
_VOTE_TYPES = (Prepare, Commit, Support)


class AdversaryPolicy:
    """Base policy: pass actions through unchanged (honest)."""

    name = "honest"

    def transform(self, replica, actions: List[Action]) -> List[Action]:
        return actions


class SilentReplica(AdversaryPolicy):
    """Send nothing, ever.  Differs from a crash in that the node still
    receives and processes messages (it can lie later)."""

    name = "silent"

    def transform(self, replica, actions: List[Action]) -> List[Action]:
        return [
            action
            for action in actions
            if not isinstance(action, (Broadcast, SendTo))
        ]


class ConflictingVoter(AdversaryPolicy):
    """Replace the digest in every outgoing vote with a corrupted one.

    Honest replicas bucket votes by digest, so these votes land in a
    separate bucket and can never help the honest digest reach quorum —
    the behaviour the per-digest vote accounting exists to contain.
    Under Zyzzyva (where backups vote by answering clients directly) the
    corrupted ``SpecResponse`` digests deny the all-replica fast path and
    force clients onto the commit-certificate fallback.
    """

    name = "conflicting-voter"

    def transform(self, replica, actions: List[Action]) -> List[Action]:
        transformed: List[Action] = []
        for action in actions:
            message = getattr(action, "message", None)
            corrupted = None
            if isinstance(message, _VOTE_TYPES):
                corrupted = type(message)(
                    message.sender,
                    message.view,
                    message.sequence,
                    "byzantine:" + (message.digest or ""),
                )
            elif isinstance(message, SpecResponse):
                corrupted = SpecResponse(
                    message.sender,
                    message.request_ids,
                    message.view,
                    message.sequence,
                    "byzantine:" + message.result_digest,
                    message.history_hash,
                )
            if corrupted is None:
                transformed.append(action)
                continue
            # a vote only counts in its own consensus instance; keep the
            # lane id so corruption is not just silently rejected routing
            corrupted.instance = message.instance
            if isinstance(action, Broadcast):
                transformed.append(Broadcast(corrupted))
            else:
                transformed.append(SendTo(action.dst, corrupted))
        return transformed


def _forged_proposal(message, digest: str, batch):
    """A copy of a proposal message carrying a different batch/digest.

    Always a *fresh* object, even when digest/batch are unchanged: the
    transport signs messages by mutating ``auth`` in place, so aliasing
    one object across several ``SendTo`` actions would leave every
    destination but the last holding a MAC made out for someone else.
    """
    if isinstance(message, OrderRequest):
        forged = OrderRequest(
            message.sender, message.view, message.sequence, digest,
            message.history_hash, batch,
        )
    else:
        forged = type(message)(
            message.sender, message.view, message.sequence, digest, batch
        )
    forged.instance = message.instance  # equivocate within the same lane
    return forged


class EquivocatingPrimary(AdversaryPolicy):
    """As primary, send half the backups a different proposal.

    Converts each broadcast proposal (``PrePrepare`` / ``OrderRequest`` /
    ``Propose``) into per-destination sends where the second half of the
    replica set receives a proposal whose digest does not match the batch —
    honest backups reject it when they re-hash the batch (§4.3's digest
    check), so at most one of the two proposals can ever prepare.
    """

    name = "equivocating-primary"

    def transform(self, replica, actions: List[Action]) -> List[Action]:
        transformed: List[Action] = []
        for action in actions:
            message = getattr(action, "message", None)
            if isinstance(action, Broadcast) and isinstance(
                message, _PROPOSAL_TYPES
            ):
                others = [
                    rid for rid in replica.system.replica_ids
                    if rid != replica.replica_id
                ]
                half = len(others) // 2
                for dst in others[:half]:
                    transformed.append(
                        SendTo(
                            dst,
                            _forged_proposal(
                                message, message.digest, message.request
                            ),
                        )
                    )
                for dst in others[half:]:
                    transformed.append(
                        SendTo(
                            dst,
                            _forged_proposal(
                                message,
                                "equivocation:" + message.digest,
                                message.request,
                            ),
                        )
                    )
            else:
                transformed.append(action)
        return transformed


class TwoFacedPrimary(AdversaryPolicy):
    """As primary, propose two *different but internally valid* batches.

    Unlike :class:`EquivocatingPrimary`, both proposals carry digests that
    correctly hash their batch content (the second batch drops the last
    request), so the backups' re-hash check passes on both sides.  Against
    honest quorums this is still safe — two commit quorums intersect in a
    non-faulty replica, so at most one digest can commit per sequence —
    which makes this policy the canonical probe for quorum-arithmetic
    bugs: weaken the quorums and the cluster visibly splits.
    """

    name = "two-faced-primary"

    def transform(self, replica, actions: List[Action]) -> List[Action]:
        transformed: List[Action] = []
        for action in actions:
            message = getattr(action, "message", None)
            if (
                isinstance(action, Broadcast)
                and isinstance(message, _PROPOSAL_TYPES)
                and message.request.requests
            ):
                alt_batch = RequestBatch(message.request.requests[:-1])
                alt_batch.digest = digest_bytes(alt_batch.batch_bytes())
                others = [
                    rid for rid in replica.system.replica_ids
                    if rid != replica.replica_id
                ]
                half = len(others) // 2
                for dst in others[:half]:
                    transformed.append(
                        SendTo(
                            dst,
                            _forged_proposal(
                                message, message.digest, message.request
                            ),
                        )
                    )
                for dst in others[half:]:
                    transformed.append(
                        SendTo(
                            dst,
                            _forged_proposal(
                                message, alt_batch.digest, alt_batch
                            ),
                        )
                    )
            else:
                transformed.append(action)
        return transformed


class DelayedReplica(AdversaryPolicy):
    """Withhold every outgoing message for ``delay_ns`` before releasing
    it (violates timeliness, not content)."""

    name = "delayed"

    def __init__(self, delay_ns: int):
        self.delay_ns = delay_ns

    def transform(self, replica, actions: List[Action]) -> List[Action]:
        immediate: List[Action] = []
        for action in actions:
            if isinstance(action, (Broadcast, SendTo)):
                replica.sim.schedule(
                    self.delay_ns, self._release, replica, action
                )
            else:
                immediate.append(action)
        return immediate

    @staticmethod
    def _release(replica, action: Action) -> None:
        replica.sim.spawn(
            replica._dispatch(
                [action], f"{replica.replica_id}.worker", transformed=True
            ),
            name=f"{replica.replica_id}.delayed-release",
        )


_POLICIES = {
    "silent": SilentReplica,
    "conflicting-voter": ConflictingVoter,
    "equivocating-primary": EquivocatingPrimary,
    "two-faced-primary": TwoFacedPrimary,
}

#: every installable policy name ("delayed" takes a ``delay_ns`` kwarg);
#: the fuzz generator samples from this list
POLICY_NAMES = tuple(sorted(_POLICIES)) + ("delayed",)


def make_policy(name: str, **kwargs) -> AdversaryPolicy:
    """Factory: policy by name (``delayed`` takes ``delay_ns``)."""
    if name == "delayed":
        return DelayedReplica(kwargs.get("delay_ns", 0))
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown adversary policy {name!r}") from None
