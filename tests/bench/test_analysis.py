"""Tests for the analysis helpers."""

import pytest

from repro.bench.analysis import (
    compare_figures,
    crossover,
    degradation,
    peak,
    speedup,
    to_markdown,
)
from repro.bench.report import FigureResult, Series, SeriesPoint


def make_series(name, values, xs=None):
    series = Series(name)
    xs = xs or list(range(len(values)))
    series.points = [
        SeriesPoint(x=x, throughput_txns_per_s=value, latency_s=0.01)
        for x, value in zip(xs, values)
    ]
    return series


def test_speedup():
    series = make_series("s", [100.0, 250.0], xs=["a", "b"])
    assert speedup(series, "a", "b") == pytest.approx(2.5)
    with pytest.raises(KeyError):
        speedup(series, "a", "ghost")


def test_speedup_zero_baseline_rejected():
    series = make_series("s", [0.0, 10.0], xs=["a", "b"])
    with pytest.raises(ValueError):
        speedup(series, "a", "b")


def test_crossover():
    slow = make_series("slow", [100, 100, 100])
    rising = make_series("rising", [50, 100, 150])
    assert crossover(slow, rising) == 2
    flat = make_series("flat", [10, 10, 10])
    assert crossover(slow, flat) is None


def test_peak_and_degradation():
    series = make_series("s", [10.0, 80.0, 40.0])
    assert peak(series) == (1, 80.0)
    assert degradation(series) == pytest.approx(0.5)
    monotone = make_series("m", [10.0, 20.0, 30.0])
    assert degradation(monotone) == pytest.approx(0.0)


def test_to_markdown():
    figure = FigureResult(
        "figX", "a title", "replicas", [make_series("PBFT", [100_000.0])]
    )
    figure.note("hello")
    markdown = to_markdown(figure)
    assert "### figX" in markdown
    assert "| replicas | PBFT |" in markdown
    assert "100.0K" in markdown
    assert "> hello" in markdown


def test_compare_figures_flags_deviations():
    ours = FigureResult("f", "t", "x", [make_series("s", [100.0, 200.0])])
    reference = FigureResult("f", "t", "x", [make_series("s", [100.0, 100.0])])
    problems = compare_figures(ours, reference, tolerance=0.25)
    assert len(problems) == 1 and "2.00x" in problems[0]
    assert compare_figures(ours, ours) == []


def test_compare_figures_missing_series():
    ours = FigureResult("f", "t", "x", [make_series("new", [1.0])])
    reference = FigureResult("f", "t", "x", [make_series("old", [1.0])])
    problems = compare_figures(ours, reference)
    assert "missing" in problems[0]
