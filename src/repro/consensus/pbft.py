"""PBFT state machine (Castro & Liskov [7]), as described in §2.1.

Normal case, per slot (sequence number):

1. The primary assigns the next sequence number to a client request batch
   and broadcasts ``PrePrepare``.
2. Each backup validates it and broadcasts ``Prepare``; a replica holding
   the pre-prepare plus 2f distinct backup ``Prepare`` messages for the
   same (view, sequence, digest) is **prepared** and broadcasts ``Commit``.
3. A replica with 2f+1 distinct matching ``Commit`` messages is
   **committed** and hands the batch to the execution layer
   (:class:`~repro.consensus.base.ExecuteReady`).

Slots progress independently — this is the out-of-order consensus of §4.5;
PBFT never requires a request to reference the previous one, which is what
makes the parallelism safe.  Execution order is restored downstream.

View change: when a replica's timer for an uncommitted slot expires it
broadcasts ``ViewChange`` carrying its prepared certificates; the primary
of the next view assembles 2f+1 votes into ``NewView``, re-proposing every
prepared sequence so no committed request can be lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.consensus.base import (
    Action,
    Broadcast,
    CancelViewChangeTimer,
    EnterView,
    ExecuteReady,
    NotPrimaryError,
    ProposalError,
    QuorumConfig,
    StartViewChangeTimer,
    ViewChangeInProgress,
)
from repro.consensus.messages import (
    ClientRequest,
    Commit,
    NewView,
    Prepare,
    PrePrepare,
    ViewChange,
)


@dataclass
class Slot:
    """Consensus state for one sequence number."""

    preprepare: Optional[PrePrepare] = None
    digest: Optional[str] = None
    #: digest -> distinct prepare senders (keyed by digest so a byzantine
    #: replica's conflicting vote cannot poison the honest quorum)
    prepares: Dict[str, Set[str]] = field(default_factory=dict)
    commits: Dict[str, Set[str]] = field(default_factory=dict)
    #: digest -> (sender, token) pairs retained for the block certificate
    commit_tokens: Dict[str, List[Tuple[str, bytes]]] = field(default_factory=dict)
    sent_prepare: bool = False
    sent_commit: bool = False
    committed: bool = False


class PbftReplica:
    """One replica's PBFT engine.  I/O-free; returns actions."""

    def __init__(
        self,
        replica_id: str,
        replica_ids: Tuple[str, ...],
        quorum: QuorumConfig,
        sequence_window: int = 100_000,
    ):
        if replica_id not in replica_ids:
            raise ValueError(f"{replica_id!r} not in replica set")
        if len(replica_ids) != quorum.n:
            raise ValueError(
                f"replica set size {len(replica_ids)} != quorum n {quorum.n}"
            )
        self.replica_id = replica_id
        self.replica_ids = tuple(replica_ids)
        self.quorum = quorum
        self.sequence_window = sequence_window
        self.view = 0
        self.in_view_change = False
        self.stable_sequence = 0
        self.slots: Dict[int, Slot] = {}
        self._view_change_votes: Dict[int, Dict[str, ViewChange]] = {}
        #: statistics the host surfaces in experiment reports
        self.rejected_messages = 0

    # ------------------------------------------------------------------
    # roles
    # ------------------------------------------------------------------
    def primary_of(self, view: int) -> str:
        return self.replica_ids[view % len(self.replica_ids)]

    @property
    def is_primary(self) -> bool:
        return self.primary_of(self.view) == self.replica_id

    def _slot(self, sequence: int) -> Slot:
        slot = self.slots.get(sequence)
        if slot is None:
            slot = Slot()
            self.slots[sequence] = slot
        return slot

    def _in_window(self, sequence: int) -> bool:
        return (
            self.stable_sequence < sequence
            <= self.stable_sequence + self.sequence_window
        )

    # ------------------------------------------------------------------
    # normal case: primary
    # ------------------------------------------------------------------
    def make_preprepare(
        self, sequence: int, digest: str, request: ClientRequest
    ) -> Tuple[PrePrepare, List[Action]]:
        """Primary only: propose ``request`` at ``sequence``.

        The caller (batch-thread) computed and paid for ``digest``.
        """
        if not self.is_primary:
            raise NotPrimaryError(
                f"{self.replica_id} is not primary of view {self.view}"
            )
        if self.in_view_change:
            raise ViewChangeInProgress("cannot propose during a view change")
        slot = self._slot(sequence)
        if slot.preprepare is not None:
            raise ProposalError(f"sequence {sequence} already proposed")
        message = PrePrepare(self.replica_id, self.view, sequence, digest, request)
        slot.preprepare = message
        slot.digest = digest
        return message, [Broadcast(message), StartViewChangeTimer(sequence)]

    # ------------------------------------------------------------------
    # normal case: message handlers
    # ------------------------------------------------------------------
    def handle_preprepare(self, message: PrePrepare) -> List[Action]:
        if self.in_view_change or message.view != self.view:
            self.rejected_messages += 1
            return []
        if message.sender != self.primary_of(message.view):
            self.rejected_messages += 1  # only the primary may propose
            return []
        if not self._in_window(message.sequence):
            self.rejected_messages += 1
            return []
        slot = self._slot(message.sequence)
        if slot.preprepare is not None and slot.digest != message.digest:
            # equivocating primary: keep the first proposal, drop this one
            self.rejected_messages += 1
            return []
        if slot.sent_prepare:
            return []
        slot.preprepare = message
        slot.digest = message.digest
        slot.sent_prepare = True
        prepare = Prepare(self.replica_id, self.view, message.sequence, message.digest)
        actions: List[Action] = [
            Broadcast(prepare),
            StartViewChangeTimer(message.sequence),
        ]
        # count our own prepare, then re-check quorum — matching votes may
        # have arrived before the pre-prepare (§4.3's asynchrony example)
        self._record_prepare(slot, self.replica_id, message.digest)
        actions.extend(self._maybe_commit(message.sequence, slot))
        return actions

    def handle_prepare(self, message: Prepare) -> List[Action]:
        if self.in_view_change or message.view != self.view:
            self.rejected_messages += 1
            return []
        if message.sender == self.primary_of(message.view):
            self.rejected_messages += 1  # the primary never sends Prepare
            return []
        if not self._in_window(message.sequence):
            self.rejected_messages += 1
            return []
        slot = self._slot(message.sequence)
        self._record_prepare(slot, message.sender, message.digest)
        return self._maybe_commit(message.sequence, slot)

    def handle_commit(self, message: Commit) -> List[Action]:
        if self.in_view_change or message.view != self.view:
            self.rejected_messages += 1
            return []
        if not self._in_window(message.sequence):
            self.rejected_messages += 1
            return []
        slot = self._slot(message.sequence)
        voters = slot.commits.setdefault(message.digest, set())
        if message.sender not in voters:
            voters.add(message.sender)
            token = None
            if message.auth is not None:
                token = message.auth.for_receiver(self.replica_id)
            slot.commit_tokens.setdefault(message.digest, []).append(
                (message.sender, token or b"")
            )
        return self._maybe_execute(message.sequence, slot)

    # -- quorum bookkeeping --------------------------------------------
    def _record_prepare(self, slot: Slot, sender: str, digest: str) -> None:
        slot.prepares.setdefault(digest, set()).add(sender)

    def _prepared(self, slot: Slot) -> bool:
        """Pre-prepare received plus 2f distinct backup Prepare votes for
        its digest (the primary never votes Prepare; its pre-prepare is its
        vote)."""
        if slot.digest is None:
            return False
        votes = slot.prepares.get(slot.digest, ())
        return len(votes) >= self.quorum.prepare_quorum

    def _maybe_commit(self, sequence: int, slot: Slot) -> List[Action]:
        if slot.sent_commit or not self._prepared(slot):
            # the primary holds the request but never sends Prepare, so its
            # commit gate is the same quorum check on received prepares
            return []
        slot.sent_commit = True
        commit = Commit(self.replica_id, self.view, sequence, slot.digest)
        actions: List[Action] = [Broadcast(commit)]
        # our own commit vote counts toward the 2f+1
        voters = slot.commits.setdefault(slot.digest, set())
        if self.replica_id not in voters:
            voters.add(self.replica_id)
            slot.commit_tokens.setdefault(slot.digest, []).append(
                (self.replica_id, b"")
            )
        actions.extend(self._maybe_execute(sequence, slot))
        return actions

    def _maybe_execute(self, sequence: int, slot: Slot) -> List[Action]:
        if slot.committed or slot.digest is None or slot.preprepare is None:
            return []
        voters = slot.commits.get(slot.digest, ())
        if len(voters) < self.quorum.commit_quorum:
            return []
        slot.committed = True
        proof = tuple(slot.commit_tokens.get(slot.digest, ()))[
            : self.quorum.commit_quorum
        ]
        return [
            CancelViewChangeTimer(sequence),
            ExecuteReady(
                sequence=sequence,
                view=self.view,
                request=slot.preprepare.request,
                commit_proof=proof,
            ),
        ]

    # ------------------------------------------------------------------
    # checkpoint integration
    # ------------------------------------------------------------------
    def advance_stable(self, sequence: int) -> int:
        """Host notification: checkpoint at ``sequence`` became stable.

        Garbage-collects consensus slots at or below the new horizon and
        returns how many were dropped.
        """
        if sequence <= self.stable_sequence:
            return 0
        self.stable_sequence = sequence
        old = [s for s in self.slots if s <= sequence]
        for s in old:
            del self.slots[s]
        return len(old)

    # ------------------------------------------------------------------
    # view change
    # ------------------------------------------------------------------
    def on_view_change_timeout(self, sequence: int) -> List[Action]:
        """Host timer fired for ``sequence``; if still uncommitted, vote to
        replace the primary."""
        slot = self.slots.get(sequence)
        if slot is not None and slot.committed:
            return []
        return self._start_view_change(self.view + 1)

    def suspect_primary(self) -> List[Action]:
        """Host-level suspicion (e.g. a forwarded client request saw no
        progress): vote to replace the primary."""
        if self.in_view_change:
            return []
        return self._start_view_change(self.view + 1)

    def _start_view_change(self, new_view: int) -> List[Action]:
        if new_view <= self.view:
            return []
        self.in_view_change = True
        prepared = tuple(
            (sequence, slot.digest)
            for sequence, slot in sorted(self.slots.items())
            if slot.digest is not None and self._prepared(slot) and not slot.committed
        )
        vote = ViewChange(self.replica_id, new_view, self.stable_sequence, prepared)
        # record our own vote
        self._view_change_votes.setdefault(new_view, {})[self.replica_id] = vote
        actions: List[Action] = [Broadcast(vote)]
        actions.extend(self._maybe_new_view(new_view))
        return actions

    def handle_view_change(self, message: ViewChange) -> List[Action]:
        if message.new_view <= self.view:
            self.rejected_messages += 1
            return []
        votes = self._view_change_votes.setdefault(message.new_view, {})
        votes[message.sender] = message
        actions: List[Action] = []
        # join the view change once f+1 replicas vote (we cannot be the
        # only correct replica left behind)
        if (
            not self.in_view_change
            and len(votes) >= self.quorum.f + 1
            and self.replica_id not in votes
        ):
            actions.extend(self._start_view_change(message.new_view))
        actions.extend(self._maybe_new_view(message.new_view))
        return actions

    def _maybe_new_view(self, new_view: int) -> List[Action]:
        if self.primary_of(new_view) != self.replica_id:
            return []
        votes = self._view_change_votes.get(new_view, {})
        if len(votes) < self.quorum.view_change_quorum or self.view >= new_view:
            return []
        # union of prepared certificates across votes; at most one digest
        # can be prepared per sequence among correct replicas
        carried: Dict[int, str] = {}
        for vote in votes.values():
            for sequence, digest in vote.prepared:
                carried.setdefault(sequence, digest)
        carried_pairs = tuple(sorted(carried.items()))
        new_view_message = NewView(
            self.replica_id, new_view, tuple(sorted(votes)), carried_pairs
        )
        actions: List[Action] = [Broadcast(new_view_message)]
        actions.extend(self._enter_view(new_view))
        # re-propose every carried request we hold the body for, and fill
        # any uncarried gap below the highest known sequence with a null
        # batch so ordered execution never stalls on a hole
        known = set(self.slots) | set(carried)
        max_known = max(known, default=self.stable_sequence)
        for sequence in range(self.stable_sequence + 1, max_known + 1):
            slot = self.slots.get(sequence)
            if slot is not None and slot.committed:
                continue
            if sequence in carried:
                if slot is None or slot.preprepare is None:
                    # we lack the body; a correct deployment fetches it —
                    # out of scope here (see DESIGN.md simplifications)
                    continue
                digest = carried[sequence]
                request = slot.preprepare.request
            else:
                from repro.consensus.messages import make_null_batch

                request = make_null_batch()
                digest = request.digest
            self.slots[sequence] = Slot()
            _message, propose_actions = self.make_preprepare(sequence, digest, request)
            actions.extend(propose_actions)
        return actions

    def handle_new_view(self, message: NewView) -> List[Action]:
        if message.new_view <= self.view:
            self.rejected_messages += 1
            return []
        if message.sender != self.primary_of(message.new_view):
            self.rejected_messages += 1
            return []
        if len(set(message.view_change_voters)) < self.quorum.view_change_quorum:
            self.rejected_messages += 1
            return []
        actions = self._enter_view(message.new_view)
        # reset uncommitted carried slots; the new primary's fresh
        # pre-prepares will re-run the agreement in the new view
        for sequence, _digest in message.carried:
            slot = self.slots.get(sequence)
            if slot is not None and not slot.committed:
                self.slots[sequence] = Slot()
        return actions

    def _enter_view(self, new_view: int) -> List[Action]:
        self.view = new_view
        self.in_view_change = False
        self._view_change_votes = {
            v: votes for v, votes in self._view_change_votes.items() if v > new_view
        }
        return [EnterView(new_view)]
