"""FIFO channels connecting pipeline stages.

:class:`SimQueue` is the simulated analogue of the lock-free queues that
ResilientDB places between its pipeline threads.  The paper's design uses a
*common* work queue shared by several batch-threads so that "any enqueued
request is consumed as soon as any batch-thread is available" (§4.3) —
``SimQueue`` supports exactly that: multiple consumers blocked in
``get()`` are served in FIFO order as items arrive.

Queues track occupancy statistics so experiments can report queueing delay
(the dominant latency term in the client-scaling experiment, Fig. 15).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Optional


class _Getter:
    """A parked consumer; ``active`` is cleared if its timeout fires first."""

    __slots__ = ("process", "active")

    def __init__(self, process):
        self.process = process
        self.active = True


class _QueueGet:
    """Effect: wait until an item is available, resume with the item.

    With ``timeout`` set, resume with :data:`repro.sim.events.TIMEOUT`
    instead if nothing arrives within that many ticks.
    """

    __slots__ = ("queue", "timeout")

    def __init__(self, queue: "SimQueue", timeout: Optional[int] = None):
        self.queue = queue
        self.timeout = timeout

    def _bind(self, sim, process) -> None:
        queue = self.queue
        if queue._items:
            item = queue._take(sim)
            queue._wake_putters(sim)
            sim.schedule(0, process.resume, item)
            return
        getter = _Getter(process)
        queue._getters.append(getter)
        if self.timeout is not None:
            from repro.sim.events import TIMEOUT

            def _expire() -> None:
                if getter.active:
                    getter.active = False
                    process.resume(TIMEOUT)

            sim.schedule(self.timeout, _expire)


class _QueuePut:
    """Effect: wait until capacity is available, then enqueue."""

    __slots__ = ("queue", "item")

    def __init__(self, queue: "SimQueue", item: Any):
        self.queue = queue
        self.item = item

    def _bind(self, sim, process) -> None:
        queue = self.queue
        if queue.capacity is None or len(queue._items) < queue.capacity:
            queue._enqueue(sim, self.item)
            sim.schedule(0, process.resume, None)
        else:
            queue._putters.append((process, self.item))


class SimQueue:
    """An (optionally bounded) FIFO queue usable from simulation processes.

    - ``yield queue.get()`` blocks the process until an item arrives.
    - ``queue.put_nowait(item)`` enqueues immediately (unbounded queues, or
      producer code running outside a process, e.g. network delivery).
    - ``yield queue.put(item)`` blocks when the queue is bounded and full,
      providing back-pressure.
    """

    __slots__ = (
        "sim",
        "name",
        "capacity",
        "_items",
        "_getters",
        "_putters",
        "enqueued_total",
        "dequeued_total",
        "max_depth",
        "total_wait",
    )

    def __init__(self, sim, name: str = "queue", capacity: Optional[int] = None):
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque = deque()
        self._getters: Deque = deque()
        self._putters: Deque = deque()
        self.enqueued_total = 0
        self.dequeued_total = 0
        self.max_depth = 0
        self.total_wait = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def put_nowait(self, item: Any) -> None:
        """Enqueue without blocking (raises if a bounded queue is full)."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise OverflowError(f"queue {self.name!r} full (capacity={self.capacity})")
        self._enqueue(self.sim, item)

    def put(self, item: Any) -> _QueuePut:
        """Effect for blocking puts (back-pressure on bounded queues)."""
        return _QueuePut(self, item)

    def _enqueue(self, sim, item: Any) -> None:
        self.enqueued_total += 1
        getter = self._pop_active_getter()
        if getter is not None:
            self._record_dequeue(0)
            sim.schedule(0, getter.process.resume, item)
        else:
            self._items.append((item, sim.now))
            if len(self._items) > self.max_depth:
                self.max_depth = len(self._items)

    def _pop_active_getter(self):
        while self._getters:
            getter = self._getters.popleft()
            if getter.active:
                getter.active = False
                return getter
        return None

    def _wake_putters(self, sim) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            process, item = self._putters.popleft()
            self._enqueue(sim, item)
            sim.schedule(0, process.resume, None)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def get(self, timeout: Optional[int] = None) -> _QueueGet:
        """Effect for blocking gets; with ``timeout``, the waiter is
        resumed with :data:`~repro.sim.events.TIMEOUT` if nothing arrives
        in time (used by batch-threads' fill deadline)."""
        return _QueueGet(self, timeout)

    def get_nowait(self) -> Any:
        """Dequeue immediately; raises IndexError when empty."""
        item = self._take(self.sim)
        self._wake_putters(self.sim)
        return item

    def _take(self, sim) -> Any:
        """Remove and return the next item, recording its queueing delay."""
        item, enq_time = self._items.popleft()
        self._record_dequeue(sim.now - enq_time)
        return item

    def _record_dequeue(self, wait: int) -> None:
        self.dequeued_total += 1
        self.total_wait += wait

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        """Current occupancy (items enqueued and not yet consumed)."""
        return len(self._items)

    @property
    def waiters(self) -> int:
        """Consumers currently parked in ``get()``."""
        return sum(1 for getter in self._getters if getter.active)

    @property
    def mean_wait(self) -> float:
        """Mean ticks an item spent queued before being consumed."""
        return self.total_wait / self.dequeued_total if self.dequeued_total else 0.0

    def stats(self) -> dict:
        """Occupancy snapshot for samplers and reports."""
        return {
            "depth": len(self._items),
            "enqueued": self.enqueued_total,
            "dequeued": self.dequeued_total,
            "max_depth": self.max_depth,
            "mean_wait": self.mean_wait,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimQueue({self.name!r}, depth={len(self._items)})"


class SimPriorityQueue(SimQueue):
    """A SimQueue that serves lower-priority-number items first.

    Ties preserve insertion order, so same-priority traffic stays FIFO.
    Used by the degenerate 0B pipeline, where one worker both batches
    client requests and votes: protocol messages must not drown behind a
    deep backlog of unverified client requests, or the replica never
    commits anything.
    """

    __slots__ = ("_counter",)

    def __init__(self, sim, name: str = "pqueue", capacity: Optional[int] = None):
        super().__init__(sim, name, capacity)
        self._items = []  # heap of (priority, tie, item, enqueued_at)
        self._counter = 0

    def put_nowait(self, item: Any, priority: int = 0) -> None:
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise OverflowError(f"queue {self.name!r} full (capacity={self.capacity})")
        self.enqueued_total += 1
        getter = self._pop_active_getter()
        if getter is not None:
            self._record_dequeue(0)
            self.sim.schedule(0, getter.process.resume, item)
            return
        self._counter += 1
        heapq.heappush(self._items, (priority, self._counter, item, self.sim.now))
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)

    def _take(self, sim) -> Any:
        _priority, _tie, item, enqueued_at = heapq.heappop(self._items)
        self._record_dequeue(sim.now - enqueued_at)
        return item
