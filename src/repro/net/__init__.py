"""Simulated network: typed messages, NIC-level transport, fault injection.

The transport charges every message both propagation latency and
*serialisation time* on the sender's and receiver's NICs (size ÷ link
bandwidth, each NIC a FIFO).  NIC occupancy is what makes the message-size
experiment (Fig. 12) become network-bound — "the system reaches the network
bound before any thread can computationally saturate" — and what makes
quadratic-phase protocols pay for their fan-out.
"""

from repro.net.faults import FaultPlan
from repro.net.message import Message, WIRE_HEADER_BYTES
from repro.net.topology import Topology
from repro.net.transport import Endpoint, Network

__all__ = [
    "Endpoint",
    "FaultPlan",
    "Message",
    "Network",
    "Topology",
    "WIRE_HEADER_BYTES",
]
