"""Tests for the discrete-event simulator core."""

import pytest

from repro.sim import Simulator, Timeout, micros, seconds
from repro.sim.kernel import SimulationError
from repro.sim.process import ProcessFailure


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(30, seen.append, "c")
    sim.schedule(10, seen.append, "a")
    sim.schedule(20, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 30


def test_same_tick_events_run_in_scheduling_order():
    sim = Simulator()
    seen = []
    for label in ("first", "second", "third"):
        sim.schedule(5, seen.append, label)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.schedule(500, lambda: None)
    sim.run(until=200)
    assert sim.now == 200
    assert sim.pending_events == 1


def test_run_until_with_no_events_advances_clock():
    sim = Simulator()
    sim.run(until=seconds(2))
    assert sim.now == seconds(2)


def test_process_timeout_advances_clock():
    sim = Simulator()
    trace = []

    def proc():
        yield Timeout(micros(5))
        trace.append(sim.now)
        yield micros(10)  # bare int is also a timeout
        trace.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert trace == [micros(5), micros(15)]


def test_process_return_value_via_join():
    sim = Simulator()
    results = []

    def child():
        yield Timeout(10)
        return 42

    def parent():
        value = yield sim.spawn(child())
        results.append(value)

    sim.spawn(parent())
    sim.run()
    assert results == [42]


def test_joining_finished_process_resumes_immediately():
    sim = Simulator()
    results = []

    def child():
        yield Timeout(1)
        return "done"

    def parent(child_process):
        yield Timeout(100)  # child long finished
        value = yield child_process
        results.append((sim.now, value))

    child_process = sim.spawn(child())
    sim.spawn(parent(child_process))
    sim.run()
    assert results == [(100, "done")]


def test_process_exception_propagates_as_failure():
    sim = Simulator()

    def bad():
        yield Timeout(1)
        raise ValueError("boom")

    sim.spawn(bad(), name="bad")
    with pytest.raises(ProcessFailure) as excinfo:
        sim.run()
    assert isinstance(excinfo.value.original, ValueError)


def test_yielding_garbage_is_an_error():
    sim = Simulator()

    def bad():
        yield "not an effect"

    sim.spawn(bad())
    with pytest.raises(ProcessFailure):
        sim.run()


def test_stop_halts_loop():
    sim = Simulator()
    seen = []

    def proc():
        for _ in range(100):
            yield Timeout(10)
            seen.append(sim.now)
            if len(seen) == 3:
                sim.stop()

    sim.spawn(proc())
    sim.run()
    assert seen == [10, 20, 30]
    # run can be resumed afterwards
    sim.run(until=60)
    assert len(seen) == 6


def test_determinism_same_seed_same_trace():
    def build_and_run(seed):
        sim = Simulator(seed=seed)
        trace = []

        def proc(name):
            for _ in range(5):
                yield Timeout(sim.rng.randint(1, 100))
                trace.append((sim.now, name))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        return trace

    assert build_and_run(7) == build_and_run(7)
    assert build_and_run(7) != build_and_run(8)
