"""Transaction-lifecycle spans (§4.1–§4.6 pipeline hand-offs).

A *span* follows one client request through the replica pipeline.  The
client stamps it at submission; the primary stamps it at every hand-off it
observes (input routing, batch assembly, proposal, prepared, committed,
executed); the client closes it when a response quorum completes the
request.  Per-stage latency histograms then answer the question the paper's
Figures 8, 9 and 16 revolve around: *which stage did the p99 go to?*

The stage names follow the pipeline order::

    submit -> input -> batch -> propose -> prepare -> commit -> execute -> reply

Protocols that skip phases simply never stamp them (Zyzzyva's fast path
has no ``prepare``); the latency between two *stamped* stages is
attributed to the later stage.  Consensus phases operate on batches, not
requests, so the recorder keeps a sequence-number → request-keys link
created when the batch is proposed.

Everything here follows the ``Tracer.enabled`` idiom: a disabled recorder
costs hot paths a single attribute read (callers guard on
``recorder.enabled`` and never call in when it is False).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.sim.clock import NANOS_PER_SEC
from repro.sim.metrics import LatencyHistogram

#: pipeline hand-offs in order; a span's stamps are a subsequence of this
STAGES: Tuple[str, ...] = (
    "submit",
    "input",
    "batch",
    "propose",
    "prepare",
    "commit",
    "execute",
    "reply",
)

_STAGE_INDEX = {stage: index for index, stage in enumerate(STAGES)}

#: a span key identifies one client request: (client group name, request id)
SpanKey = Tuple[str, int]


class SpanRecorder:
    """Collects lifecycle spans and aggregates per-stage latency.

    - ``begin(key, at)`` opens a span at submission time.
    - ``stamp(key, stage, at)`` records the first time a stage is reached
      (later stamps for the same stage are ignored, so retransmissions and
      backup replicas cannot skew a span backwards).
    - ``link_batch(sequence, keys)`` ties a consensus sequence number to
      the requests inside the proposed batch, letting batch-level stamps
      (``propose``/``prepare``/``commit``/``execute``) fan out to spans.
    - ``finish(key, at)`` closes the span, attributing each gap between
      consecutive stamped stages to the later stage's histogram.

    Memory is bounded: open spans are bounded by the number of in-flight
    client requests (closed-loop clients keep one each), histograms carry a
    reservoir cap, and finished spans are retained (for trace export) only
    up to ``keep_finished``.
    """

    def __init__(
        self,
        enabled: bool = False,
        max_samples: int = 65_536,
        keep_finished: int = 0,
    ):
        self.enabled = enabled
        self.max_samples = max_samples
        self.keep_finished = keep_finished
        self._open: Dict[SpanKey, Dict[str, int]] = {}
        self._by_sequence: Dict[int, Tuple[SpanKey, ...]] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}
        #: retained (key, stamps) pairs of closed spans, oldest dropped
        self.finished: Deque[Tuple[SpanKey, Dict[str, int]]] = deque(
            maxlen=keep_finished or None
        )
        self.spans_completed = 0
        self.spans_abandoned = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin(self, key: SpanKey, at: int) -> None:
        self._open[key] = {"submit": at}

    def stamp(self, key: SpanKey, stage: str, at: int) -> None:
        span = self._open.get(key)
        if span is not None and stage not in span:
            span[stage] = at

    def link_batch(self, sequence: int, keys: Tuple[SpanKey, ...]) -> None:
        self._by_sequence[sequence] = keys

    def stamp_sequence(self, sequence: int, stage: str, at: int) -> None:
        """Stamp every request linked to a consensus sequence number.

        ``execute`` is the last batch-level stage, so its stamp also
        releases the sequence link (bounding the link table).
        """
        keys = self._by_sequence.get(sequence)
        if keys is None:
            return
        for key in keys:
            self.stamp(key, stage, at)
        if stage == "execute":
            del self._by_sequence[sequence]

    def annotate(self, key: SpanKey, name: str, value) -> None:
        """Attach a non-stage attribute to an open span (e.g. how many
        busy-nacks the request absorbed before completing).  Attributes
        are stored as ``attr.<name>`` entries, which the stage machinery
        ignores; exporters surface them on the finished span."""
        span = self._open.get(key)
        if span is not None:
            span[f"attr.{name}"] = value

    def finish(self, key: SpanKey, at: int) -> None:
        span = self._open.pop(key, None)
        if span is None:
            return
        span["reply"] = at
        previous = span["submit"]
        for stage in STAGES[1:]:
            stamped = span.get(stage)
            if stamped is None:
                continue
            delta = stamped - previous
            if delta >= 0:
                self._histogram(stage).record(delta)
            previous = stamped
        self._histogram("total").record(at - span["submit"])
        self.spans_completed += 1
        if self.keep_finished:
            self.finished.append((key, span))

    def abandon(self, key: SpanKey) -> None:
        """Drop an open span without recording (e.g. client gave up)."""
        if self._open.pop(key, None) is not None:
            self.spans_abandoned += 1

    def _histogram(self, stage: str) -> LatencyHistogram:
        histogram = self.histograms.get(stage)
        if histogram is None:
            histogram = LatencyHistogram(
                f"stage.{stage}", max_samples=self.max_samples
            )
            self.histograms[stage] = histogram
        return histogram

    # ------------------------------------------------------------------
    # measurement-window protocol (MetricsRegistry resettable)
    # ------------------------------------------------------------------
    def reset_window(self) -> None:
        """Zero the aggregates when warmup ends (open spans survive: a
        request submitted during warmup but completed inside the window
        counts, matching the request-latency histogram's semantics)."""
        for histogram in self.histograms.values():
            histogram.reset()
        self.finished.clear()
        self.spans_completed = 0
        self.spans_abandoned = 0

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        return len(self._open)

    def stage_table(self) -> Dict[str, Dict[str, float]]:
        """Stage -> {count, mean_s, p50_s, p99_s}, in pipeline order
        (plus ``total``), for every stage that recorded samples."""
        table: Dict[str, Dict[str, float]] = {}
        for stage in list(STAGES[1:]) + ["total"]:
            histogram = self.histograms.get(stage)
            if histogram is None or not histogram.count:
                continue
            table[stage] = {
                "count": float(histogram.count),
                "mean_s": histogram.mean_seconds(),
                "p50_s": histogram.percentile_seconds(50),
                "p99_s": histogram.percentile_seconds(99),
            }
        return table


def validate_stage_order(stamps: Dict[str, int]) -> Optional[str]:
    """Check one span's stamps respect pipeline order and monotonic time.

    Returns None when consistent, else a human-readable violation (used by
    tests as the span invariant, and handy when debugging new hooks).
    """
    ordered: List[Tuple[int, str]] = sorted(
        ((_STAGE_INDEX[stage], stage) for stage in stamps if stage in _STAGE_INDEX)
    )
    previous_time = None
    previous_stage = None
    for _index, stage in ordered:
        at = stamps[stage]
        if previous_time is not None and at < previous_time:
            return (
                f"stage {stage!r} at {at} precedes {previous_stage!r} "
                f"at {previous_time}"
            )
        previous_time, previous_stage = at, stage
    return None


def span_seconds(stamps: Dict[str, int]) -> float:
    """End-to-end duration of one span in seconds (0.0 if unterminated)."""
    if "submit" not in stamps or "reply" not in stamps:
        return 0.0
    return (stamps["reply"] - stamps["submit"]) / NANOS_PER_SEC
