#!/usr/bin/env python3
"""Quickstart: run a small ResilientDB deployment and print what happened.

Builds a 4-replica PBFT deployment with 64 closed-loop clients, runs the
paper's measurement protocol (warm up, then measure), and reports
throughput, latency, per-thread saturation and ledger state.

    python examples/quickstart.py
"""

from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis


def main() -> None:
    config = SystemConfig(
        num_replicas=4,
        num_clients=64,
        client_groups=4,
        batch_size=10,
        ycsb_records=5_000,
        warmup=millis(100),
        measure=millis(300),
    )
    system = ResilientDBSystem(config)
    result = system.run()

    print("=== ResilientDB quickstart ===")
    print(f"protocol:            {config.protocol} "
          f"(n={config.num_replicas}, f={config.f})")
    print(f"throughput:          {result.throughput_txns_per_s / 1e3:.1f}K txns/s")
    print(f"latency:             mean {result.latency_mean_s * 1e3:.1f} ms, "
          f"p99 {result.latency_p99_s * 1e3:.1f} ms")
    print(f"requests completed:  {result.completed_requests}")
    print(f"network traffic:     {result.messages_sent} messages, "
          f"{result.bytes_sent / 1e6:.1f} MB")

    print("\nper-thread saturation at the primary (Fig. 9 style):")
    for stage, value in sorted(result.primary_saturation.items()):
        bar = "#" * int(value * 40)
        print(f"  {stage:<12} {value * 100:5.1f}% {bar}")

    primary = system.replicas["r0"]
    print(f"\nledger: {primary.chain.height} blocks, "
          f"stable checkpoint at batch {result.stable_checkpoint}")
    head = primary.chain.head()
    print(f"head block: seq={head.sequence} digest={head.digest[:16]}… "
          f"certified by {len(head.commit_certificate)} commit signatures")

    prefix = system.validate_safety()
    print(f"\nsafety: all replicas agree on a common prefix of {prefix} batches ✓")


if __name__ == "__main__":
    main()
