"""Shared consensus machinery: quorum arithmetic and protocol actions.

State machines return lists of :class:`Action` objects; the host (the
replica pipeline, or a test harness) interprets them.  Keeping protocol
logic free of I/O and timing makes safety properties directly testable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.messages import ClientRequest
from repro.net.message import Message


@dataclass(frozen=True)
class QuorumConfig:
    """Quorum arithmetic for ``n = 3f + 1`` replicas (§2.1)."""

    n: int
    f: int

    def __post_init__(self):
        if self.f < 0:
            raise ValueError(f"f must be >= 0, got {self.f}")
        if self.n < 3 * self.f + 1:
            raise ValueError(
                f"n={self.n} cannot tolerate f={self.f} faults (need n >= 3f+1)"
            )

    @classmethod
    def for_replicas(cls, n: int) -> "QuorumConfig":
        """Maximum fault tolerance for ``n`` replicas: f = ⌊(n−1)/3⌋."""
        if n < 4:
            raise ValueError(f"BFT needs at least 4 replicas, got {n}")
        return cls(n=n, f=(n - 1) // 3)

    @property
    def commit_quorum(self) -> int:
        """Commit messages needed to mark a request committed.

        ⌈(n+f+1)/2⌉ — equals the paper's 2f+1 when n = 3f+1 and keeps the
        required property for larger n: any two commit quorums intersect
        in at least f+1 replicas, hence in a non-faulty one.
        """
        return -(-(self.n + self.f + 1) // 2)  # ceil division

    @property
    def prepare_quorum(self) -> int:
        """Prepare messages needed to mark a request prepared (2f when
        n = 3f+1; the pre-prepare itself supplies the missing vote)."""
        return self.commit_quorum - 1

    @property
    def checkpoint_quorum(self) -> int:
        """Identical checkpoint messages for stability."""
        return self.commit_quorum

    @property
    def view_change_quorum(self) -> int:
        return self.commit_quorum

    @property
    def client_response_quorum(self) -> int:
        """Matching responses a PBFT client waits for: f + 1."""
        return self.f + 1

    @property
    def fast_path_quorum(self) -> int:
        """Responses Zyzzyva's fast path needs: all n replicas ("a client
        [must] receive a response from all the 3f+1 replicas", §2.1)."""
        return self.n

    @property
    def certificate_quorum(self) -> int:
        """Spec-responses in a Zyzzyva commit certificate."""
        return self.commit_quorum


# ----------------------------------------------------------------------
# typed proposal failures
# ----------------------------------------------------------------------
class ProposalError(RuntimeError):
    """A proposal could not be made.  Subclasses say why, so a host (or
    the multi-instance coordinator) can catch per-engine and re-steer the
    batch instead of crashing the replica."""


class NotPrimaryError(ProposalError):
    """The engine asked to propose is not the primary of its view."""


class ViewChangeInProgress(ProposalError):
    """The engine is mid view change; proposals resume in the new view."""


# ----------------------------------------------------------------------
# actions
# ----------------------------------------------------------------------
class Action:
    """Base class for protocol outputs."""

    __slots__ = ()


@dataclass(frozen=True)
class SendTo(Action):
    """Send ``message`` to one destination (a replica or a client)."""

    dst: str
    message: Message


@dataclass(frozen=True)
class Broadcast(Action):
    """Send ``message`` to every other replica."""

    message: Message


@dataclass(frozen=True)
class ExecuteReady(Action):
    """Hand a committed (PBFT) or speculatively ordered (Zyzzyva) batch to
    the execution layer.

    ``commit_proof`` carries the (replica, signature-token) pairs of the
    commit quorum so block generation can embed the certificate instead of
    hashing the previous block (§4.6); Zyzzyva's speculative execution has
    no proof yet and passes an empty tuple plus ``speculative=True``.
    """

    sequence: int
    view: int
    request: ClientRequest
    commit_proof: tuple = ()
    speculative: bool = False


@dataclass(frozen=True)
class StartViewChangeTimer(Action):
    """Arm the view-change timer for ``sequence`` if not already armed."""

    sequence: int


@dataclass(frozen=True)
class CancelViewChangeTimer(Action):
    """Disarm the view-change timer for ``sequence`` (request committed)."""

    sequence: int


@dataclass(frozen=True)
class EnterView(Action):
    """Report that the replica moved to ``view`` (host updates routing;
    the new primary's pipeline enables its batch/sequencing stages)."""

    view: int
