"""The immutable ledger.

Per §2.2, the i-th block is ``B_i = {k, d, v, H(B_{i-1})}``: the sequence
number of the client request (batch), the digest of the request, the view
(identifier of the primary that led consensus) and the hash of the previous
block.  The chain starts at a genesis block holding the hash of the first
primary's identifier.

§4.6 ("Block Generation") replaces the previous-block hash with the 2f+1
commit signatures that consensus already collected — "this acts as a
sufficient proof to guarantee correct order" — trading hash CPU on the
execute-thread for a slightly larger block.  Both certification modes are
implemented; an ablation bench compares them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.hashing import digest_bytes


class CertificationMode(str, enum.Enum):
    """How a block proves it extends the chain correctly."""

    PREV_HASH = "prev-hash"
    COMMIT_CERTIFICATE = "commit-certificate"


class ChainViolation(ValueError):
    """Raised when an appended or validated block breaks chain rules."""


@dataclass(frozen=True)
class Block:
    """One ledger entry covering a committed batch of transactions."""

    sequence: int
    digest: str
    view: int
    proposer: str
    txn_count: int
    prev_hash: Optional[str] = None
    #: (replica_id, commit-signature token bytes) pairs, 2f+1 of them, when
    #: certified by commit certificate instead of prev_hash.
    commit_certificate: Tuple[Tuple[str, bytes], ...] = ()

    def block_hash(self) -> str:
        """Real SHA-256 over the block's canonical representation."""
        canonical = (
            f"{self.sequence}:{self.digest}:{self.view}:{self.proposer}:"
            f"{self.txn_count}:{self.prev_hash}"
        )
        return digest_bytes(canonical.encode("utf-8"))


def make_genesis(first_primary: str) -> Block:
    """The genesis block: "dummy data", e.g. the hash of the identifier of
    the first primary, H(P) (§2.2)."""
    return Block(
        sequence=0,
        digest=digest_bytes(first_primary.encode("utf-8")),
        view=0,
        proposer=first_primary,
        txn_count=0,
        prev_hash=None,
    )


class Blockchain:
    """A replica's copy of the ledger.

    Appends enforce dense sequence numbers and, in ``PREV_HASH`` mode, the
    hash link; in ``COMMIT_CERTIFICATE`` mode they enforce a quorum-sized
    certificate from distinct signers.  ``validate()`` re-checks the whole
    chain (used by tests and by checkpoint transfer).
    """

    def __init__(
        self,
        first_primary: str,
        mode: CertificationMode = CertificationMode.COMMIT_CERTIFICATE,
        quorum_size: int = 3,
    ):
        self.mode = CertificationMode(mode)
        self.quorum_size = quorum_size
        self.genesis = make_genesis(first_primary)
        self.blocks: List[Block] = [self.genesis]
        self._by_sequence: Dict[int, Block] = {0: self.genesis}
        #: highest sequence dropped by checkpoint GC; the stable checkpoint
        #: attests to everything at or below it
        self.pruned_through = 0

    # ------------------------------------------------------------------
    # building the chain
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Sequence number of the newest block."""
        return self.blocks[-1].sequence

    def head(self) -> Block:
        return self.blocks[-1]

    def append(self, block: Block) -> None:
        """Append after validating against the current head."""
        head = self.head()
        if block.sequence != head.sequence + 1:
            raise ChainViolation(
                f"non-contiguous sequence: head={head.sequence}, "
                f"appending {block.sequence}"
            )
        if self.mode is CertificationMode.PREV_HASH:
            if block.prev_hash != head.block_hash():
                raise ChainViolation(
                    f"block {block.sequence} does not link to head hash"
                )
        else:
            self._check_certificate(block)
        self.blocks.append(block)
        self._by_sequence[block.sequence] = block

    def _check_certificate(self, block: Block) -> None:
        signers = {signer for signer, _token in block.commit_certificate}
        if len(signers) < self.quorum_size:
            raise ChainViolation(
                f"block {block.sequence} certificate has {len(signers)} distinct "
                f"signers, needs {self.quorum_size}"
            )
        if len(signers) != len(block.commit_certificate):
            raise ChainViolation(
                f"block {block.sequence} certificate repeats a signer"
            )

    # ------------------------------------------------------------------
    # queries and validation
    # ------------------------------------------------------------------
    def get(self, sequence: int) -> Optional[Block]:
        return self._by_sequence.get(sequence)

    def validate(self) -> None:
        """Re-validate every link/certificate; raises on the first break.

        The genesis → first-retained-block pair is exempt after checkpoint
        GC: the pruned prefix is attested by the stable checkpoint, not by
        hash links (§4.7).
        """
        for previous, current in zip(self.blocks, self.blocks[1:]):
            across_gc_boundary = (
                previous.sequence == 0
                and self.pruned_through > 0
                and current.sequence == self.pruned_through + 1
            )
            if current.sequence != previous.sequence + 1 and not across_gc_boundary:
                raise ChainViolation(
                    f"gap between {previous.sequence} and {current.sequence}"
                )
            if self.mode is CertificationMode.PREV_HASH:
                if not across_gc_boundary and (
                    current.prev_hash != previous.block_hash()
                ):
                    raise ChainViolation(f"broken hash link at {current.sequence}")
            elif not current.commit_certificate and current.sequence == 0:
                continue
            else:
                self._check_certificate(current)

    def adopt(self, blocks, pruned_through: int) -> None:
        """Replace this chain with a transferred suffix (state transfer).

        ``blocks`` is the contiguous suffix a peer shipped; everything
        before it is attested by the stable checkpoint the snapshot came
        from, exactly like a locally GC'd prefix.
        """
        blocks = list(blocks)
        for previous, current in zip(blocks, blocks[1:]):
            if current.sequence != previous.sequence + 1:
                raise ChainViolation(
                    f"transferred suffix has a gap between "
                    f"{previous.sequence} and {current.sequence}"
                )
        # everything below the suffix is attested by the snapshot we
        # adopted alongside it, exactly like a checkpoint-GC'd prefix
        first_sequence = blocks[0].sequence if blocks else pruned_through + 1
        self.pruned_through = max(
            self.pruned_through, pruned_through, first_sequence - 1
        )
        self.blocks = [self.genesis] + blocks
        self._by_sequence = {0: self.genesis}
        self._by_sequence.update({block.sequence: block for block in blocks})

    def suffix_since(self, sequence: int):
        """Blocks with sequence > ``sequence`` (for state transfer)."""
        return tuple(
            block for block in self.blocks if block.sequence > sequence
        )

    def prune_before(self, sequence: int) -> int:
        """Drop blocks older than ``sequence`` (checkpoint GC, §4.7).

        The genesis block is always kept as the chain anchor.  Returns the
        number of blocks dropped.
        """
        keep = [b for b in self.blocks if b.sequence >= sequence or b.sequence == 0]
        dropped = len(self.blocks) - len(keep)
        if dropped:
            self.pruned_through = max(self.pruned_through, sequence - 1)
        self.blocks = keep
        self._by_sequence = {b.sequence: b for b in keep}
        return dropped

    def __len__(self) -> int:
        return len(self.blocks)
