"""Figure 1: PBFT on ResilientDB's pipeline vs protocol-centric Zyzzyva.

Paper claims: ResilientDB reaches ~175K txns/s at 32 replicas and beats
the protocol-centric Zyzzyva system by up to 79%; the three-phase protocol
on the well-crafted system wins.
"""

from repro.bench import fig01_headline


def test_fig01_headline(benchmark, record_figure):
    figure = benchmark.pedantic(fig01_headline, rounds=1, iterations=1)
    record_figure(figure)
    resilientdb = figure.get("ResilientDB (PBFT 2B 1E)")
    zyzzyva = figure.get("Zyzzyva (protocol-centric)")
    # shape: the well-crafted PBFT system wins at every replica count
    for pbft_tp, zyz_tp in zip(resilientdb.throughputs(), zyzzyva.throughputs()):
        assert pbft_tp > zyz_tp
    # shape: the advantage is large (paper: up to 79%)
    best = max(
        p / max(1.0, z)
        for p, z in zip(resilientdb.throughputs(), zyzzyva.throughputs())
    )
    assert best > 1.5
    # scale: the absolute numbers live in the paper's regime (100K+)
    assert max(resilientdb.throughputs()) > 100_000
