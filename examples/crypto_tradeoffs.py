#!/usr/bin/env python3
"""Choosing a signature configuration for a deployment (§5.6 in miniature).

Runs the same 16-replica deployment under the paper's four signing
configurations and prints the throughput/latency trade-off, ending with
the paper's §6 recommendation: digital signatures where non-repudiation
matters (clients), MACs everywhere else.

    python examples/crypto_tradeoffs.py
"""

from repro.core import ResilientDBSystem, SystemConfig
from repro.crypto.schemes import SchemeName
from repro.sim.clock import millis

CONFIGURATIONS = [
    ("no signatures (unsafe!)", SchemeName.NULL, SchemeName.NULL),
    ("ED25519 everywhere", SchemeName.ED25519, SchemeName.ED25519),
    ("RSA everywhere", SchemeName.RSA, SchemeName.RSA),
    ("ED25519 clients + CMAC replicas", SchemeName.ED25519, SchemeName.CMAC_AES),
]


def main() -> None:
    print("=== signature-scheme trade-offs (16 replicas, PBFT) ===\n")
    print(f"{'configuration':<34} {'throughput':>12} {'mean latency':>14}")
    rows = []
    for label, client_scheme, replica_scheme in CONFIGURATIONS:
        config = SystemConfig(
            num_replicas=16,
            num_clients=2_000,
            client_groups=8,
            batch_size=100,
            ycsb_records=10_000,
            client_scheme=client_scheme,
            replica_scheme=replica_scheme,
            warmup=millis(100),
            measure=millis(200),
            real_auth_tokens=False,
            apply_state=False,
        )
        result = ResilientDBSystem(config).run()
        rows.append((label, result))
        print(f"{label:<34} {result.throughput_txns_per_s / 1e3:>10.1f}K "
              f"{result.latency_mean_s * 1e3:>12.2f}ms")

    print("\nwhat the paper concludes (§6):")
    print(" * MACs are cheaper than digital signatures, but only DSs give")
    print("   non-repudiation — needed when a message may be forwarded.")
    print(" * In PBFT no replica forwards another replica's messages, so")
    print("   replica↔replica traffic can use CMAC+AES safely.")
    print(" * Clients must sign with a DS (their requests ARE forwarded,")
    print("   inside Pre-prepare batches).")
    best_safe = max(rows[1:], key=lambda row: row[1].throughput_txns_per_s)
    print(f"\nbest safe configuration here: {best_safe[0]!r} "
          f"at {best_safe[1].throughput_txns_per_s / 1e3:.1f}K txns/s")


if __name__ == "__main__":
    main()
