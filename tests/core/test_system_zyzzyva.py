"""Full-system tests: Zyzzyva deployments, including the failure collapse."""

import pytest

from repro.core import ResilientDBSystem
from repro.sim.clock import millis


@pytest.fixture
def zyz_config(small_config):
    return small_config.with_options(
        protocol="zyzzyva", zyzzyva_client_timeout=millis(20)
    )


def test_fast_path_without_failures(zyz_config):
    system = ResilientDBSystem(zyz_config)
    result = system.run()
    assert result.completed_requests > 100
    # every request completed on the 3f+1 fast path
    assert result.slow_path_completions == 0
    assert result.fast_path_completions == result.completed_requests


def test_execution_order_consistent(zyz_config):
    system = ResilientDBSystem(zyz_config)
    system.run()
    assert system.validate_safety() > 10


def test_history_hashes_agree(zyz_config):
    system = ResilientDBSystem(zyz_config)
    system.run()
    lengths = {
        rid: len(replica.executed_log) for rid, replica in system.replicas.items()
    }
    # replicas at the same execution point share the same history hash
    by_length = {}
    for rid, replica in system.replicas.items():
        by_length.setdefault(lengths[rid], set()).add(replica.exec_history_hash)
    for hashes in by_length.values():
        assert len(hashes) == 1


def test_one_crash_forces_slow_path(zyz_config):
    system = ResilientDBSystem(zyz_config)
    system.crash_replicas(1)
    result = system.run()
    assert result.completed_requests > 0
    assert result.fast_path_completions == 0
    assert result.slow_path_completions == result.completed_requests
    # every completion waited out the client timer first
    assert result.latency_mean_s >= 0.020


def test_crash_collapse_vs_healthy(zyz_config):
    healthy = ResilientDBSystem(zyz_config).run()
    crashed_system = ResilientDBSystem(zyz_config)
    crashed_system.crash_replicas(1)
    degraded = crashed_system.run()
    # Fig. 17: a single failure devastates Zyzzyva
    assert degraded.throughput_txns_per_s < healthy.throughput_txns_per_s / 2
    assert degraded.latency_mean_s > 2 * healthy.latency_mean_s


def test_pbft_unaffected_by_same_crash(small_config):
    healthy = ResilientDBSystem(small_config).run()
    crashed_system = ResilientDBSystem(small_config)
    crashed_system.crash_replicas(1)
    degraded = crashed_system.run()
    # Fig. 17: PBFT barely moves (no phase needs more than 2f+1 of 3f+1)
    assert degraded.throughput_txns_per_s > 0.8 * healthy.throughput_txns_per_s


def test_zyzzyva_matches_pbft_when_healthy(small_config, zyz_config):
    """Same pipeline, no failures: the single-phase protocol is at least
    as fast as the three-phase one."""
    pbft = ResilientDBSystem(small_config).run()
    zyz = ResilientDBSystem(zyz_config).run()
    assert zyz.throughput_txns_per_s >= 0.9 * pbft.throughput_txns_per_s


def test_fewer_protocol_messages_than_pbft(small_config, zyz_config):
    pbft_system = ResilientDBSystem(small_config)
    pbft = pbft_system.run()
    zyz_system = ResilientDBSystem(zyz_config)
    zyz = zyz_system.run()
    pbft_per_request = pbft.messages_sent / max(1, pbft.completed_requests)
    zyz_per_request = zyz.messages_sent / max(1, zyz.completed_requests)
    assert zyz_per_request < pbft_per_request
