"""Shared plumbing for running experiment configurations."""

from __future__ import annotations

import os

from repro.core.config import SystemConfig
from repro.core.system import ExperimentResult, ResilientDBSystem
from repro.sim.clock import millis


def full_scale() -> bool:
    """Paper-scale sweeps when REPRO_BENCH_FULL=1 (slower, more points)."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def base_config(**overrides) -> SystemConfig:
    """The benchmark counterpart of the paper's standard setup (§5.1).

    Fidelity knobs that only burn host CPU without changing simulated
    results (real HMAC tokens, real record stores) are off; client counts
    are scaled ~4× below the paper's 32K default to keep each point in
    seconds.  All are overridable.
    """
    defaults = dict(
        num_replicas=16,
        num_clients=8_000,
        client_groups=8,
        batch_size=100,
        ycsb_records=60_000,
        warmup=millis(60),
        measure=millis(100),
        real_auth_tokens=False,
        apply_state=False,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def run_config(config: SystemConfig, crash_backups: int = 0) -> ExperimentResult:
    """Build, run and tear down one deployment."""
    system = ResilientDBSystem(config)
    try:
        if crash_backups:
            system.crash_replicas(crash_backups)
        return system.run()
    finally:
        system.close()
