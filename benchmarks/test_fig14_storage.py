"""Figure 14: in-memory state vs SQLite.

Paper claims: SQLite costs 94% of throughput and 24× latency — the
execute-thread busy-waits on every record access.
"""

from repro.bench import fig14_storage


def test_fig14_storage(benchmark, record_figure):
    figure = benchmark.pedantic(fig14_storage, rounds=1, iterations=1)
    record_figure(figure)
    memory, sqlite = figure.get("PBFT 2B 1E").points
    assert memory.x == "memory" and sqlite.x == "sqlite"
    drop = 1 - sqlite.throughput_txns_per_s / max(1.0, memory.throughput_txns_per_s)
    assert drop > 0.7  # paper: 94%
    assert sqlite.latency_s > 3 * memory.latency_s  # paper: 24x
