"""ResilientDB core: the multi-threaded, deeply pipelined replica fabric.

This package assembles the substrates (simulated kernel, network, crypto,
storage, consensus engines) into the system of the paper's §4:

- :class:`~repro.core.config.SystemConfig` — every experiment knob.
- :class:`~repro.core.replica.Replica` — the pipelined replica: input,
  batch, worker, execute, checkpoint and output threads connected by
  queues (Figures 6a/6b).
- :class:`~repro.core.clientmgr.ClientGroup` — closed-loop clients with
  PBFT (f+1 responses) and Zyzzyva (3f+1 fast path, commit-certificate
  fallback) completion logic.
- :class:`~repro.core.system.ResilientDBSystem` — deployment builder and
  experiment runner producing :class:`~repro.core.system.ExperimentResult`.
"""

from repro.core.config import SystemConfig, WorkCosts
from repro.core.system import ExperimentResult, ResilientDBSystem

__all__ = [
    "ExperimentResult",
    "ResilientDBSystem",
    "SystemConfig",
    "WorkCosts",
]
