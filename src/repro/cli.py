"""Command-line interface: run one deployment or regenerate a figure.

Examples::

    python -m repro run --replicas 16 --clients 8000 --batch-size 100
    python -m repro run --protocol zyzzyva --crash-backups 1
    python -m repro figure fig10
    python -m repro list-figures
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ResilientDB reproduction (ICDCS 2020) — simulated "
        "permissioned blockchain fabric",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one deployment and report")
    run.add_argument("--protocol", choices=("pbft", "zyzzyva", "poe"),
                     default="pbft")
    run.add_argument("--replicas", type=int, default=16)
    run.add_argument("--clients", type=int, default=8_000)
    run.add_argument("--client-groups", type=int, default=8)
    run.add_argument("--batch-size", type=int, default=100)
    run.add_argument("--batch-threads", type=int, default=2)
    run.add_argument("--execute-threads", type=int, default=1)
    run.add_argument("--ops-per-txn", type=int, default=1)
    run.add_argument("--cores", type=int, default=8)
    run.add_argument("--storage", choices=("memory", "sqlite"),
                     default="memory")
    run.add_argument("--client-scheme", default="ed25519",
                     choices=("none", "ed25519", "rsa", "cmac-aes"))
    run.add_argument("--replica-scheme", default="cmac-aes",
                     choices=("none", "ed25519", "rsa", "cmac-aes"))
    run.add_argument("--crash-backups", type=int, default=0)
    run.add_argument("--warmup-ms", type=float, default=120)
    run.add_argument("--measure-ms", type=float, default=200)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--records", type=int, default=60_000)
    run.add_argument("--full-fidelity", action="store_true",
                     help="real auth tokens + real state application")

    figure = commands.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("figure_id", help="e.g. fig10 (see list-figures)")

    commands.add_parser("list-figures", help="list regenerable figures")
    return parser


def _figure_registry():
    from repro.bench import experiments

    return {
        name.split("_")[0]: getattr(experiments, name)
        for name in dir(experiments)
        if name.startswith("fig")
    }


def _command_run(args) -> int:
    config = SystemConfig(
        protocol=args.protocol,
        num_replicas=args.replicas,
        num_clients=args.clients,
        client_groups=args.client_groups,
        batch_size=args.batch_size,
        batch_threads=args.batch_threads,
        execute_threads=args.execute_threads,
        ops_per_txn=args.ops_per_txn,
        cores_per_replica=args.cores,
        storage_backend=args.storage,
        client_scheme=args.client_scheme,
        replica_scheme=args.replica_scheme,
        ycsb_records=args.records,
        warmup=millis(args.warmup_ms),
        measure=millis(args.measure_ms),
        seed=args.seed,
        real_auth_tokens=args.full_fidelity,
        apply_state=args.full_fidelity,
    )
    system = ResilientDBSystem(config)
    try:
        if args.crash_backups:
            system.crash_replicas(args.crash_backups)
        result = system.run()
    finally:
        system.close()
    print(result.summary())
    print(f"ops/s:        {result.throughput_ops_per_s / 1e3:.1f}K")
    print(f"messages:     {result.messages_sent} "
          f"({result.bytes_sent / 1e6:.1f} MB)")
    print(f"chain height: {result.chain_height} "
          f"(stable checkpoint {result.stable_checkpoint})")
    print("primary saturation:")
    for stage, value in sorted(result.primary_saturation.items()):
        print(f"  {stage:<12} {value * 100:5.1f}%")
    return 0


def _command_figure(figure_id: str) -> int:
    registry = _figure_registry()
    fn = registry.get(figure_id)
    if fn is None:
        print(f"unknown figure {figure_id!r}; available: "
              f"{', '.join(sorted(registry))}", file=sys.stderr)
        return 2
    fn().print()
    return 0


def _command_list() -> int:
    for figure_id, fn in sorted(_figure_registry().items()):
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{figure_id:>8}  {doc}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "figure":
        return _command_figure(args.figure_id)
    return _command_list()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
