"""Figure 18: multi-primary concurrent consensus (RCC-style) scaling.

Paper §6 argues a single primary's outgoing bandwidth caps throughput and
points at concurrent-primary designs (RCC) as the fix.  This figure runs
m ∈ {1, 2, 3, 4} concurrent PBFT instances at 16 replicas: throughput
should climb ~m-fold through m=3, and crashing one instance's primary
must not wedge the deterministic round-robin merge — the sick lane
view-changes while the healthy lanes keep the chain growing.
"""

from repro.bench import fig18_rcc_scaling


def test_fig18_rcc_scaling(benchmark, record_figure):
    figure = benchmark.pedantic(fig18_rcc_scaling, rounds=1, iterations=1)
    record_figure(figure)
    fault_free = dict(
        zip(
            figure.get("RCC fault-free").xs(),
            figure.get("RCC fault-free").throughputs(),
        )
    )
    # shape: adding instances adds throughput, monotonically through m=3
    assert fault_free[2] > fault_free[1]
    assert fault_free[3] > fault_free[2]
    # and the scaling is substantial, not marginal (ideal m=3 is 3x)
    assert fault_free[3] > 2.0 * fault_free[1]

    # the crash run completes without wedging: the dead lane view-changes,
    # retransmitted requests re-route into live lanes, and the merge keeps
    # executing long past the 20ms crash — visible as a chain far taller
    # than the ~60-block pre-crash prefix
    crashed = figure.get("RCC m=2, lane-1 primary crashed").points[0]
    assert crashed.throughput_txns_per_s > 0
    assert crashed.extra["chain_height"] > 150
