"""Deterministic randomness for simulations.

All stochastic choices (Zipfian keys, jittered client think times, fault
timing) flow through a single seeded generator per simulation, so a
(config, seed) pair fully determines the run.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A thin wrapper over :class:`random.Random` with helpers used by the
    workload generators."""

    __slots__ = ("seed", "_random")

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRNG":
        """Derive an independent child stream (stable under reordering of
        unrelated draws — each subsystem forks its own stream).

        Uses a keyed blake2b rather than builtin ``hash`` so the derived
        seed does not depend on ``PYTHONHASHSEED``.
        """
        import hashlib

        digest = hashlib.blake2b(
            f"{self.seed}:{label}".encode("utf-8"), digest_size=8
        ).digest()
        return DeterministicRNG(int.from_bytes(digest, "big"))

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def random(self) -> float:
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        return self._random.sample(items, count)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def getrandbits(self, bits: int) -> int:
        return self._random.getrandbits(bits)
