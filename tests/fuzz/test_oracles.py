"""Pure-data oracle units: the fuzzer-specific checkers and gating rules.

The shared invariant checkers live in ``repro.consensus.safety`` and are
unit-tested in ``tests/consensus/test_safety_oracles.py``; here we pin
the fuzz-layer pieces: the client-reply cross-check and the rules that
decide which oracles apply to a given scenario.
"""

import pytest

from repro.consensus.safety import SafetyViolation
from repro.fuzz.oracles import (
    _liveness_applicable,
    _speculative_split_possible,
    check_client_replies,
)
from repro.fuzz.scenario import FaultEvent, Scenario

LOGS = {
    "r0": [(1, "dA"), (2, "dB")],
    "r1": [(1, "dA"), (2, "dB")],
    "r2": [(1, "dA")],
}


def test_matching_completions_pass_and_count():
    completions = [(100, 1, "dA"), (101, 2, "dB")]
    assert check_client_replies(completions, LOGS) == 2


def test_pending_completions_are_skipped():
    # a request still in flight has no (sequence, digest) yet
    assert check_client_replies([(100, None, None)], LOGS) == 0


def test_sequence_nobody_executed_is_a_violation():
    with pytest.raises(SafetyViolation, match="sequence 9"):
        check_client_replies([(100, 9, "dA")], LOGS)


def test_digest_no_honest_replica_executed_is_a_violation():
    with pytest.raises(SafetyViolation, match="'dEvil'"):
        check_client_replies([(100, 1, "dEvil")], LOGS)


def test_faulty_logs_cannot_vouch_for_a_reply():
    logs = {"r0": [(1, "dA")], "r1": [(1, "dEvil")]}
    assert check_client_replies([(100, 1, "dEvil")], logs) == 1
    with pytest.raises(SafetyViolation):
        check_client_replies([(100, 1, "dEvil")], logs, faulty=("r1",))


def test_any_honest_log_may_vouch():
    # speculative logs legally diverge; a reply matching either honest
    # execution is fine (inter-replica agreement is a different oracle)
    logs = {"r0": [(1, "dA")], "r1": [(1, "dB")]}
    assert check_client_replies([(100, 1, "dA"), (101, 1, "dB")], logs) == 2


# ----------------------------------------------------------------------
# oracle gating
# ----------------------------------------------------------------------
_TWO_FACED = FaultEvent(kind="byzantine", target="r0",
                        policy="two-faced-primary")


def test_speculative_split_needs_speculation_and_equivocation():
    assert _speculative_split_possible(
        Scenario(protocol="zyzzyva", events=(_TWO_FACED,))
    )
    assert _speculative_split_possible(
        Scenario(protocol="poe", events=(_TWO_FACED,))
    )
    # PBFT never executes before agreement: divergence is always a bug
    assert not _speculative_split_possible(
        Scenario(protocol="pbft", events=(_TWO_FACED,))
    )
    # a non-equivocating fault cannot legally split speculative logs
    assert not _speculative_split_possible(
        Scenario(
            protocol="zyzzyva",
            events=(FaultEvent(kind="byzantine", target="r1",
                               policy="conflicting-voter"),),
        )
    )


def test_liveness_gated_off_outside_the_contract():
    assert _liveness_applicable(Scenario())
    crash_backup = FaultEvent(kind="crash", target="r1", at_ms=30.0)
    assert _liveness_applicable(Scenario(events=(crash_backup,)))
    # dropped messages are never retransmitted
    drop = FaultEvent(kind="drop-link", src="r1", dst="r2", probability=0.5)
    assert not _liveness_applicable(Scenario(events=(crash_backup, drop)))
    # more than f faults voids the BFT guarantee
    two_crashes = (crash_backup, FaultEvent(kind="crash", target="r2"))
    assert not _liveness_applicable(Scenario(events=two_crashes))
    # a faulted view-0 primary can stall view 0; the view-change rescue
    # operates beyond the fuzz window
    assert not _liveness_applicable(Scenario(events=(_TWO_FACED,)))
    # injected defects are allowed to wedge the deployment
    assert not _liveness_applicable(Scenario(bug="weak-commit-quorum"))
