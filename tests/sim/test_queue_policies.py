"""Bounded-queue back-pressure policies: block, shed_oldest, reject."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.queues import SimPriorityQueue, SimQueue


# ----------------------------------------------------------------------
# offer(): the non-blocking, policy-aware producer path
# ----------------------------------------------------------------------
def test_offer_within_capacity_accepts():
    sim = Simulator()
    queue = SimQueue(sim, "q", capacity=2, policy="reject")
    assert queue.offer("a") is True
    assert queue.offer("b") is True
    assert queue.depth == 2


def test_reject_policy_refuses_at_capacity():
    sim = Simulator()
    queue = SimQueue(sim, "q", capacity=1, policy="reject")
    assert queue.offer("a") is True
    assert queue.offer("b") is False
    assert queue.rejected_total == 1
    # the refused item left no trace in the queue
    assert queue.get_nowait() == "a"
    assert queue.depth == 0


def test_shed_oldest_evicts_head_and_reports_victim():
    sim = Simulator()
    victims = []
    queue = SimQueue(
        sim, "q", capacity=2, policy="shed_oldest", on_shed=victims.append
    )
    for item in ("a", "b", "c", "d"):
        assert queue.offer(item) is True
    assert victims == ["a", "b"]
    assert queue.shed_total == 2
    # drop-from-head preserves FIFO order of the survivors
    assert [queue.get_nowait(), queue.get_nowait()] == ["c", "d"]


def test_block_policy_offer_overflows_like_put_nowait():
    sim = Simulator()
    queue = SimQueue(sim, "q", capacity=1, policy="block")
    queue.offer("a")
    with pytest.raises(OverflowError):
        queue.offer("b")


# ----------------------------------------------------------------------
# yield queue.put(item): the process-context producer path
# ----------------------------------------------------------------------
def test_block_policy_parks_producer_until_capacity_frees():
    sim = Simulator()
    queue = SimQueue(sim, "q", capacity=1, policy="block")
    queue.put_nowait("first")
    log = []

    def producer():
        accepted = yield queue.put("second")
        log.append(("accepted", accepted, sim.now))

    def consumer():
        yield 10
        item = queue.get_nowait()
        log.append(("got", item, sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    # the producer parked at t=0 and only resumed once the consumer made
    # room at t=10; the parked item then entered the queue
    assert ("got", "first", 10) in log
    assert ("accepted", True, 10) in log
    assert queue.get_nowait() == "second"


def test_reject_policy_put_resumes_with_false():
    sim = Simulator()
    queue = SimQueue(sim, "q", capacity=1, policy="reject")
    queue.put_nowait("first")
    outcomes = []

    def producer(item):
        accepted = yield queue.put(item)
        outcomes.append((item, accepted))

    sim.spawn(producer("second"))
    sim.run()
    assert outcomes == [("second", False)]
    assert queue.depth == 1


def test_shed_oldest_put_always_accepts():
    sim = Simulator()
    victims = []
    queue = SimQueue(
        sim, "q", capacity=1, policy="shed_oldest", on_shed=victims.append
    )
    queue.put_nowait("old")
    outcomes = []

    def producer():
        accepted = yield queue.put("new")
        outcomes.append(accepted)

    sim.spawn(producer())
    sim.run()
    assert outcomes == [True]
    assert victims == ["old"]
    assert queue.get_nowait() == "new"


def test_waiting_consumer_woken_by_policy_put():
    sim = Simulator()
    queue = SimQueue(sim, "q", capacity=1, policy="reject")
    received = []

    def consumer():
        item = yield queue.get()
        received.append((item, sim.now))

    def producer():
        yield 5
        accepted = yield queue.put("x")
        assert accepted

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert received == [("x", 5)]


def test_multiple_blocked_producers_wake_in_fifo_order():
    sim = Simulator()
    queue = SimQueue(sim, "q", capacity=1, policy="block")
    queue.put_nowait("seed")
    order = []

    def producer(item):
        yield queue.put(item)
        order.append(item)

    def consumer():
        for _ in range(3):
            yield 10
            queue.get_nowait()

    sim.spawn(producer("p1"))
    sim.spawn(producer("p2"))
    sim.spawn(consumer())
    sim.run()
    assert order == ["p1", "p2"]


# ----------------------------------------------------------------------
# priority queue: the bound applies to low-priority traffic only
# ----------------------------------------------------------------------
def test_priority_queue_never_bounds_protocol_traffic():
    sim = Simulator()
    queue = SimPriorityQueue(sim, "pq", capacity=2, policy="reject")
    # low-priority (client) items fill the capacity...
    assert queue.offer("c1", priority=1) is True
    assert queue.offer("c2", priority=1) is True
    assert queue.offer("c3", priority=1) is False
    # ...but protocol messages (priority 0) are always admitted
    for i in range(5):
        assert queue.offer(f"m{i}", priority=0) is True
    assert queue.depth == 7


def test_priority_queue_sheds_oldest_of_worst_class():
    sim = Simulator()
    victims = []
    queue = SimPriorityQueue(
        sim, "pq", capacity=2, policy="shed_oldest", on_shed=victims.append
    )
    queue.offer("m0", priority=0)
    queue.offer("c1", priority=1)
    queue.offer("c2", priority=1)
    assert queue.offer("c3", priority=1) is True
    # the oldest *low-priority* item went, never the protocol message
    assert victims == ["c1"]
    drained = [queue.get_nowait() for _ in range(queue.depth)]
    assert drained == ["m0", "c2", "c3"]


def test_priority_queue_block_put_parks_low_priority_only():
    sim = Simulator()
    queue = SimPriorityQueue(sim, "pq", capacity=1, policy="block")
    queue.put_nowait("c1", priority=1)
    log = []

    def low_producer():
        accepted = yield queue.put("c2", priority=1)
        log.append(("low", accepted, sim.now))

    def high_producer():
        accepted = yield queue.put("m1", priority=0)
        log.append(("high", accepted, sim.now))

    def consumer():
        yield 7
        queue.get_nowait()  # pops m1 (priority 0): low capacity still full
        yield 7
        queue.get_nowait()  # pops c1: a low-priority slot frees

    sim.spawn(low_producer())
    sim.spawn(high_producer())
    sim.spawn(consumer())
    sim.run()
    # the protocol put resolved immediately; the client put waited until a
    # low-priority slot (not just any slot) freed up
    assert ("high", True, 0) in log
    assert ("low", True, 14) in log


def test_shed_and_reject_counters_in_stats():
    sim = Simulator()
    queue = SimQueue(sim, "q", capacity=1, policy="shed_oldest")
    queue.offer("a")
    queue.offer("b")
    stats = queue.stats()
    assert stats["shed"] == 1
    assert stats["rejected"] == 0
    queue.policy = "reject"
    assert queue.offer("c") is False
    assert queue.stats()["rejected"] == 1
