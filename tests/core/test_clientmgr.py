"""Tests for the closed-loop client manager."""


from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis, seconds


def test_closed_loop_keeps_in_flight_constant(small_config):
    system = ResilientDBSystem(small_config)
    system.run()
    for group in system.client_groups:
        # every logical client has exactly one request outstanding
        assert len(group.pending) == group.logical_clients


def test_clients_split_across_groups():
    config = SystemConfig(
        num_replicas=4,
        num_clients=10,
        client_groups=3,
        batch_size=4,
        ycsb_records=100,
        warmup=millis(10),
        measure=millis(20),
    )
    system = ResilientDBSystem(config)
    sizes = [group.logical_clients for group in system.client_groups]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1


def test_request_ids_unique_per_group(small_config):
    system = ResilientDBSystem(small_config)
    system.run()
    group = system.client_groups[0]
    assert group.next_request_id >= group.completed_requests


def test_latency_recorded_per_completion(small_config):
    system = ResilientDBSystem(small_config)
    result = system.run()
    histogram = system.metrics.histogram("request_latency")
    assert histogram.count == result.completed_requests
    assert histogram.mean_seconds() > 0


def test_pbft_retransmission_reaches_new_primary():
    """Crash the primary: without retransmission clients stall forever;
    with it, requests reach the new primary after the view change."""
    config = SystemConfig(
        num_replicas=4,
        num_clients=16,
        client_groups=2,
        batch_size=4,
        ycsb_records=200,
        warmup=millis(20),
        measure=seconds(4),
        view_change_timeout=millis(200),
        client_retransmit=millis(400),
    )
    system = ResilientDBSystem(config)
    system.crash_primary(at_ns=millis(100))
    result = system.run()
    assert result.completed_requests > 0
    # survivors moved to view 1
    for rid in ("r1", "r2", "r3"):
        assert system.replicas[rid].engine.view >= 1
    system.validate_safety()


def test_zyzzyva_timeout_is_harmless_when_healthy(small_config):
    config = small_config.with_options(
        protocol="zyzzyva", zyzzyva_client_timeout=millis(5)
    )
    system = ResilientDBSystem(config)
    result = system.run()
    # responses normally beat even a tight timer at this scale; any that
    # don't still complete through the certificate path
    assert result.completed_requests > 100
    system.validate_safety()


def test_group_workloads_are_independent_streams(small_config):
    system = ResilientDBSystem(small_config)
    keys_per_group = []
    for group in system.client_groups[:2]:
        txn = group.workload.next_transaction(group.name)
        keys_per_group.append(txn.ops[0].key)
    # different RNG forks -> almost surely different first keys
    assert keys_per_group[0] != keys_per_group[1]
