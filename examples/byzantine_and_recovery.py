#!/usr/bin/env python3
"""Living with the adversary: byzantine behaviours and crash recovery.

The paper's threat model is byzantine (§2.1) but its experiments only
crash replicas.  This demo goes further on both axes the fabric supports:

1. actively malicious replicas — an equivocating primary and vote
   corrupters — with safety checked afterwards, and
2. a crash + state-transfer recovery cycle (§4.7's first checkpoint
   purpose: "help a failed replica to update itself to the current
   state").

    python examples/byzantine_and_recovery.py
"""

from repro.core import ResilientDBSystem, SystemConfig
from repro.sim.clock import millis


def base_config() -> SystemConfig:
    return SystemConfig(
        num_replicas=7,  # f = 2
        num_clients=64,
        client_groups=4,
        batch_size=8,
        ycsb_records=1_000,
        warmup=millis(50),
        measure=millis(400),
        trace=True,
    )


def main() -> None:
    print("=== byzantine replicas (n=7, f=2) ===\n")

    print("-- two vote-corrupting replicas --")
    system = ResilientDBSystem(base_config())
    system.make_byzantine("r5", "conflicting-voter")
    system.make_byzantine("r6", "conflicting-voter")
    result = system.run()
    prefix = system.validate_safety(faulty=("r5", "r6"))
    print(f"throughput {result.throughput_txns_per_s / 1e3:.1f}K txns/s; "
          f"honest replicas agree on {prefix} batches ✓")
    print("corrupted votes were bucketed by digest and never counted\n")

    print("-- an equivocating primary --")
    # split proposals stall agreement (neither half can reach 2f prepares),
    # so give the replicas a fast view-change timer and let clients
    # retransmit: the honest view-1 primary restores liveness
    config = base_config().with_options(
        view_change_timeout=millis(150),
        client_retransmit=millis(250),
        measure=millis(800),
    )
    system = ResilientDBSystem(config)
    system.make_byzantine("r0", "equivocating-primary")
    system.run()
    prefix = system.validate_safety(faulty=("r0",))
    rejected = sum(
        replica.invalid_messages
        for rid, replica in system.replicas.items() if rid != "r0"
    )
    views = {system.replicas[f"r{i}"].engine.view for i in range(1, 7)}
    print(f"backups re-hash every proposed batch (§4.3): {rejected} forged "
          f"proposals rejected")
    print(f"the stalled view was abandoned (surviving views: {views}); the "
          f"honest new primary restored progress: {prefix} batches agreed ✓\n")

    print("=== crash + state-transfer recovery (§4.7) ===\n")
    config = base_config().with_options(measure=millis(700))
    system = ResilientDBSystem(config)
    system.faults.crash_at("r6", millis(120))
    system.recover_replica("r6", at_ns=millis(350))
    system.run()
    recovered = system.replicas["r6"]
    healthy = system.replicas["r1"]
    print(f"r6 crashed at 120ms, healed at 350ms")
    print(f"recoveries completed: {recovered.recoveries_completed}")
    print(f"executed batches — recovered r6: {len(recovered.executed_log)}, "
          f"healthy r1: {len(healthy.executed_log)}")
    for record in system.tracer.records(category="recovery"):
        print(f"  trace: {record.format()}")
    system.validate_safety()
    print("safety held across crash, transfer and catch-up ✓")


if __name__ == "__main__":
    main()
