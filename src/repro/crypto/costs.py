"""Calibrated cost table for cryptographic operations.

All values are simulated nanoseconds on one core of the paper's testbed
(8-core Intel Xeon Cascade Lake @ 3.8 GHz).  Sources for the calibration:

* ED25519: vanilla libsodium verifies in ~35–60 µs, but a system that
  sustains 175K client-signature verifications per second on two
  batch-threads (the paper's headline, §5.2) is necessarily running an
  AVX2 batch-verification implementation (ed25519-donna / zedwick-style
  batching amortises to ~10–14 µs per signature).  We calibrate to that
  effective rate — it is the only setting consistent with the paper's own
  throughput and Fig. 9's batch-thread saturation.
* RSA-2048 (OpenSSL): ~1.4–1.7 ms private-key sign, ~30–45 µs verify.
  The enormous sign/verify asymmetry is what produces the paper's "RSA
  costs 125× more latency than CMAC+ED25519" observation.
* CMAC-AES / HMAC with AES-NI: sub-microsecond for protocol-sized messages,
  plus a small per-byte term.
* SHA-256: ~1 ns/byte bulk plus a fixed setup cost.

The absolute numbers matter less than the ratios; EXPERIMENTS.md checks
that the *shape* of Fig. 13 (none > CMAC+ED25519 > ED25519 > RSA) and the
summary multipliers hold.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CryptoCosts:
    """Per-operation simulated costs, in nanoseconds (per-byte terms noted)."""

    # digital signature: ED25519 (batch-verification-amortised, see above)
    ed25519_sign_ns: int = 10_000
    ed25519_verify_ns: int = 10_000

    # digital signature: RSA-2048
    rsa_sign_ns: int = 1_400_000
    rsa_verify_ns: int = 33_000

    # symmetric MAC: CMAC-AES (per token) — fixed + per-byte with AES-NI
    cmac_fixed_ns: int = 450
    cmac_per_byte_ns: float = 0.35

    # hashing: SHA-256 — fixed + per-byte
    sha256_fixed_ns: int = 250
    sha256_per_byte_ns: float = 1.0

    def cmac_ns(self, size_bytes: int) -> int:
        return int(self.cmac_fixed_ns + self.cmac_per_byte_ns * size_bytes)

    def sha256_ns(self, size_bytes: int) -> int:
        return int(self.sha256_fixed_ns + self.sha256_per_byte_ns * size_bytes)


#: Default calibration used by every experiment unless overridden.
DEFAULT_COSTS = CryptoCosts()
