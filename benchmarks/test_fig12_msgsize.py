"""Figure 12: growing the Pre-prepare message 8 KB → 64 KB.

Paper claims: −52% throughput and +1.09× latency from 8 KB to 64 KB; the
network saturates before any thread does (threads go idle).
"""

from repro.bench import fig12_message_size


def test_fig12_message_size(benchmark, record_figure):
    figure = benchmark.pedantic(fig12_message_size, rounds=1, iterations=1)
    record_figure(figure)
    series = figure.get("PBFT 2B 1E")
    by_size = {point.x: point for point in series.points}
    # shape: bigger messages, lower throughput, higher latency
    assert by_size[64].throughput_txns_per_s < by_size[8].throughput_txns_per_s
    assert by_size[64].latency_s > by_size[8].latency_s
    # shape: the drop is substantial (paper: 52%)
    drop = 1 - by_size[64].throughput_txns_per_s / max(
        1.0, by_size[8].throughput_txns_per_s
    )
    assert drop > 0.3
    # shape: at 64 KB the replica threads are less busy than at baseline —
    # the network, not the CPU, is the wall
    assert (
        by_size[64].extra["cumulative_saturation"]
        < by_size[0].extra["cumulative_saturation"]
    )
