"""Tests for the PBFT state machine: normal case, faults, view change."""

import pytest

from repro.consensus import PbftReplica, QuorumConfig
from repro.consensus.messages import Commit, Prepare, PrePrepare
from repro.consensus.safety import check_execution_consistency
from repro.sim.rng import DeterministicRNG

from tests.consensus.harness import Cluster, make_request


# ----------------------------------------------------------------------
# normal case
# ----------------------------------------------------------------------
def test_single_request_commits_everywhere():
    cluster = Cluster(4)
    request = make_request("client0", 1)
    cluster.propose(request)
    cluster.run()
    for rid in cluster.ids:
        assert cluster.executed[rid] == [(1, request.digest)]


def test_many_requests_commit_in_order():
    cluster = Cluster(4)
    requests = [make_request("client0", i) for i in range(1, 11)]
    for request in requests:
        cluster.propose(request)
    cluster.run()
    expected = [(i, requests[i - 1].digest) for i in range(1, 11)]
    for rid in cluster.ids:
        assert cluster.executed[rid] == expected
    check_execution_consistency(cluster.executed)


@pytest.mark.parametrize("n", [4, 7, 16])
def test_commit_at_various_cluster_sizes(n):
    cluster = Cluster(n)
    request = make_request("client0", 1)
    cluster.propose(request)
    cluster.run()
    assert all(len(log) == 1 for log in cluster.executed.values())


def test_reordered_delivery_still_commits():
    """§4.3: the primary may receive Commit before Prepare from a fast
    replica; arbitrary interleavings must still commit safely."""
    rng = DeterministicRNG(5)
    for trial in range(10):
        cluster = Cluster(4)
        requests = [make_request("client0", i) for i in range(1, 6)]
        for request in requests:
            cluster.propose(request)
        # interleave everything pseudo-randomly
        while cluster.wire:
            cluster.shuffle_wire(rng)
            cluster.deliver_one()
        check_execution_consistency(cluster.executed)
        assert all(len(log) == 5 for log in cluster.executed.values())


def test_out_of_order_consensus_ordered_execution():
    """Consensus for sequence 2 may finish first; execution still runs 1,2."""
    cluster = Cluster(4)
    first = make_request("client0", 1)
    second = make_request("client0", 2)
    cluster.propose(first, sequence=1)
    cluster.propose(second, sequence=2)
    # deliver all messages for sequence 2 first
    cluster.wire = type(cluster.wire)(
        [e for e in cluster.wire if e[2].sequence == 2]
        + [e for e in cluster.wire if e[2].sequence == 1]
    )
    cluster.run()
    for rid in cluster.ids:
        assert [s for s, _ in cluster.executed[rid]] == [1, 2]


def test_commit_proof_carries_quorum():
    cluster = Cluster(4)
    request = make_request("client0", 1)
    cluster.propose(request)
    cluster.run()
    # check on the engine state instead: every slot committed with 2f+1 votes
    for rid, replica in cluster.replicas.items():
        slot = replica.slots[1]
        assert slot.committed
        assert len(slot.commits[request.digest]) >= cluster.quorum.commit_quorum


# ----------------------------------------------------------------------
# fault tolerance (crash)
# ----------------------------------------------------------------------
def test_commits_with_f_crashed_backups():
    cluster = Cluster(4)
    cluster.crashed.add("r3")  # f = 1
    request = make_request("client0", 1)
    cluster.propose(request)
    cluster.run()
    live = [rid for rid in cluster.ids if rid not in cluster.crashed]
    for rid in live:
        assert cluster.executed[rid] == [(1, request.digest)]


def test_no_commit_with_more_than_f_crashes():
    cluster = Cluster(4)
    cluster.crashed.update({"r2", "r3"})  # 2 > f = 1
    request = make_request("client0", 1)
    cluster.propose(request)
    cluster.run()
    for rid in cluster.ids:
        assert cluster.executed[rid] == []


def test_16_replicas_tolerate_5_failures():
    cluster = Cluster(16)
    for rid in ("r11", "r12", "r13", "r14", "r15"):
        cluster.crashed.add(rid)
    request = make_request("client0", 1)
    cluster.propose(request)
    cluster.run()
    live = [rid for rid in cluster.ids if rid not in cluster.crashed]
    assert all(cluster.executed[rid] == [(1, request.digest)] for rid in live)


# ----------------------------------------------------------------------
# byzantine behaviour
# ----------------------------------------------------------------------
def test_forged_preprepare_from_backup_rejected():
    cluster = Cluster(4)
    request = make_request("client0", 1)
    forged = PrePrepare("r1", 0, 1, request.digest, request)  # r1 is not primary
    actions = cluster.replicas["r2"].handle_preprepare(forged)
    assert actions == []
    assert cluster.replicas["r2"].rejected_messages == 1


def test_primary_prepare_vote_rejected():
    cluster = Cluster(4)
    message = Prepare("r0", 0, 1, "digest")  # r0 is the primary
    actions = cluster.replicas["r1"].handle_prepare(message)
    assert actions == []


def test_equivocating_digest_votes_do_not_mix():
    """A byzantine replica voting for a different digest must not help the
    honest digest reach quorum."""
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PbftReplica("r1", ids, quorum)
    request = make_request("client0", 1)
    replica.handle_preprepare(PrePrepare("r0", 0, 1, request.digest, request))
    # r2 votes honestly; byzantine r3 votes for another digest
    replica.handle_prepare(Prepare("r2", 0, 1, request.digest))
    replica.handle_prepare(Prepare("r3", 0, 1, "evil-digest"))
    slot = replica.slots[1]
    assert not slot.sent_commit or len(slot.prepares[request.digest]) >= 2
    # honest digest has exactly 2 votes (self + r2) = 2f, so commit fires;
    # the point is the evil vote sits in a separate bucket
    assert slot.prepares["evil-digest"] == {"r3"}


def test_duplicate_votes_counted_once():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PbftReplica("r0", ids, quorum)  # primary
    request = make_request("client0", 1)
    replica.make_preprepare(1, request.digest, request)
    for _ in range(5):
        replica.handle_prepare(Prepare("r1", 0, 1, request.digest))
    slot = replica.slots[1]
    assert len(slot.prepares[request.digest]) == 1
    assert not slot.sent_commit


def test_commit_quorum_requires_2f_plus_1():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PbftReplica("r1", ids, quorum)
    request = make_request("client0", 1)
    replica.handle_preprepare(PrePrepare("r0", 0, 1, request.digest, request))
    replica.handle_prepare(Prepare("r2", 0, 1, request.digest))  # prepared now
    assert replica.slots[1].sent_commit
    # own commit + r2's = 2 votes: not enough
    replica.handle_commit(Commit("r2", 0, 1, request.digest))
    assert not replica.slots[1].committed
    replica.handle_commit(Commit("r0", 0, 1, request.digest))
    assert replica.slots[1].committed


def test_equivocating_primary_first_proposal_wins():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PbftReplica("r1", ids, quorum)
    request_a = make_request("client0", 1)
    request_b = make_request("client0", 2)
    replica.handle_preprepare(PrePrepare("r0", 0, 1, request_a.digest, request_a))
    replica.handle_preprepare(PrePrepare("r0", 0, 1, request_b.digest, request_b))
    assert replica.slots[1].digest == request_a.digest
    assert replica.rejected_messages == 1


def test_wrong_view_messages_rejected():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PbftReplica("r1", ids, quorum)
    request = make_request("client0", 1)
    # view 3 has primary r3
    assert replica.handle_preprepare(
        PrePrepare("r3", 3, 1, request.digest, request)
    ) == []
    assert replica.handle_prepare(Prepare("r2", 3, 1, request.digest)) == []
    assert replica.handle_commit(Commit("r2", 3, 1, request.digest)) == []


def test_sequence_window_rejects_far_future():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PbftReplica("r1", ids, quorum, sequence_window=10)
    request = make_request("client0", 1)
    actions = replica.handle_preprepare(
        PrePrepare("r0", 0, 999, request.digest, request)
    )
    assert actions == []


# ----------------------------------------------------------------------
# checkpoint GC integration
# ----------------------------------------------------------------------
def test_advance_stable_garbage_collects_slots():
    cluster = Cluster(4)
    for i in range(1, 6):
        cluster.propose(make_request("client0", i))
    cluster.run()
    replica = cluster.replicas["r0"]
    assert len(replica.slots) == 5
    dropped = replica.advance_stable(3)
    assert dropped == 3
    assert sorted(replica.slots) == [4, 5]
    assert replica.advance_stable(3) == 0  # idempotent


# ----------------------------------------------------------------------
# view change
# ----------------------------------------------------------------------
def test_view_change_replaces_crashed_primary():
    cluster = Cluster(4)
    request = make_request("client0", 1)
    cluster.propose(request)
    cluster.crashed.add("r0")  # primary dies before consensus completes
    cluster.run()
    # no progress: fire timers at the backups
    for rid in ("r1", "r2", "r3"):
        cluster.fire_timer(rid, 1)
    cluster.run()
    for rid in ("r1", "r2", "r3"):
        replica = cluster.replicas[rid]
        assert replica.view == 1
        assert not replica.in_view_change
        assert replica.primary_of(replica.view) == "r1"


def test_view_change_preserves_prepared_request():
    """A request prepared before the view change must commit in the new
    view with the same digest (no forgotten work)."""
    cluster = Cluster(4)
    request = make_request("client0", 1)
    cluster.propose(request)
    # let prepares flow but block commits, so slots prepare everywhere
    # then crash the primary
    commits_blocked = []

    def tamper(src, dst, message):
        if message.kind == "commit":
            commits_blocked.append(message)
            return None
        return message

    cluster.tamper = tamper
    cluster.run()
    cluster.tamper = None
    cluster.crashed.add("r0")
    for rid in ("r1", "r2", "r3"):
        cluster.fire_timer(rid, 1)
    cluster.run()
    for rid in ("r1", "r2", "r3"):
        assert cluster.executed[rid] == [(1, request.digest)], rid
    check_execution_consistency(cluster.executed, faulty=["r0"])


def test_timer_fire_after_commit_is_noop():
    cluster = Cluster(4)
    request = make_request("client0", 1)
    cluster.propose(request)
    cluster.run()
    cluster.fire_timer("r1", 1)
    cluster.run()
    assert cluster.replicas["r1"].view == 0


def test_stale_view_change_rejected():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PbftReplica("r1", ids, quorum)
    from repro.consensus.messages import ViewChange

    stale = ViewChange("r2", 0, 0, ())
    assert replica.handle_view_change(stale) == []
    assert replica.rejected_messages == 1


def test_new_view_from_wrong_primary_rejected():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PbftReplica("r2", ids, quorum)
    from repro.consensus.messages import NewView

    bogus = NewView("r3", 1, ("r0", "r1", "r3"), ())  # view 1 primary is r1
    assert replica.handle_new_view(bogus) == []
    assert replica.rejected_messages == 1


def test_new_view_without_quorum_rejected():
    quorum = QuorumConfig.for_replicas(4)
    ids = ("r0", "r1", "r2", "r3")
    replica = PbftReplica("r2", ids, quorum)
    from repro.consensus.messages import NewView

    thin = NewView("r1", 1, ("r1",), ())
    assert replica.handle_new_view(thin) == []


def test_consensus_continues_after_view_change():
    cluster = Cluster(4)
    cluster.propose(make_request("client0", 1))
    cluster.crashed.add("r0")
    cluster.run()
    for rid in ("r1", "r2", "r3"):
        cluster.fire_timer(rid, 1)
    cluster.run()
    # new primary r1 proposes a fresh request in view 1
    request = make_request("client0", 2)
    primary = cluster.replicas["r1"]
    sequence = max(primary.slots, default=0) + 1
    _msg, actions = primary.make_preprepare(sequence, request.digest, request)
    cluster._apply("r1", actions)
    cluster.run()
    for rid in ("r1", "r2", "r3"):
        assert (sequence, request.digest) in cluster.executed[rid]
