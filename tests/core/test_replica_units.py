"""Unit-level tests of replica internals (no full runs)."""

import pytest

from repro.consensus.base import ExecuteReady
from repro.consensus.messages import ClientRequest, RequestBatch, make_null_batch
from repro.core import ResilientDBSystem
from repro.workloads import Operation, OpType, Transaction


@pytest.fixture
def system(small_config):
    return ResilientDBSystem(small_config)


def make_batch(txns=3):
    request = ClientRequest(
        "client0",
        1,
        tuple(
            Transaction("client0", (Operation(OpType.WRITE, f"k{i}", "v"),))
            for i in range(txns)
        ),
    )
    batch = RequestBatch((request,))
    batch.digest = "d"
    return batch


def test_output_queue_routing_is_stable(system):
    replica = system.replicas["r0"]
    before = [queue.enqueued_total for queue in replica.output_queues]
    replica._enqueue_output("r1", object())
    replica._enqueue_output("r1", object())
    after = [queue.enqueued_total for queue in replica.output_queues]
    # both messages landed on the same queue (per-destination affinity)
    deltas = [b - a for a, b in zip(before, after)]
    assert sorted(deltas) == [0, 2]


def test_enqueue_execute_dedupes(system):
    replica = system.replicas["r0"]
    action = ExecuteReady(sequence=5, view=0, request=make_batch())
    replica._enqueue_execute(action)
    replica._enqueue_execute(action)
    assert list(replica.exec_pending) == [5]
    # already-executed sequences are ignored too
    replica.next_exec_sequence = 10
    replica._enqueue_execute(ExecuteReady(sequence=7, view=0, request=make_batch()))
    assert 7 not in replica.exec_pending


def test_digest_cost_per_batch_cheaper_than_per_request(system):
    replica = system.replicas["r0"]
    requests = tuple(
        ClientRequest(
            "client0",
            i,
            (Transaction("client0", (Operation(OpType.WRITE, "k", "v"),)),),
        )
        for i in range(10)
    )
    batch = RequestBatch(requests)
    per_batch = replica._digest_cost_for(batch)
    replica.config = replica.config.with_options(per_request_digests=True)
    per_request = replica._digest_cost_for(batch)
    assert per_request > per_batch


def test_null_batch_properties():
    batch = make_null_batch()
    assert batch.is_null
    assert batch.txn_count == 0
    assert batch.digest == "null-batch"
    assert batch.batch_bytes() == b""


def test_request_batch_size_accounting():
    batch = make_batch(txns=4)
    assert batch.txn_count == 4
    assert batch.payload_bytes() > 4 * 16
    # batch bytes cached and stable
    assert batch.batch_bytes() is batch.batch_bytes()


def test_current_primary_tracks_engine_view(system):
    replica = system.replicas["r1"]
    assert replica.current_primary() == "r0"
    replica.engine.view = 1
    assert replica.current_primary() == "r1"
    assert replica.is_primary


def test_batch_txns_counts_transactions():
    from repro.core.replica import Replica

    requests = [
        ClientRequest(
            "c", i,
            tuple(
                Transaction("c", (Operation(OpType.WRITE, "k", "v"),))
                for _ in range(3)
            ),
        )
        for i in range(2)
    ]
    assert Replica._batch_txns(requests) == 6


def test_replica_endpoint_and_cpu_registered(system):
    replica = system.replicas["r0"]
    assert replica.endpoint.name == "r0"
    assert replica.cpu.cores == system.config.cores_per_replica
    assert replica.chain.height == 0
    assert replica.next_exec_sequence == 1
