"""repro — a reproduction of "Permissioned Blockchain Through the Looking
Glass" (ICDCS 2020): the ResilientDB fabric, PBFT/Zyzzyva/PoE consensus,
and the paper's full evaluation, on a deterministic discrete-event
simulator.

Public surface — most users need only::

    from repro import ResilientDBSystem, SystemConfig

    result = ResilientDBSystem(SystemConfig(num_replicas=16)).run()
    print(result.summary())

Subpackages:

- :mod:`repro.core` — the fabric: configuration, replicas, clients, runner.
- :mod:`repro.consensus` — PBFT, Zyzzyva and PoE state machines.
- :mod:`repro.sim` — the simulation kernel.
- :mod:`repro.net`, :mod:`repro.storage`, :mod:`repro.crypto`,
  :mod:`repro.workloads` — the substrates.
- :mod:`repro.bench` — one experiment per paper figure.
"""

from repro.core.config import SystemConfig, WorkCosts
from repro.core.system import ExperimentResult, ResilientDBSystem

__version__ = "1.0.0"

__all__ = [
    "ExperimentResult",
    "ResilientDBSystem",
    "SystemConfig",
    "WorkCosts",
    "__version__",
]
