"""The pipelined replica (§4.1–§4.8, Figures 6a/6b).

Each replica runs, as simulated threads competing for its CPU cores:

- ``input-i`` threads: pull messages off the endpoint inbox, classify and
  route them.  At the primary, client requests go to the batch-threads'
  *common queue*; protocol messages go to the worker's queue; checkpoint
  messages to the checkpoint-thread's queue.  Non-primaries forward client
  requests to the current primary.
- ``batch-i`` threads (primary): verify client signatures, assemble up to
  ``batch_size`` transactions into a batch, hash the batch string once,
  hand the batch to the consensus engine (``PrePrepare``/``OrderRequest``)
  and sign the proposal.
- ``worker`` thread: verifies and feeds every protocol message to the
  consensus state machine, signs and emits the resulting votes.
- ``execute`` thread: strictly ordered execution.  Committed batches can
  finish consensus out of order (§4.5); the execute-thread consumes them
  in sequence order by waiting exactly for the next sequence number — the
  simulation-level equivalent of parking on queue ``txn_id % QC`` (§4.6).
  It applies operations to the record store, appends a block certified by
  the 2f+1 commit signatures, answers clients, and emits checkpoints
  every Δ transactions.
- ``checkpoint`` thread: collects checkpoint votes; at 2f+1 identical
  votes it advances the stable checkpoint and garbage-collects old slots
  and blocks (§4.7).
- ``output-i`` threads: drain per-thread send queues onto the NIC, with
  destinations spread across the threads (§4.1).

Setting ``batch_threads=0`` or ``execute_threads=0`` folds those stages
into the worker thread — the degenerate pipelines of the Fig. 8/9 study.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

from repro.consensus.base import (
    Broadcast,
    CancelViewChangeTimer,
    EnterView,
    ExecuteReady,
    ProposalError,
    QuorumConfig,
    SendTo,
    StartViewChangeTimer,
)
from repro.consensus.messages import (
    BusyNack,
    Checkpoint,
    ClientRequest,
    ClientResponse,
    RequestBatch,
    SpecResponse,
)
from repro.flow import AdmissionController, FlowStats
from repro.consensus.pbft import PbftReplica
from repro.consensus.poe import PoeReplica
from repro.consensus.zyzzyva import GENESIS_HISTORY, ZyzzyvaReplica, extend_history
from repro.crypto.hashing import digest_bytes, digest_cost
from repro.multi.coordinator import InstanceCoordinator
from repro.multi.unifier import global_sequence
from repro.net.message import Message
from repro.sim.events import SimEvent, Timer
from repro.sim.queues import SimPriorityQueue, SimQueue
from repro.sim.resources import CpuScheduler
from repro.storage.blockchain import Block, Blockchain, CertificationMode
from repro.storage.bufferpool import BufferPool
from repro.storage.checkpoints import CheckpointStore
from repro.storage.memstore import InMemoryKVStore
from repro.storage.sqlstore import SqliteKVStore
from repro.workloads.transactions import OpType


class Replica:
    """One replica node: pipeline, consensus engine, ledger and state."""

    def __init__(self, system, replica_id: str):
        self.system = system
        self.config = system.config
        self.sim = system.sim
        self.replica_id = replica_id
        config = self.config

        self.endpoint = system.network.register(replica_id)
        self.cpu = CpuScheduler(self.sim, config.cores_per_replica)
        system.metrics.register_resettable(self.cpu)

        # -- consensus engine ------------------------------------------
        quorum = QuorumConfig(n=config.num_replicas, f=config.f)
        self.quorum = quorum
        replica_ids = system.replica_ids
        if config.protocol == "pbft":
            self.engine = PbftReplica(replica_id, replica_ids, quorum)
        elif config.protocol == "zyzzyva":
            self.engine = ZyzzyvaReplica(replica_id, replica_ids, quorum)
        elif config.protocol == "rcc":
            self.engine = InstanceCoordinator(
                replica_id, replica_ids, quorum, config.num_primaries
            )
        else:
            self.engine = PoeReplica(replica_id, replica_ids, quorum)

        # -- overload protection (repro.flow) ---------------------------
        self.flow = FlowStats()
        self.admission = AdmissionController(
            max_inflight=config.admission_max_inflight,
            max_per_client=config.admission_max_per_client,
        )
        #: request keys already placed in a proposal; shedding one of
        #: these would violate the no-shed-after-sequencing invariant
        #: (tripwired in ``_on_batch_shed``)
        self._sequenced_keys: set = set()

        # -- queues between stages --------------------------------------
        policy = config.queue_policy
        self.batch_queue = SimQueue(
            self.sim,
            f"{replica_id}.batch-q",
            capacity=config.batch_queue_capacity,
            policy=policy,
            on_shed=self._on_batch_shed,
        )
        # protocol messages outrank client requests so that, in the 0B
        # degenerate pipeline where the worker also batches, a backlog of
        # unverified client requests cannot starve quorum progress; the
        # capacity bound applies to client requests only
        self.work_queue = SimPriorityQueue(
            self.sim,
            f"{replica_id}.work-q",
            capacity=config.work_queue_capacity,
            policy=policy,
            on_shed=self._on_batch_shed,
        )
        self.checkpoint_queue = SimQueue(
            self.sim,
            f"{replica_id}.ckpt-q",
            capacity=config.checkpoint_queue_capacity,
            policy=policy,
            on_shed=self._on_message_shed,
        )
        # output queues are fed by non-process callers (timers, NACK
        # paths), which cannot park — so the "block" policy leaves them
        # unbounded and back-pressure applies upstream instead
        self.output_queues = [
            SimQueue(
                self.sim,
                f"{replica_id}.out-q{i}",
                capacity=(
                    config.output_queue_capacity if policy != "block" else None
                ),
                policy=policy,
                on_shed=self._on_message_shed,
            )
            for i in range(config.output_threads)
        ]
        if config.inbox_capacity is not None:
            inbox = self.endpoint.inbox
            inbox.capacity = config.inbox_capacity
            inbox.policy = policy
            inbox.on_shed = self._on_inbox_shed

        # -- ordered execution state (§4.6) ------------------------------
        self.exec_pending: Dict[int, ExecuteReady] = {}
        self.next_exec_sequence = 1
        self._exec_event: Optional[SimEvent] = None

        # -- durable state ------------------------------------------------
        if config.storage_backend == "memory":
            self.store = InMemoryKVStore(config.storage_costs)
        else:
            self.store = SqliteKVStore(config.storage_costs)
        self.chain = Blockchain(
            first_primary=replica_ids[0],
            mode=config.certification,
            quorum_size=quorum.commit_quorum,
        )
        self.checkpoints = CheckpointStore(
            quorum_size=quorum.checkpoint_quorum,
            interval=config.checkpoint_batches,
        )
        #: executed (sequence, digest) log, for safety validation
        self.executed_log: List[Tuple[int, str]] = []
        #: checkpoint sequence -> state digest this replica attested to
        #: (the checkpoint-consistency oracle cross-checks these)
        self.checkpoint_digests: Dict[int, str] = {}
        self.state_digest = digest_bytes(b"initial-state")
        self.exec_history_hash = GENESIS_HISTORY  # Zyzzyva history chain

        # -- buffer pools (§4.8): message objects and transaction objects
        self.message_pool = BufferPool(
            object, config.buffer_pool_capacity, enabled=config.buffer_pool
        )
        self.txn_pool = BufferPool(
            object,
            min(config.buffer_pool_capacity * max(1, config.batch_size), 500_000),
            enabled=config.buffer_pool,
        )

        # -- primary-side sequencing ----------------------------------------
        self.next_batch_sequence = 1
        self._seen_requests: set = set()
        #: out-of-order ablation: a capacity-1 token gate (§4.5)
        self._consensus_token: Optional[SimQueue] = None
        if not config.out_of_order:
            self._consensus_token = SimQueue(
                self.sim, f"{replica_id}.token", capacity=1
            )
            self._consensus_token.put_nowait(None)

        # -- timers -------------------------------------------------------
        self._vc_timers: Dict[int, Timer] = {}
        self._forward_probe: Optional[Tuple[int, int]] = None

        # -- statistics ------------------------------------------------------
        self.invalid_messages = 0
        self.forwarded_requests = 0

        #: byzantine behaviour policy (None = honest); transforms outgoing
        #: actions — see :mod:`repro.core.byzantine`
        self.adversary = None

        # -- crash recovery / state transfer (§4.7) -------------------------
        self._recovering = False
        self._recovery_responses: Dict[Tuple[int, str], list] = {}
        self.recoveries_completed = 0

    # ==================================================================
    # lifecycle
    # ==================================================================
    def start(self) -> None:
        """Spawn every pipeline thread."""
        config = self.config
        for i in range(config.input_threads):
            self.sim.spawn(self._input_loop(i), name=f"{self.replica_id}.input-{i}")
        for i in range(config.batch_threads):
            self.sim.spawn(self._batch_loop(i), name=f"{self.replica_id}.batch-{i}")
        if config.consensus_enabled:
            self.sim.spawn(self._worker_loop(), name=f"{self.replica_id}.worker")
            self.sim.spawn(
                self._checkpoint_loop(), name=f"{self.replica_id}.checkpoint"
            )
            if config.execute_threads:
                self.sim.spawn(
                    self._execute_loop(), name=f"{self.replica_id}.execute"
                )
            if isinstance(self.engine, InstanceCoordinator):
                self.sim.spawn(
                    self._balance_loop(), name=f"{self.replica_id}.balance"
                )
        for i in range(config.output_threads):
            self.sim.spawn(self._output_loop(i), name=f"{self.replica_id}.output-{i}")

    @property
    def is_primary(self) -> bool:
        if isinstance(self.engine, InstanceCoordinator):
            return self.engine.leads_any()
        return self.engine.primary_of(self.engine.view) == self.replica_id

    @property
    def committed_watermark(self) -> int:
        """Highest sequence locally committed (handed to execution),
        whether or not the execute-thread has reached it yet."""
        return max(
            self.next_exec_sequence - 1,
            max(self.exec_pending, default=0),
        )

    @property
    def executed_watermark(self) -> int:
        """Highest sequence actually executed, in order."""
        return self.next_exec_sequence - 1

    def current_primary(self) -> str:
        if isinstance(self.engine, InstanceCoordinator):
            # multi-primary: "the" primary is lane 0's (for attribution
            # only; forwarding uses the request's steer lane instead)
            return self.engine.instances[0].primary_of(
                self.engine.instances[0].view
            )
        return self.engine.primary_of(self.engine.view)

    def _forward_target_for(self, request: ClientRequest) -> str:
        """Where a non-leading replica forwards this client request."""
        if isinstance(self.engine, InstanceCoordinator):
            return self.engine.forward_target(request.sender, request.request_id)
        return self.current_primary()

    # ==================================================================
    # input threads (§4.1)
    # ==================================================================
    def _input_loop(self, index: int):
        thread_id = f"{self.replica_id}.input-{index}"
        costs = self.config.work_costs
        inbox = self.endpoint.inbox
        while True:
            message = yield inbox.get()
            yield self.cpu.run(costs.input_dispatch_ns, thread_id)
            kind = message.kind
            if kind == "client-request":
                yield from self._route_client_request(message, thread_id)
            elif kind == "checkpoint":
                accepted = yield from self._stage_put(
                    self.checkpoint_queue, message
                )
                if not accepted:
                    self.flow.shed_messages += 1
            else:
                # protocol messages ride at priority 0, which the work
                # queue's capacity bound never applies to
                self.work_queue.put_nowait(message)

    def _stage_put(self, queue, item, priority: Optional[int] = None):
        """Enqueue ``item`` under the queue's policy from a process
        context; the generator's return value says whether it got in
        (``block`` parks the caller until it does)."""
        if queue.capacity is None:
            if priority is None:
                queue.put_nowait(item)
            else:
                queue.put_nowait(item, priority)
            return True
        if queue.policy == "block":
            if priority is None:
                accepted = yield queue.put(item)
            else:
                accepted = yield queue.put(item, priority)
            return accepted
        if priority is None:
            return queue.offer(item)
        return queue.offer(item, priority)

    def _route_client_request(self, message: ClientRequest, thread_id: str):
        costs = self.config.work_costs
        if not self.config.consensus_enabled:
            # Fig. 7 upper-bound mode: requests go straight to the
            # independent responder threads
            accepted = yield from self._stage_put(self.batch_queue, message)
            if not accepted:
                self._reject_request(message, "queue", admitted=False)
            return
        if not self.is_primary:
            # forward to the current primary (client may not know the view)
            self.forwarded_requests += 1
            self._enqueue_output(self._forward_target_for(message), message)
            # classic PBFT: adopting a forwarded request arms a probe — if
            # the system makes no progress before it fires, the primary is
            # suspected and a view change begins
            self._arm_forward_probe()
            return
        key = (message.sender, message.request_id)
        if key in self._seen_requests:
            return  # client retransmission of an in-flight request
        # admission control runs before anything is recorded, so a NACKed
        # retry re-enters cleanly once the primary has room again
        reason = self.admission.try_admit(message.sender)
        if reason is not None:
            self.flow.rejected_requests += 1
            self._send_busy_nack(message, reason)
            return
        self._seen_requests.add(key)
        spans = self.system.spans
        if spans.enabled:
            spans.stamp(key, "input", self.sim.now)
        yield self.cpu.run(costs.sequence_assign_ns, thread_id)
        if self.config.batch_threads:
            accepted = yield from self._stage_put(self.batch_queue, message)
        else:
            # 0B: the worker batches; client requests ride at low priority
            accepted = yield from self._stage_put(
                self.work_queue, message, priority=1
            )
        if not accepted:
            self._reject_request(message, "queue")

    # ==================================================================
    # overload protection (repro.flow)
    # ==================================================================
    def _reject_request(
        self, message: ClientRequest, reason: str, admitted: bool = True
    ) -> None:
        """A bounded queue refused this request: undo its admission and
        NACK the client so it backs off and retries."""
        self._seen_requests.discard((message.sender, message.request_id))
        if admitted:
            self.admission.release_client(message.sender)
        self.flow.rejected_requests += 1
        self._send_busy_nack(message, reason)

    def _on_batch_shed(self, item) -> None:
        """shed_oldest evicted ``item`` from the batch or work queue."""
        if not isinstance(item, ClientRequest):
            self.flow.shed_messages += 1
            return
        key = (item.sender, item.request_id)
        if key in self._sequenced_keys:
            # must be unreachable: requests gain a sequence number only
            # after leaving these queues — recorded for the oracle
            self.flow.shed_sequenced.append(key)
        self.flow.shed_requests += 1
        self.flow.shed_keys.append(key)
        self._seen_requests.discard(key)
        self.admission.release_client(item.sender)
        self._send_busy_nack(item, "shed")

    def _on_message_shed(self, item) -> None:
        """shed_oldest evicted a non-request item (checkpoint vote or an
        outbound (dst, message) pair) — counted, nothing to NACK."""
        self.flow.shed_messages += 1

    def _on_inbox_shed(self, item) -> None:
        """shed_oldest evicted an undispatched inbound message."""
        self.system.network.dropped_messages += 1
        if isinstance(item, ClientRequest):
            key = (item.sender, item.request_id)
            self.flow.shed_requests += 1
            self.flow.shed_keys.append(key)
            self._send_busy_nack(item, "shed")
        else:
            self.flow.shed_messages += 1

    def _send_busy_nack(self, request: ClientRequest, reason: str) -> None:
        """Tell the client its request was turned away (unsigned — a NACK
        carries no result, only a congestion signal)."""
        nack = BusyNack(
            self.replica_id,
            (request.request_id,),
            reason,
            retry_after_ns=self.config.client_retransmit or 0,
        )
        if isinstance(self.engine, InstanceCoordinator):
            # name the busy lane so RCC clients can steer away from it
            nack.instance = self.engine.steer_instance(
                request.sender, request.request_id
            )
        self.flow.nacks_sent += 1
        self.flow.nacked_keys.add((request.sender, request.request_id))
        self._enqueue_output(request.sender, nack)

    # ==================================================================
    # batch threads (§4.2–§4.3)
    # ==================================================================
    def _batch_loop(self, index: int):
        thread_id = f"{self.replica_id}.batch-{index}"
        if not self.config.consensus_enabled:
            yield from self._upper_bound_loop(thread_id)
            return
        from repro.sim.events import TIMEOUT

        while True:
            first = yield self.batch_queue.get()
            requests = [first]
            # fill the batch; if arrivals stall, the fill deadline bounds
            # how long early requests wait for stragglers
            deadline = self.sim.now + self.config.batch_fill_timeout
            while self._batch_txns(requests) < self.config.batch_size:
                if len(self.batch_queue) > 0:
                    requests.append(self.batch_queue.get_nowait())
                    continue
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    break
                item = yield self.batch_queue.get(timeout=remaining)
                if item is TIMEOUT:
                    break
                requests.append(item)
            yield from self._form_and_propose(requests, thread_id)

    @staticmethod
    def _batch_txns(requests: List[ClientRequest]) -> int:
        return sum(len(request.txns) for request in requests)

    def _form_and_propose(self, requests: List[ClientRequest], thread_id: str):
        """Verify, assemble, digest and propose one consensus batch."""
        config = self.config
        costs = config.work_costs
        client_scheme = self.system.client_scheme
        valid_requests = []
        for request in requests:
            yield self.cpu.run(
                client_scheme.verify_cost(request.wire_bytes()), thread_id
            )
            if config.real_auth_tokens:
                ok, _ = client_scheme.check(
                    request.signable_bytes(), request.auth, request.sender,
                    self.replica_id,
                )
                if not ok:
                    self.invalid_messages += 1
                    self.admission.release_client(request.sender)
                    continue
            valid_requests.append(request)
        if not valid_requests:
            return
        batch = RequestBatch(tuple(valid_requests))
        _obj, alloc_cost = self.message_pool.acquire()
        alloc_cost += self.txn_pool.acquire_bulk(batch.txn_count)
        op_count = sum(
            txn.op_count for request in valid_requests for txn in request.txns
        )
        assembly = (
            costs.batch_fixed_ns
            + costs.batch_per_txn_ns * batch.txn_count
            + costs.batch_per_op_ns * op_count
            + alloc_cost
        )
        yield self.cpu.run(assembly, thread_id)
        yield self.cpu.run(self._digest_cost_for(batch), thread_id)
        batch.digest = digest_bytes(batch.batch_bytes())
        if self._consensus_token is not None:
            yield self._consensus_token.get()  # out-of-order disabled
        if not self.is_primary:
            # view changed while this batch was being formed; forward the
            # raw requests to the new primary
            for request in valid_requests:
                self._enqueue_output(self._forward_target_for(request), request)
            if self._consensus_token is not None:
                self._consensus_token.put_nowait(None)
            return
        if config.protocol == "pbft":
            sequence = self.next_batch_sequence
            self.next_batch_sequence += 1
            proposal, actions = self.engine.make_preprepare(
                sequence, batch.digest, batch
            )
        elif config.protocol == "rcc":
            try:
                proposal, actions = self.engine.propose(batch.digest, batch)
            except ProposalError:
                # every led lane wedged mid-flight (view changes); re-steer
                # the raw requests to their lanes' new primaries
                for request in valid_requests:
                    self._enqueue_output(
                        self._forward_target_for(request), request
                    )
                if self._consensus_token is not None:
                    self._consensus_token.put_nowait(None)
                return
        elif config.protocol == "zyzzyva":
            # the Zyzzyva engine assigns the sequence and extends the
            # primary history hash; charge that hash here
            yield self.cpu.run(
                digest_cost(64, config.crypto_costs), thread_id
            )
            proposal, actions = self.engine.make_order_request(batch.digest, batch)
        else:
            proposal, actions = self.engine.make_propose(batch.digest, batch)
        # the batch now owns a sequence number: these requests are past
        # the point where overload shedding may touch them.  (An RCC
        # proposal's sequence is already the global round-robin slot.)
        for request in valid_requests:
            self._sequenced_keys.add((request.sender, request.request_id))
        self.admission.on_propose(proposal.sequence)
        spans = self.system.spans
        if spans.enabled:
            now = self.sim.now
            keys = tuple(
                (request.sender, request.request_id)
                for request in valid_requests
            )
            for key in keys:
                spans.stamp(key, "batch", now)
            spans.link_batch(proposal.sequence, keys)
            spans.stamp_sequence(proposal.sequence, "propose", now)
        yield from self._dispatch(actions, thread_id)

    def _digest_cost_for(self, batch: RequestBatch) -> int:
        """CPU ns to digest a batch.

        The §4.3 design hashes one string representation of the whole
        batch; the ablation (``per_request_digests``) pays the per-hash
        setup cost once per request plus a combining hash, which is what
        batching was introduced to avoid.
        """
        crypto = self.config.crypto_costs
        total_bytes = len(batch.batch_bytes())
        if not self.config.per_request_digests:
            return digest_cost(total_bytes, crypto)
        per_request = sum(
            digest_cost(request.payload_bytes(), crypto)
            for request in batch.requests
        )
        return per_request + digest_cost(32 * len(batch.requests), crypto)

    # ==================================================================
    # worker thread (§4.3–§4.4)
    # ==================================================================
    _HANDLERS = {
        "pre-prepare": "handle_preprepare",
        "prepare": "handle_prepare",
        "commit": "handle_commit",
        "view-change": "handle_view_change",
        "new-view": "handle_new_view",
        "order-request": "handle_order_request",
        "commit-certificate": "handle_commit_certificate",
        "poe-propose": "handle_propose",
        "poe-support": "handle_support",
        # state transfer is host-level, not engine-level
        "state-request": None,
        "state-response": None,
    }

    #: proposal messages whose batch digest a backup must re-verify
    _PROPOSAL_KINDS = ("pre-prepare", "order-request", "poe-propose")

    #: sentinel a flush timer drops into the work queue so a 0B worker's
    #: partial batch is proposed once the fill deadline passes
    _FLUSH_BATCH = object()

    def _worker_loop(self):
        thread_id = f"{self.replica_id}.worker"
        pending_client_requests: List[ClientRequest] = []
        flush_armed = False
        while True:
            message = yield self.work_queue.get()
            if message is Replica._FLUSH_BATCH:
                flush_armed = False
                if pending_client_requests:
                    batch_requests, pending_client_requests = (
                        pending_client_requests,
                        [],
                    )
                    yield from self._form_and_propose(batch_requests, thread_id)
                continue
            if message.kind == "client-request":
                # 0B pipeline: the worker performs batching itself
                pending_client_requests.append(message)
                if (
                    self._batch_txns(pending_client_requests)
                    >= self.config.batch_size
                ):
                    batch_requests, pending_client_requests = (
                        pending_client_requests,
                        [],
                    )
                    yield from self._form_and_propose(batch_requests, thread_id)
                elif not flush_armed:
                    flush_armed = True
                    Timer(
                        self.sim,
                        self.config.batch_fill_timeout,
                        self.work_queue.put_nowait,
                        Replica._FLUSH_BATCH,
                        0,
                    )
                continue
            yield from self._handle_protocol_message(message, thread_id)
            # 0E pipeline: the worker also executes whatever became ready
            if not self.config.execute_threads:
                yield from self._drain_executions(thread_id)

    def _handle_protocol_message(self, message: Message, thread_id: str):
        config = self.config
        costs = config.work_costs
        scheme = self.system.replica_scheme
        # commit certificates come from clients, signed with their scheme
        if message.kind == "commit-certificate":
            scheme = self.system.client_scheme
        yield self.cpu.run(scheme.verify_cost(message.wire_bytes()), thread_id)
        if config.real_auth_tokens:
            ok, _ = scheme.check(
                message.signable_bytes(), message.auth, message.sender,
                self.replica_id,
            )
            if not ok:
                self.invalid_messages += 1
                return
        yield self.cpu.run(costs.worker_message_ns, thread_id)
        if message.kind == "state-request":
            yield from self._serve_state_transfer(message, thread_id)
            return
        if message.kind == "state-response":
            self._absorb_state_response(message)
            return
        if message.kind in self._PROPOSAL_KINDS:
            # a backup re-hashes the batch string to check the digest —
            # the primary cannot be trusted to have hashed honestly
            batch = message.request
            if not batch.is_null:
                # materialise transaction objects for the batch (§4.8)
                if message.sender != self.replica_id:
                    yield self.cpu.run(
                        self.txn_pool.acquire_bulk(batch.txn_count), thread_id
                    )
                yield self.cpu.run(self._digest_cost_for(batch), thread_id)
                if digest_bytes(batch.batch_bytes()) != message.digest:
                    self.invalid_messages += 1
                    return
        handler_name = self._HANDLERS.get(message.kind)
        if handler_name is None:
            self.invalid_messages += 1
            return
        if self._recovering:
            return  # consensus participation resumes after adoption
        actions = getattr(self.engine, handler_name)(message)
        yield from self._dispatch(actions, thread_id)

    # ==================================================================
    # action dispatch
    # ==================================================================
    def _dispatch(self, actions, thread_id: str, transformed: bool = False):
        if self.adversary is not None and not transformed:
            actions = self.adversary.transform(self, actions)
        for action in actions:
            if isinstance(action, Broadcast):
                spans = self.system.spans
                if spans.enabled and action.message.kind in (
                    "commit",  # PBFT: broadcasting Commit == prepared
                    "poe-support",  # PoE: broadcasting Support == endorsed
                ):
                    sequence = action.message.sequence
                    if isinstance(self.engine, InstanceCoordinator):
                        # lane-local sequence → the global slot spans track
                        sequence = global_sequence(
                            action.message.instance,
                            sequence,
                            self.engine.num_instances,
                        )
                    spans.stamp_sequence(sequence, "prepare", self.sim.now)
                receivers = [
                    rid for rid in self.system.replica_ids if rid != self.replica_id
                ]
                yield from self._sign_and_queue(
                    action.message, receivers, thread_id,
                    scheme=self.system.replica_scheme,
                )
            elif isinstance(action, SendTo):
                scheme = self.system.replica_scheme
                if action.dst not in self.system.replica_set:
                    scheme = self.system.client_scheme
                yield from self._sign_and_queue(
                    action.message, [action.dst], thread_id, scheme=scheme
                )
            elif isinstance(action, ExecuteReady):
                self._enqueue_execute(action)
                if not self.config.execute_threads:
                    yield from self._drain_executions(thread_id)
            elif isinstance(action, StartViewChangeTimer):
                self._arm_vc_timer(action.sequence)
            elif isinstance(action, CancelViewChangeTimer):
                timer = self._vc_timers.pop(action.sequence, None)
                if timer is not None:
                    timer.cancel()
            elif isinstance(action, EnterView):
                self._on_enter_view(action.view)
            else:  # pragma: no cover - future action types
                raise TypeError(f"unhandled action {action!r}")

    def _sign_and_queue(self, message, receivers, thread_id, scheme):
        yield self.cpu.run(
            scheme.sign_cost(message.wire_bytes(), len(receivers)), thread_id
        )
        if self.config.real_auth_tokens:
            message.auth, _ = scheme.authenticate(
                message.signable_bytes(), self.replica_id, receivers
            )
        for dst in receivers:
            self._enqueue_output(dst, message)

    def _enqueue_output(self, dst: str, message) -> None:
        index = zlib.crc32(dst.encode("utf-8")) % len(self.output_queues)
        queue = self.output_queues[index]
        if queue.capacity is None:
            queue.put_nowait((dst, message))
        elif not queue.offer((dst, message)):
            self.flow.shed_messages += 1

    # ==================================================================
    # multi-primary (RCC) lane balancing
    # ==================================================================
    def _balance_loop(self):
        """Periodic skip-certificate pass for the lanes this replica
        leads: commits null batches into lanes that fell behind the
        round-robin merge, so one idle or failed lane cannot wedge the
        global execution order.  Runs through quiescence too — that is
        what levels the lanes after the workload stops."""
        from repro.sim.events import Timeout

        thread_id = f"{self.replica_id}.worker"
        interval = max(1, self.config.rcc_balance_interval)
        while True:
            yield Timeout(interval)
            if self._recovering:
                continue
            actions = self.engine.balance_actions()
            if actions:
                yield from self._dispatch(actions, thread_id)

    # ==================================================================
    # view-change timers
    # ==================================================================
    def _arm_vc_timer(self, sequence: int) -> None:
        if sequence in self._vc_timers:
            return
        self._vc_timers[sequence] = Timer(
            self.sim, self.config.view_change_timeout, self._on_vc_timeout, sequence
        )

    def _on_vc_timeout(self, sequence: int) -> None:
        self._vc_timers.pop(sequence, None)
        if not isinstance(self.engine, (PbftReplica, InstanceCoordinator)):
            return
        actions = self.engine.on_view_change_timeout(sequence)
        if actions:
            self.sim.spawn(
                self._dispatch(actions, f"{self.replica_id}.worker"),
                name=f"{self.replica_id}.vc-dispatch",
            )

    def _arm_forward_probe(self) -> None:
        if self._forward_probe is not None or not isinstance(
            self.engine, (PbftReplica, InstanceCoordinator)
        ):
            return
        self._forward_probe = (len(self.executed_log), self.engine.view)
        Timer(self.sim, self.config.view_change_timeout, self._on_forward_probe)

    def _on_forward_probe(self) -> None:
        if self._forward_probe is None:
            return
        executed_then, view_then = self._forward_probe
        self._forward_probe = None
        engine = self.engine
        if (
            len(self.executed_log) != executed_then
            or engine.view != view_then
            or engine.in_view_change
        ):
            return  # progress happened or a view change is already underway
        actions = engine.suspect_primary()
        if actions:
            self.sim.spawn(
                self._dispatch(actions, f"{self.replica_id}.worker"),
                name=f"{self.replica_id}.suspect-dispatch",
            )

    def _on_enter_view(self, view: int) -> None:
        tracer = self.system.tracer
        if tracer.enabled:
            tracer.record(
                self.sim.now, self.replica_id, "view-change",
                f"entered view {view}",
            )
        # requests admitted by the old primary are re-proposed or
        # retransmitted under the new view; dropping the stale per-client
        # counts keeps the admission budget from leaking across views
        if not self.is_primary:
            self.admission.clear_backlog()
        # a fresh primary must sequence above everything it has seen
        if isinstance(self.engine, PbftReplica):
            high = max(
                [self.engine.stable_sequence, self.next_exec_sequence - 1]
                + list(self.engine.slots),
                default=0,
            )
            self.next_batch_sequence = max(self.next_batch_sequence, high + 1)

    # ==================================================================
    # ordered execution (§4.5–§4.6)
    # ==================================================================
    def _enqueue_execute(self, action: ExecuteReady) -> None:
        sequence = action.sequence
        if sequence < self.next_exec_sequence or sequence in self.exec_pending:
            return  # replay after a view change; already executed/queued
        spans = self.system.spans
        if spans.enabled:
            spans.stamp_sequence(sequence, "commit", self.sim.now)
        self.exec_pending[sequence] = action
        if sequence == self.next_exec_sequence and self._exec_event is not None:
            event, self._exec_event = self._exec_event, None
            event.trigger(None)

    def _execute_loop(self):
        thread_id = f"{self.replica_id}.execute"
        while True:
            if self.next_exec_sequence in self.exec_pending:
                yield from self._drain_executions(thread_id)
            else:
                # park until the next-in-order batch commits — the QC-queue
                # trick means no polling and no dequeue-requeue churn
                event = SimEvent(self.sim)
                self._exec_event = event
                yield event

    def _drain_executions(self, thread_id: str):
        while self.next_exec_sequence in self.exec_pending:
            action = self.exec_pending.pop(self.next_exec_sequence)
            self.next_exec_sequence += 1
            yield from self._execute_batch(action, thread_id)

    def _execute_batch(self, action: ExecuteReady, thread_id: str):
        config = self.config
        costs = config.work_costs
        storage = config.storage_costs
        batch: RequestBatch = action.request
        # execution is in order, so this releases every consensus
        # instance at or below the sequence from the admission budget
        self.admission.on_execute(action.sequence)

        # phase 1: charge all CPU up front.  The per-op storage cost comes
        # from the cost table regardless of backend, so the charge can be
        # computed without touching state.
        if config.storage_backend == "memory":
            read_cost, write_cost = storage.memory_read_ns, storage.memory_write_ns
        else:
            read_cost, write_cost = storage.sqlite_read_ns, storage.sqlite_write_ns
        cost = costs.execute_fixed_ns
        ops_executed = 0
        for request in batch.requests:
            for txn in request.txns:
                for op in txn.ops:
                    ops_executed += 1
                    cost += costs.execute_op_ns
                    cost += write_cost if op.op_type is OpType.WRITE else read_cost
        if config.certification is CertificationMode.PREV_HASH:
            # traditional chaining: hash the previous block (the costly
            # design that §4.6's commit-certificate blocks avoid)
            cost += digest_cost(256, config.crypto_costs)
        cost += costs.block_create_ns
        if isinstance(self.engine, ZyzzyvaReplica):
            cost += digest_cost(96, config.crypto_costs)  # history extension
        yield self.cpu.run(cost, thread_id)

        # phase 2: mutate everything atomically (one simulated instant) so
        # a run cut off mid-batch never leaves state ahead of the log
        if config.apply_state:
            for request in batch.requests:
                for txn in request.txns:
                    for op in txn.ops:
                        if op.op_type is OpType.WRITE:
                            self.store.write(op.key, op.value)
                        else:
                            self.store.read(op.key)
        self._append_block(action, batch)
        if isinstance(self.engine, ZyzzyvaReplica):
            # h_n = H(h_{n-1} || d_n)
            self.exec_history_hash = extend_history(
                self.exec_history_hash, batch.digest or ""
            )
        self.executed_log.append((action.sequence, batch.digest or ""))
        self.state_digest = digest_bytes(
            f"{self.state_digest}|{batch.digest}".encode("utf-8")
        )
        tracer = self.system.tracer
        if tracer.enabled:
            tracer.record(
                self.sim.now, self.replica_id, "execute",
                f"seq={action.sequence} txns={batch.txn_count} "
                f"digest={str(batch.digest)[:12]}",
            )
        spans = self.system.spans
        if spans.enabled:
            spans.stamp_sequence(action.sequence, "execute", self.sim.now)
        metrics = self.system.metrics
        metrics.counter("replica_txns_executed").increment(batch.txn_count)
        metrics.counter("replica_ops_executed").increment(ops_executed)
        # transaction objects return to their pool once executed (§4.8)
        self.txn_pool.release_bulk(batch.txn_count)

        if not batch.is_null:
            yield from self._respond_to_clients(action, batch, thread_id)

        if self.checkpoints.is_checkpoint_sequence(action.sequence):
            yield from self._emit_checkpoint(action.sequence, thread_id)

        if self._consensus_token is not None and self.is_primary:
            self._consensus_token.put_nowait(None)

    def _append_block(self, action: ExecuteReady, batch: RequestBatch) -> None:
        """Build and append the block (CPU already charged by the caller)."""
        config = self.config
        prev_hash = None
        certificate = ()
        if config.certification is CertificationMode.PREV_HASH:
            prev_hash = self.chain.head().block_hash()
        else:
            certificate = tuple(action.commit_proof)
            if len({signer for signer, _ in certificate}) < self.quorum.commit_quorum:
                # speculative (Zyzzyva) or degenerate runs have no commit
                # certificate; synthesise the quorum attestation the chain
                # expects from the accepted order
                certificate = tuple(
                    (rid, b"speculative")
                    for rid in self.system.replica_ids[: self.quorum.commit_quorum]
                )
        if isinstance(self.engine, InstanceCoordinator):
            proposer = self.engine.proposer_of(action.sequence, action.view)
        else:
            proposer = self.engine.primary_of(action.view)
        block = Block(
            sequence=action.sequence,
            digest=batch.digest or "",
            view=action.view,
            proposer=proposer,
            txn_count=batch.txn_count,
            prev_hash=prev_hash,
            commit_certificate=certificate,
        )
        self.chain.append(block)

    def _respond_to_clients(self, action, batch: RequestBatch, thread_id: str):
        """One response message per client group with requests in the batch."""
        config = self.config
        costs = config.work_costs
        by_group: Dict[str, List[int]] = {}
        for request in batch.requests:
            by_group.setdefault(request.sender, []).append(request.request_id)
            # answered requests leave the per-client admission budget
            # (no-op on backups, which never admitted them)
            self.admission.release_client(request.sender)
        speculative = action.speculative
        for group, request_ids in by_group.items():
            if speculative:
                message = SpecResponse(
                    self.replica_id,
                    tuple(request_ids),
                    action.view,
                    action.sequence,
                    result_digest=batch.digest or "",
                    history_hash=self.exec_history_hash,
                )
            else:
                message = ClientResponse(
                    self.replica_id,
                    tuple(request_ids),
                    action.view,
                    action.sequence,
                    result_digest=batch.digest or "",
                )
            yield self.cpu.run(costs.response_create_ns, thread_id)
            # client-bound messages go through the adversary too — a
            # byzantine replica's power includes lying to clients, and
            # policies like ConflictingVoter corrupt response digests to
            # deny Zyzzyva's all-n fast path
            if self.adversary is not None:
                for transformed in self.adversary.transform(
                    self, [SendTo(group, message)]
                ):
                    if isinstance(transformed, SendTo):
                        yield from self._sign_and_queue(
                            transformed.message, [transformed.dst], thread_id,
                            scheme=self.system.client_scheme,
                        )
                continue
            yield from self._sign_and_queue(
                message, [group], thread_id, scheme=self.system.client_scheme
            )

    def _emit_checkpoint(self, sequence: int, thread_id: str):
        config = self.config
        self.checkpoint_digests[sequence] = self.state_digest
        yield self.cpu.run(digest_cost(4096, config.crypto_costs), thread_id)
        message = Checkpoint(
            self.replica_id,
            sequence,
            self.state_digest,
            blocks_included=config.checkpoint_batches,
        )
        receivers = [r for r in self.system.replica_ids if r != self.replica_id]
        yield from self._sign_and_queue(
            message, receivers, thread_id, scheme=self.system.replica_scheme
        )
        # our own vote counts too
        self._record_checkpoint_vote(sequence, self.state_digest, self.replica_id)

    # ==================================================================
    # crash recovery / state transfer (§4.7)
    # ==================================================================
    def begin_recovery(self) -> None:
        """Called by the host after the crash heals: fetch missed state.

        The replica stops participating in consensus, asks every peer for
        a transfer, adopts the state once f+1 peers agree on (executed
        sequence, state digest), and keeps retrying while it still lags.
        """
        if self._recovering:
            return
        self._recovering = True
        self.sim.spawn(self._recovery_loop(), name=f"{self.replica_id}.recovery")

    def _recovery_loop(self):
        from repro.consensus.messages import StateTransferRequest
        from repro.sim.events import Timeout

        retry_delay = max(self.config.state_transfer_retry, 1)
        peers = [
            rid for rid in self.system.replica_ids if rid != self.replica_id
        ]
        for _attempt in range(50):
            if not self._recovering:
                # adopted a snapshot; confirm normal execution resumed —
                # commits proposed while the transfer was in flight may
                # have left a gap the snapshot predates
                progress_mark = self.next_exec_sequence
                yield Timeout(retry_delay)
                if self.next_exec_sequence > progress_mark:
                    return  # executing again: recovery complete
                self._recovering = True  # stalled behind a gap: go again
            self._recovery_responses = {}
            request = StateTransferRequest(
                self.replica_id, self.next_exec_sequence - 1
            )
            yield from self._sign_and_queue(
                request, peers, f"{self.replica_id}.worker",
                scheme=self.system.replica_scheme,
            )
            yield Timeout(retry_delay)
        self._recovering = False  # give up gracefully; stay a follower

    def _serve_state_transfer(self, message, thread_id: str):
        """Answer a recovering peer (any healthy replica does)."""
        from repro.consensus.messages import StateTransferResponse

        if self._recovering:
            return
        have = message.have_sequence
        # derive the watermark from the log, not next_exec_sequence: the
        # counter is bumped before the execute-thread's CPU charge, so
        # mid-execution it claims a sequence whose log entry and state
        # mutation have not happened yet — a recovering peer adopting that
        # torn snapshot would be left with a permanent gap in its log
        executed = self.executed_log[-1][0] if self.executed_log else 0
        if executed <= have:
            return  # nothing to offer
        log_slice = tuple(
            entry for entry in self.executed_log if entry[0] > have
        )
        snapshot = None
        snapshot_records = 0
        if self.config.apply_state and hasattr(self.store, "_records"):
            snapshot = dict(self.store._records)
            snapshot_records = len(snapshot)
        response = StateTransferResponse(
            self.replica_id,
            executed_sequence=executed,
            state_digest=self.state_digest,
            log_slice=log_slice,
            blocks=self.chain.suffix_since(have),
            snapshot=snapshot,
            snapshot_records=snapshot_records,
            pruned_through=self.chain.pruned_through,
        )
        # building the snapshot costs real CPU proportional to its size
        yield self.cpu.run(
            self.config.work_costs.execute_op_ns
            + snapshot_records * 50,
            thread_id,
        )
        yield from self._sign_and_queue(
            response, [message.sender], thread_id,
            scheme=self.system.replica_scheme,
        )

    def _absorb_state_response(self, message) -> None:
        if not self._recovering:
            return
        if message.executed_sequence < self.next_exec_sequence:
            return  # stale offer
        key = (message.executed_sequence, message.state_digest)
        offers = self._recovery_responses.setdefault(key, [])
        offers.append(message)
        if len({offer.sender for offer in offers}) < self.quorum.f + 1:
            return
        self._adopt_state(offers[-1])

    def _adopt_state(self, response) -> None:
        """f+1 peers agree: install the transferred state."""
        if response.snapshot is not None:
            if hasattr(self.store, "_records"):
                self.store._records = dict(response.snapshot)
            else:  # pragma: no cover - sqlite backend
                self.store.preload(response.snapshot)
        self.executed_log.extend(response.log_slice)
        self.state_digest = response.state_digest
        self.next_exec_sequence = response.executed_sequence + 1
        self.exec_pending = {
            seq: action
            for seq, action in self.exec_pending.items()
            if seq >= self.next_exec_sequence
        }
        if response.blocks:
            self.chain.adopt(response.blocks, response.pruned_through)
        if isinstance(self.engine, InstanceCoordinator):
            # fold the adopted entries into the per-lane commit logs so
            # the unification invariant (executed ⊆ lane commits) holds
            # across recovery
            self.engine.absorb_adopted_log(response.log_slice)
        self.engine.advance_stable(response.executed_sequence)
        # adopting a quorum-attested state is proof the system is live; a
        # lone, never-quorate primary suspicion would otherwise wedge this
        # replica in in_view_change forever
        if isinstance(self.engine, PbftReplica) and self.engine.in_view_change:
            self.engine.in_view_change = False
        if isinstance(self.engine, InstanceCoordinator):
            self.engine.clear_view_change_wedges()
        self._recovering = False
        self.recoveries_completed += 1
        self.system.metrics.counter("recoveries").increment()
        tracer = self.system.tracer
        if tracer.enabled:
            tracer.record(
                self.sim.now, self.replica_id, "recovery",
                f"adopted state through {response.executed_sequence} "
                f"from {response.sender}",
            )

    # ==================================================================
    # checkpoint thread (§4.7)
    # ==================================================================
    def _checkpoint_loop(self):
        thread_id = f"{self.replica_id}.checkpoint"
        config = self.config
        costs = config.work_costs
        scheme = self.system.replica_scheme
        while True:
            message = yield self.checkpoint_queue.get()
            yield self.cpu.run(scheme.verify_cost(message.wire_bytes()), thread_id)
            if config.real_auth_tokens:
                ok, _ = scheme.check(
                    message.signable_bytes(), message.auth, message.sender,
                    self.replica_id,
                )
                if not ok:
                    self.invalid_messages += 1
                    continue
            yield self.cpu.run(costs.checkpoint_vote_ns, thread_id)
            self._record_checkpoint_vote(
                message.sequence, message.state_digest, message.sender
            )

    def _record_checkpoint_vote(self, sequence, digest, voter) -> None:
        if self.checkpoints.record_vote(sequence, digest, voter):
            tracer = self.system.tracer
            if tracer.enabled:
                tracer.record(
                    self.sim.now, self.replica_id, "checkpoint",
                    f"stable at {sequence}",
                )
            self.engine.advance_stable(self.checkpoints.stable_sequence)
            horizon = self.checkpoints.gc_horizon()
            if horizon > 0:
                self.chain.prune_before(horizon)
                self._gc_seen_requests(horizon)
            # if the cluster's stable point has moved a whole checkpoint
            # interval past our execution point, the commits we are missing
            # have been garbage-collected — only a state transfer can get
            # us back (classic PBFT checkpoint fetch)
            if (
                self.checkpoints.stable_sequence
                >= self.next_exec_sequence + self.checkpoints.interval
            ):
                self.begin_recovery()

    def _gc_seen_requests(self, horizon: int) -> None:
        # retaining every (client, request id) forever would leak; the
        # stable checkpoint bounds how far back a retransmission can reach
        if len(self._seen_requests) > 4 * self.config.num_clients:
            self._seen_requests.clear()
        if len(self._sequenced_keys) > 4 * self.config.num_clients:
            self._sequenced_keys.clear()

    # ==================================================================
    # output threads (§4.1)
    # ==================================================================
    def _output_loop(self, index: int):
        thread_id = f"{self.replica_id}.output-{index}"
        costs = self.config.work_costs
        queue = self.output_queues[index]
        while True:
            dst, message = yield queue.get()
            yield self.cpu.run(costs.output_send_ns, thread_id)
            self.system.network.send(self.replica_id, dst, message)

    # ==================================================================
    # Fig. 7 upper-bound mode: no consensus, no ordering
    # ==================================================================
    def _upper_bound_loop(self, thread_id: str):
        """Independent responder thread: verify, (optionally) execute,
        reply straight to the client."""
        config = self.config
        costs = config.work_costs
        client_scheme = self.system.client_scheme
        sequence = 0
        while True:
            request = yield self.batch_queue.get()
            yield self.cpu.run(
                client_scheme.verify_cost(request.wire_bytes()), thread_id
            )
            if config.real_auth_tokens:
                ok, _ = client_scheme.check(
                    request.signable_bytes(), request.auth, request.sender,
                    self.replica_id,
                )
                if not ok:
                    self.invalid_messages += 1
                    continue
            ops = 0
            if config.execution_enabled:
                cost = 0
                for txn in request.txns:
                    for op in txn.ops:
                        ops += 1
                        cost += costs.execute_op_ns
                        cost += (
                            config.storage_costs.memory_write_ns
                            if op.op_type is OpType.WRITE
                            else config.storage_costs.memory_read_ns
                        )
                yield self.cpu.run(cost, thread_id)
                if config.apply_state:
                    for txn in request.txns:
                        for op in txn.ops:
                            if op.op_type is OpType.WRITE:
                                self.store.write(op.key, op.value)
                            else:
                                self.store.read(op.key)
            sequence += 1
            message = ClientResponse(
                self.replica_id,
                (request.request_id,),
                view=0,
                sequence=sequence,
                result_digest="upper-bound",
            )
            metrics = self.system.metrics
            metrics.counter("replica_txns_executed").increment(len(request.txns))
            metrics.counter("replica_ops_executed").increment(ops)
            yield self.cpu.run(costs.response_create_ns, thread_id)
            yield from self._sign_and_queue(
                message, [request.sender], thread_id,
                scheme=self.system.client_scheme,
            )
