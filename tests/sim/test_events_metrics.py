"""Tests for SimEvent/Timer and the metrics registry."""

import pytest

from repro.sim import SimEvent, Simulator, Timeout, micros, seconds
from repro.sim.events import TIMEOUT, Timer
from repro.sim.metrics import LatencyHistogram, MetricsRegistry


# ----------------------------------------------------------------------
# SimEvent
# ----------------------------------------------------------------------
def test_event_wakes_waiter_with_value():
    sim = Simulator()
    event = SimEvent(sim)
    got = []

    def waiter():
        got.append((yield event))

    sim.spawn(waiter())
    sim.schedule(100, event.trigger, "payload")
    sim.run()
    assert got == ["payload"]


def test_event_first_trigger_wins():
    sim = Simulator()
    event = SimEvent(sim)
    assert event.trigger("first") is True
    assert event.trigger("second") is False
    assert event.value == "first"


def test_waiting_on_triggered_event_returns_immediately():
    sim = Simulator()
    event = SimEvent(sim)
    event.trigger("early")
    got = []

    def waiter():
        got.append((yield event))

    sim.spawn(waiter())
    sim.run()
    assert got == ["early"]


def test_trigger_after_delivers_timeout_sentinel():
    sim = Simulator()
    event = SimEvent(sim)
    got = []

    def waiter():
        got.append((yield event))

    sim.spawn(waiter())
    event.trigger_after(micros(50))
    sim.run()
    assert got == [TIMEOUT]


def test_response_beats_timer():
    """Zyzzyva's client pattern: response-vs-timeout race, first one wins."""
    sim = Simulator()
    event = SimEvent(sim)
    got = []

    def waiter():
        got.append((yield event))

    sim.spawn(waiter())
    event.trigger_after(micros(100))
    sim.schedule(micros(40), event.trigger, "response")
    sim.run()
    assert got == ["response"]


def test_on_trigger_callback():
    sim = Simulator()
    event = SimEvent(sim)
    got = []
    event.on_trigger(got.append)
    event.trigger(7)
    sim.run()
    assert got == [7]


# ----------------------------------------------------------------------
# Timer
# ----------------------------------------------------------------------
def test_timer_fires():
    sim = Simulator()
    fired = []
    Timer(sim, 100, fired.append, "x")
    sim.run()
    assert fired == ["x"]


def test_timer_cancel_suppresses_fire():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 100, fired.append, "x")
    sim.schedule(50, timer.cancel)
    sim.run()
    assert fired == []
    assert not timer.active


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_counter_and_throughput():
    sim = Simulator()
    metrics = MetricsRegistry(sim)
    counter = metrics.counter("txns")

    def generator():
        for _ in range(10):
            yield Timeout(micros(100))
            counter.increment(50)

    sim.spawn(generator())
    metrics.begin_measurement()
    sim.run(until=micros(1000))
    # 500 txns in 1ms -> 500K/s
    assert metrics.throughput_per_second("txns") == pytest.approx(500_000)


def test_begin_measurement_resets_counters():
    sim = Simulator()
    metrics = MetricsRegistry(sim)
    counter = metrics.counter("txns")
    counter.increment(99)
    sim.schedule(seconds(1), lambda: None)
    sim.run()
    metrics.begin_measurement()
    assert counter.value == 0
    assert metrics.window_start == seconds(1)


def test_histogram_statistics():
    histogram = LatencyHistogram("latency")
    for value in [micros(100), micros(200), micros(300), micros(400)]:
        histogram.record(value)
    assert histogram.count == 4
    assert histogram.mean_seconds() == pytest.approx(250e-6)
    assert histogram.percentile_seconds(50) == pytest.approx(200e-6)
    assert histogram.percentile_seconds(100) == pytest.approx(400e-6)
    assert histogram.max_seconds() == pytest.approx(400e-6)


def test_histogram_empty_and_bad_percentile():
    histogram = LatencyHistogram("latency")
    assert histogram.mean_seconds() == 0.0
    assert histogram.percentile_seconds(99) == 0.0
    histogram.record(1)
    with pytest.raises(ValueError):
        histogram.percentile_seconds(0)
    with pytest.raises(ValueError):
        histogram.percentile_seconds(101)


def test_histogram_reservoir_under_cap_is_exact():
    """With fewer samples than the cap, behaviour is identical to uncapped."""
    capped = LatencyHistogram("latency", max_samples=100)
    exact = LatencyHistogram("latency")
    for value in [micros(100), micros(200), micros(300), micros(400)]:
        capped.record(value)
        exact.record(value)
    assert capped.count == exact.count == 4
    assert capped.samples == exact.samples
    for quantile in (50, 99, 100):
        assert capped.percentile_seconds(quantile) == exact.percentile_seconds(
            quantile
        )


def test_histogram_reservoir_caps_storage_keeps_exact_aggregates():
    histogram = LatencyHistogram("latency", max_samples=64)
    values = [micros(i + 1) for i in range(1000)]
    for value in values:
        histogram.record(value)
    assert len(histogram.samples) == 64
    # count / sum / mean / max are running values, never sampled
    assert histogram.count == 1000
    assert histogram.mean_seconds() == pytest.approx(
        sum(values) / len(values) / 1e9
    )
    assert histogram.max_seconds() == pytest.approx(micros(1000) / 1e9)
    # percentile comes from the reservoir: approximate but in-range
    assert micros(1) / 1e9 <= histogram.percentile_seconds(50) <= micros(1000) / 1e9


def test_histogram_reservoir_is_deterministic():
    def fill():
        histogram = LatencyHistogram("latency", max_samples=32)
        for i in range(500):
            histogram.record(micros(i))
        return list(histogram.samples)

    assert fill() == fill()


def test_histogram_reservoir_reset_restores_initial_state():
    histogram = LatencyHistogram("latency", max_samples=32)
    for i in range(500):
        histogram.record(micros(i))
    first = list(histogram.samples)
    histogram.reset()
    assert histogram.count == 0 and histogram.samples == []
    for i in range(500):
        histogram.record(micros(i))
    # the reservoir RNG is re-seeded on reset, so refills are identical
    assert histogram.samples == first


def test_histogram_validates_max_samples():
    with pytest.raises(ValueError):
        LatencyHistogram("latency", max_samples=0)


def test_counter_factory_idempotent():
    sim = Simulator()
    metrics = MetricsRegistry(sim)
    assert metrics.counter("a") is metrics.counter("a")
    assert metrics.histogram("h") is metrics.histogram("h")
    assert metrics.busy_tracker("b") is metrics.busy_tracker("b")


def test_rng_fork_is_stable_and_independent():
    from repro.sim.rng import DeterministicRNG

    parent_one = DeterministicRNG(42)
    parent_two = DeterministicRNG(42)
    child_one = parent_one.fork("clients")
    child_two = parent_two.fork("clients")
    assert [child_one.randint(0, 1000) for _ in range(10)] == [
        child_two.randint(0, 1000) for _ in range(10)
    ]
    other = DeterministicRNG(42).fork("network")
    assert [other.randint(0, 1000) for _ in range(10)] != [
        DeterministicRNG(42).fork("clients").randint(0, 1000) for _ in range(10)
    ]
