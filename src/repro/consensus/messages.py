"""Protocol message types for PBFT and Zyzzyva.

Every type subclasses :class:`repro.net.Message` (the §4.8 base-class
design).  Wire sizes approximate a compact binary encoding; the request
payload (batched transactions) dominates ``PrePrepare``/``OrderRequest``
sizes, while vote messages are small and fixed.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.message import Message
from repro.workloads.transactions import Transaction


class ClientRequest(Message):
    """A client's (possibly batched) transaction submission.

    Per §4.2, "a client can send a burst of transactions as a single
    request message" — the standard configuration submits ``batch_size``
    transactions per request, signed once, which is what lets the primary
    treat each client request as one consensus batch.
    """

    kind = "client-request"

    __slots__ = ("request_id", "txns", "digest", "sequence")

    def __init__(self, sender: str, request_id: int, txns: Tuple[Transaction, ...]):
        super().__init__(sender)
        self.request_id = request_id
        self.txns = txns
        #: SHA-256 of the batch string; computed (and paid for) by the
        #: primary's batch-thread, not here.
        self.digest: Optional[str] = None
        #: sequence number assigned by the primary's input-thread
        self.sequence: Optional[int] = None

    @property
    def txn_count(self) -> int:
        return len(self.txns)

    def payload_bytes(self) -> int:
        return 16 + sum(txn.wire_bytes() for txn in self.txns)

    def batch_bytes(self) -> bytes:
        """The single string representation of the whole batch that the
        batch-thread hashes once (§4.3)."""
        return b"|".join(txn.canonical_bytes() for txn in self.txns)

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.request_id, len(self.txns))


class RequestBatch:
    """The unit of consensus: client requests packed by a batch-thread.

    Not itself a network message — it rides inside ``PrePrepare`` /
    ``OrderRequest``.  The batch-thread "first generates a single string
    representation of the whole batch and then hashes this string" (§4.3);
    :meth:`batch_bytes` is that string.
    """

    __slots__ = ("requests", "digest", "_batch_bytes")

    def __init__(self, requests: Tuple[ClientRequest, ...]):
        self.requests = requests
        #: SHA-256 over :meth:`batch_bytes`, set by the creating thread
        self.digest: Optional[str] = None
        self._batch_bytes: Optional[bytes] = None

    @property
    def txn_count(self) -> int:
        return sum(len(request.txns) for request in self.requests)

    @property
    def is_null(self) -> bool:
        """Null batches fill sequence gaps after a view change."""
        return not self.requests

    def payload_bytes(self) -> int:
        return 16 + sum(request.payload_bytes() for request in self.requests)

    def batch_bytes(self) -> bytes:
        if self._batch_bytes is None:
            self._batch_bytes = b"#".join(
                request.batch_bytes() for request in self.requests
            )
        return self._batch_bytes


#: digest carried by gap-filling null batches
NULL_BATCH_DIGEST = "null-batch"


def make_null_batch() -> RequestBatch:
    batch = RequestBatch(())
    batch.digest = NULL_BATCH_DIGEST
    return batch


class PrePrepare(Message):
    """Primary → backups: proposed order for a request batch (phase 1)."""

    kind = "pre-prepare"

    __slots__ = ("view", "sequence", "digest", "request")

    def __init__(
        self,
        sender: str,
        view: int,
        sequence: int,
        digest: str,
        request: ClientRequest,
    ):
        super().__init__(sender)
        self.view = view
        self.sequence = sequence
        self.digest = digest
        self.request = request

    def payload_bytes(self) -> int:
        return 48 + self.request.payload_bytes()

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.view, self.sequence, self.digest)


class Prepare(Message):
    """Backup → all: agreement with the primary's proposed order (phase 2)."""

    kind = "prepare"

    __slots__ = ("view", "sequence", "digest")

    def __init__(self, sender: str, view: int, sequence: int, digest: str):
        super().__init__(sender)
        self.view = view
        self.sequence = sequence
        self.digest = digest

    def payload_bytes(self) -> int:
        return 48 + 32  # view/sequence fields + digest

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.view, self.sequence, self.digest)


class Commit(Message):
    """Replica → all: the request is prepared at a quorum (phase 3)."""

    kind = "commit"

    __slots__ = ("view", "sequence", "digest")

    def __init__(self, sender: str, view: int, sequence: int, digest: str):
        super().__init__(sender)
        self.view = view
        self.sequence = sequence
        self.digest = digest

    def payload_bytes(self) -> int:
        return 48 + 32

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.view, self.sequence, self.digest)


class ClientResponse(Message):
    """Replica → client: execution results.

    Responses for all of one client's requests executed in the same batch
    are coalesced into a single message (``request_ids``) — the execute
    thread completes a whole batch at once, so per-request messages would
    only multiply identical wire traffic.
    """

    kind = "client-response"

    __slots__ = ("request_ids", "view", "sequence", "result_digest")

    def __init__(
        self,
        sender: str,
        request_ids: Tuple[int, ...],
        view: int,
        sequence: int,
        result_digest: str,
    ):
        super().__init__(sender)
        self.request_ids = request_ids
        self.view = view
        self.sequence = sequence
        self.result_digest = result_digest

    def payload_bytes(self) -> int:
        return 48 + 8 * len(self.request_ids) + 32

    def signable_fields(self) -> tuple:
        return (
            self.kind,
            self.sender,
            self.view,
            self.sequence,
            self.result_digest,
            self.request_ids,
        )


class BusyNack(Message):
    """Replica → client: a request was refused or shed under overload.

    Sent instead of silent queue growth when admission control or a
    bounded queue turns a request away (``reason`` says which limit
    fired).  Clients treat it as a congestion signal: shrink the AIMD
    window, back off, and — for multi-primary RCC — steer away from the
    busy lane (``instance`` in the envelope names it).  NACKs carry no
    execution result, so they are unsigned; clients never act on a NACK
    beyond retrying, which a Byzantine replica could at worst delay.
    """

    kind = "busy-nack"

    __slots__ = ("request_ids", "reason", "retry_after_ns")

    def __init__(
        self,
        sender: str,
        request_ids: Tuple[int, ...],
        reason: str,
        retry_after_ns: int = 0,
    ):
        super().__init__(sender)
        self.request_ids = request_ids
        self.reason = reason
        self.retry_after_ns = retry_after_ns

    def payload_bytes(self) -> int:
        return 16 + 8 * len(self.request_ids) + len(self.reason)

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.request_ids, self.reason)


class Checkpoint(Message):
    """Replica → all: state digest after executing a multiple of Δ requests.

    §4.7: "these checkpoint messages simply include all the blocks
    generated since the last checkpoint", hence the large wire size.
    """

    kind = "checkpoint"

    __slots__ = ("sequence", "state_digest", "blocks_included", "block_bytes")

    def __init__(
        self,
        sender: str,
        sequence: int,
        state_digest: str,
        blocks_included: int,
        block_bytes: int = 200,
    ):
        super().__init__(sender)
        self.sequence = sequence
        self.state_digest = state_digest
        self.blocks_included = blocks_included
        self.block_bytes = block_bytes

    def payload_bytes(self) -> int:
        return 48 + 32 + self.blocks_included * self.block_bytes

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.sequence, self.state_digest)


# ----------------------------------------------------------------------
# state transfer (§4.7 purpose 1: "help a failed replica to update itself
# to the current state")
# ----------------------------------------------------------------------
class StateTransferRequest(Message):
    """Recovering replica → peers: "I have executed through
    ``have_sequence``; send me what I missed"."""

    kind = "state-request"

    __slots__ = ("have_sequence",)

    def __init__(self, sender: str, have_sequence: int):
        super().__init__(sender)
        self.have_sequence = have_sequence

    def payload_bytes(self) -> int:
        return 16

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.have_sequence)


class StateTransferResponse(Message):
    """Peer → recovering replica: executed log slice, chain blocks and a
    state snapshot.

    The snapshot dominates the wire size (the whole record table), which
    is why recovery is expensive and why checkpoints exist to bound it.
    """

    kind = "state-response"

    __slots__ = (
        "executed_sequence",
        "state_digest",
        "log_slice",
        "blocks",
        "snapshot",
        "snapshot_records",
        "pruned_through",
    )

    def __init__(
        self,
        sender: str,
        executed_sequence: int,
        state_digest: str,
        log_slice: tuple,
        blocks: tuple,
        snapshot,
        snapshot_records: int,
        pruned_through: int,
    ):
        super().__init__(sender)
        self.executed_sequence = executed_sequence
        self.state_digest = state_digest
        self.log_slice = log_slice
        self.blocks = blocks
        self.snapshot = snapshot
        self.snapshot_records = snapshot_records
        self.pruned_through = pruned_through

    def payload_bytes(self) -> int:
        return (
            48
            + 40 * len(self.log_slice)
            + 200 * len(self.blocks)
            + 120 * self.snapshot_records
        )

    def signable_fields(self) -> tuple:
        return (
            self.kind,
            self.sender,
            self.executed_sequence,
            self.state_digest,
            len(self.log_slice),
        )


# ----------------------------------------------------------------------
# view change (PBFT §4.4 of Castro-Liskov; exercised by tests, not by the
# paper's steady-state experiments)
# ----------------------------------------------------------------------
class ViewChange(Message):
    """Replica → all: vote to move to ``new_view`` after a primary timeout.

    ``prepared`` carries (sequence, digest) pairs the sender had prepared
    above its stable checkpoint — the proof the new primary uses to carry
    surviving requests into the new view.
    """

    kind = "view-change"

    __slots__ = ("new_view", "stable_sequence", "prepared")

    def __init__(
        self,
        sender: str,
        new_view: int,
        stable_sequence: int,
        prepared: Tuple[Tuple[int, str], ...],
    ):
        super().__init__(sender)
        self.new_view = new_view
        self.stable_sequence = stable_sequence
        self.prepared = prepared

    def payload_bytes(self) -> int:
        return 48 + 40 * len(self.prepared)

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.new_view, self.stable_sequence,
                self.prepared)


class NewView(Message):
    """New primary → all: proof of 2f+1 view-change votes plus the set of
    (sequence, digest) assignments carried into the new view."""

    kind = "new-view"

    __slots__ = ("new_view", "view_change_voters", "carried")

    def __init__(
        self,
        sender: str,
        new_view: int,
        view_change_voters: Tuple[str, ...],
        carried: Tuple[Tuple[int, str], ...],
    ):
        super().__init__(sender)
        self.new_view = new_view
        self.view_change_voters = view_change_voters
        self.carried = carried

    def payload_bytes(self) -> int:
        return 48 + 16 * len(self.view_change_voters) + 40 * len(self.carried)

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.new_view, self.view_change_voters,
                self.carried)


# ----------------------------------------------------------------------
# Zyzzyva
# ----------------------------------------------------------------------
class OrderRequest(Message):
    """Zyzzyva primary → backups: ordered request with history hash.

    Backups execute speculatively on receipt — there are no prepare or
    commit phases in the fast path.
    """

    kind = "order-request"

    __slots__ = ("view", "sequence", "digest", "history_hash", "request")

    def __init__(
        self,
        sender: str,
        view: int,
        sequence: int,
        digest: str,
        history_hash: str,
        request: ClientRequest,
    ):
        super().__init__(sender)
        self.view = view
        self.sequence = sequence
        self.digest = digest
        self.history_hash = history_hash
        self.request = request

    def payload_bytes(self) -> int:
        return 48 + 32 + self.request.payload_bytes()

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.view, self.sequence, self.digest,
                self.history_hash)


class SpecResponse(Message):
    """Zyzzyva replica → client: speculative execution result.

    The client matches responses on (view, sequence, result digest,
    history hash); the Zyzzyva fast path completes only when all 3f+1
    replicas answer identically.
    """

    kind = "spec-response"

    __slots__ = ("request_ids", "view", "sequence", "result_digest", "history_hash")

    def __init__(
        self,
        sender: str,
        request_ids: Tuple[int, ...],
        view: int,
        sequence: int,
        result_digest: str,
        history_hash: str,
    ):
        super().__init__(sender)
        self.request_ids = request_ids
        self.view = view
        self.sequence = sequence
        self.result_digest = result_digest
        self.history_hash = history_hash

    def payload_bytes(self) -> int:
        return 48 + 8 * len(self.request_ids) + 64

    def signable_fields(self) -> tuple:
        return (
            self.kind,
            self.sender,
            self.view,
            self.sequence,
            self.result_digest,
            self.history_hash,
            self.request_ids,
        )


class CommitCertificate(Message):
    """Zyzzyva client → replicas: 2f+1 matching spec-responses, sent when
    the full 3f+1 fast path did not complete before the client's timer."""

    kind = "commit-certificate"

    __slots__ = ("view", "sequence", "result_digest", "responders")

    def __init__(
        self,
        sender: str,
        view: int,
        sequence: int,
        result_digest: str,
        responders: Tuple[str, ...],
    ):
        super().__init__(sender)
        self.view = view
        self.sequence = sequence
        self.result_digest = result_digest
        self.responders = responders

    def payload_bytes(self) -> int:
        return 48 + 32 + 80 * len(self.responders)  # embedded spec-response sigs

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.view, self.sequence,
                self.result_digest, self.responders)


class LocalCommit(Message):
    """Zyzzyva replica → client: acknowledgement of a commit certificate."""

    kind = "local-commit"

    __slots__ = ("view", "sequence")

    def __init__(self, sender: str, view: int, sequence: int):
        super().__init__(sender)
        self.view = view
        self.sequence = sequence

    def payload_bytes(self) -> int:
        return 48

    def signable_fields(self) -> tuple:
        return (self.kind, self.sender, self.view, self.sequence)
