"""Figure 9: per-thread saturation at primary and backup replicas.

Paper claims: at PBFT 2B1E the primary's batch-threads saturate (~85%
each) while the worker idles (~16-26%); backups are worker/execute bound;
cumulative saturation grows with pipeline depth.
"""

from repro.bench import fig09_saturation


def test_fig09_saturation(benchmark, record_figure):
    figure = benchmark.pedantic(fig09_saturation, rounds=1, iterations=1)
    record_figure(figure)
    primary = {point.x: point for point in figure.get("cumulative (primary)").points}
    deep = primary["PBFT 2B 1E"]
    # shape: at full depth the batch-threads are the saturated stage
    batch_saturation = max(
        value for key, value in deep.extra.items() if ".batch" in key
    )
    worker_saturation = deep.extra["primary.worker"]
    assert batch_saturation > 80.0
    assert worker_saturation < batch_saturation
    # shape: the deep pipeline uses strictly more aggregate CPU than 0B0E
    assert (
        deep.throughput_txns_per_s  # cumulative saturation, in percent
        > primary["PBFT 0B 0E"].throughput_txns_per_s
    )
