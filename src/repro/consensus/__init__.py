"""BFT consensus protocols: PBFT and Zyzzyva.

Protocol logic is written as message-driven state machines
(:class:`~repro.consensus.pbft.PbftReplica`,
:class:`~repro.consensus.zyzzyva.ZyzzyvaReplica`) that return *actions*
(send, broadcast, execute, timers) rather than performing I/O.  The replica
pipeline (:mod:`repro.core`) charges simulated CPU for each handled message
and routes the actions; tests drive the state machines directly, with no
simulator, to check safety properties.

Quorum arithmetic follows the paper (§2.1): ``n ≥ 3f + 1``; a replica is
*prepared* after 2f matching ``Prepare`` messages and *committed* after
2f+1 matching ``Commit`` messages; clients accept f+1 matching responses.
Zyzzyva's fast path instead needs all ``3f + 1`` speculative responses at
the client, falling back to a 2f+1 commit certificate.
"""

from repro.consensus.base import (
    Action,
    Broadcast,
    ExecuteReady,
    NotPrimaryError,
    ProposalError,
    QuorumConfig,
    SendTo,
    StartViewChangeTimer,
    CancelViewChangeTimer,
    ViewChangeInProgress,
)
from repro.consensus.messages import (
    Checkpoint,
    ClientRequest,
    ClientResponse,
    Commit,
    CommitCertificate,
    LocalCommit,
    NewView,
    OrderRequest,
    Prepare,
    PrePrepare,
    SpecResponse,
    ViewChange,
)
from repro.consensus.pbft import PbftReplica
from repro.consensus.safety import (
    check_bounded_liveness,
    check_checkpoint_consistency,
    check_execution_consistency,
)
from repro.consensus.zyzzyva import ZyzzyvaReplica

__all__ = [
    "Action",
    "Broadcast",
    "CancelViewChangeTimer",
    "Checkpoint",
    "ClientRequest",
    "ClientResponse",
    "Commit",
    "CommitCertificate",
    "ExecuteReady",
    "LocalCommit",
    "NewView",
    "NotPrimaryError",
    "OrderRequest",
    "PbftReplica",
    "Prepare",
    "PrePrepare",
    "ProposalError",
    "QuorumConfig",
    "SendTo",
    "SpecResponse",
    "StartViewChangeTimer",
    "ViewChange",
    "ViewChangeInProgress",
    "ZyzzyvaReplica",
    "check_bounded_liveness",
    "check_checkpoint_consistency",
    "check_execution_consistency",
]
