"""Overload protection: admission control, AIMD windows, backoff.

The paper's pipeline (§4) saturates at the primary's batch-threads and the
single execute-thread; past that point an unprotected deployment grows its
queues without bound while client retransmissions compound the collapse.
This package supplies the flow-control pieces threaded through the stack:

- :class:`AdmissionController` — caps in-flight consensus instances and
  per-client pending requests at the primary; excess requests are NACKed
  with a ``busy-nack`` message instead of queued.
- :class:`AIMDWindow` — the client-side pending window, grown additively
  on successful replies and shrunk multiplicatively on congestion signals
  (NACKs), TCP-style.
- :class:`RetransmitBackoff` — exponential retransmission backoff with
  deterministic jitter, replacing the fixed-interval retransmit storm.
- :class:`FlowStats` — per-replica shed/NACK accounting.
- :func:`check_flow_invariants` — post-run checks that overload shedding
  never violated the protocol contract (no sequence-assigned request is
  shed; every shed request was NACKed or completed anyway).
"""

from repro.flow.admission import AdmissionController, FlowStats
from repro.flow.aimd import AIMDWindow, RetransmitBackoff
from repro.flow.invariants import check_flow_invariants

__all__ = [
    "AIMDWindow",
    "AdmissionController",
    "FlowStats",
    "RetransmitBackoff",
    "check_flow_invariants",
]
