"""Tests for SystemConfig validation and derived quantities."""

import pytest

from repro.core import SystemConfig
from repro.crypto.schemes import SchemeName


def test_defaults_match_paper_standard_setup():
    config = SystemConfig()
    assert config.protocol == "pbft"
    assert config.batch_size == 100
    assert config.checkpoint_txns == 10_000
    assert config.client_scheme is SchemeName.ED25519
    assert config.replica_scheme is SchemeName.CMAC_AES
    assert config.storage_backend == "memory"
    assert config.cores_per_replica == 8
    assert config.batch_threads == 2
    assert config.execute_threads == 1


def test_f_derivation():
    assert SystemConfig(num_replicas=4).f == 1
    assert SystemConfig(num_replicas=16).f == 5
    assert SystemConfig(num_replicas=32).f == 10
    assert SystemConfig(num_replicas=16, faults_tolerated=2).f == 2


def test_checkpoint_period_in_batches():
    assert SystemConfig(batch_size=100, checkpoint_txns=10_000).checkpoint_batches == 100
    assert SystemConfig(batch_size=1, checkpoint_txns=10_000).checkpoint_batches == 10_000
    # huge batches never divide to zero
    assert SystemConfig(batch_size=20_000, checkpoint_txns=10_000).checkpoint_batches == 1


@pytest.mark.parametrize(
    "overrides",
    [
        {"protocol": "raft"},
        {"num_replicas": 3},
        {"batch_size": 0},
        {"num_clients": 0},
        {"client_groups": 0},
        {"client_groups": 100, "num_clients": 50},
        {"storage_backend": "rocksdb"},
        {"input_threads": 0},
        {"output_threads": 0},
        {"batch_threads": -1},
        {"execute_threads": 2},
        {"cores_per_replica": 0},
        {"client_batch_txns": 0},
    ],
)
def test_invalid_configs_rejected(overrides):
    with pytest.raises(ValueError):
        SystemConfig(**overrides)


def test_with_options_derives_variant():
    base = SystemConfig()
    variant = base.with_options(num_replicas=32, batch_size=500)
    assert variant.num_replicas == 32
    assert variant.batch_size == 500
    assert base.num_replicas == 16  # base untouched
    assert variant.protocol == base.protocol
