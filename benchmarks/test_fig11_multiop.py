"""Figure 11: multi-operation transactions, batch-threads 2 → 5.

Paper claims: txn throughput falls (−93% at 50 ops on 2 batch-threads);
extra batch-threads recover up to 66%; measured in operations/s the trend
reverses (more ops per consensus round).
"""

from repro.bench import fig11_multiop


def test_fig11_multiop(benchmark, record_figure):
    figure = benchmark.pedantic(fig11_multiop, rounds=1, iterations=1)
    record_figure(figure)
    two = figure.get("2B 1E")
    five = figure.get("5B 1E")
    # shape: txn throughput decreases with ops/txn
    assert two.throughputs()[-1] < 0.5 * two.throughputs()[0]
    # shape: more batch-threads help at mid-size transactions, and the
    # advantage shrinks once something else saturates ("the gap reduces
    # significantly after the transaction becomes too large", §5.4)
    mid = len(two.points) // 2
    assert five.throughputs()[mid] >= two.throughputs()[mid]
    assert five.throughputs()[-1] >= 0.85 * two.throughputs()[-1]
    # shape: ops/s trend reverses (last point executes more ops/s than first)
    first_ops = two.points[0].extra["ops_per_s"]
    last_ops = two.points[-1].extra["ops_per_s"]
    assert last_ops > first_ops
