"""Key-distribution generators.

:class:`ZipfianGenerator` implements the rejection-inversion sampler from
the YCSB core workload (Gray et al.'s "Quickly generating billion-record
synthetic databases" algorithm): draws are O(1) after an O(n) zeta
precomputation, and item 0 is the hottest key.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sim.rng import DeterministicRNG

#: zeta(n, theta) is an O(n) sum over the whole keyspace; benchmarks build
#: many generators over the same 600K-record table, so memoise it.
_ZETA_CACHE: Dict[Tuple[int, float], float] = {}


class UniformGenerator:
    """Uniform keys over ``[0, item_count)``."""

    def __init__(self, item_count: int, rng: DeterministicRNG):
        if item_count <= 0:
            raise ValueError(f"item_count must be > 0, got {item_count}")
        self.item_count = item_count
        self.rng = rng

    def next_key(self) -> int:
        return self.rng.randint(0, self.item_count - 1)


class ZipfianGenerator:
    """Zipfian keys over ``[0, item_count)`` with skew ``theta``.

    ``theta`` defaults to YCSB's 0.99; ``theta → 0`` approaches uniform.
    """

    def __init__(
        self, item_count: int, rng: DeterministicRNG, theta: float = 0.99
    ):
        if item_count <= 0:
            raise ValueError(f"item_count must be > 0, got {item_count}")
        if not 0.0 < theta < 1.0:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.item_count = item_count
        self.theta = theta
        self.rng = rng
        if item_count <= 2:
            # the rejection-inversion constants degenerate below 3 items;
            # skew over 1–2 keys is meaningless, so draw uniformly
            self._uniform = UniformGenerator(item_count, rng)
            return
        self._uniform = None
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / item_count) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        key = (n, theta)
        value = _ZETA_CACHE.get(key)
        if value is None:
            value = sum(1.0 / (i ** theta) for i in range(1, n + 1))
            _ZETA_CACHE[key] = value
        return value

    def next_key(self) -> int:
        if self._uniform is not None:
            return self._uniform.next_key()
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.item_count * (self._eta * u - self._eta + 1.0) ** self._alpha
        )
