"""Tests for the ledger: genesis, appends, certification modes, pruning."""

import pytest

from repro.storage import Block, Blockchain, CertificationMode
from repro.storage.blockchain import ChainViolation, make_genesis


def make_cert(sequence, signers):
    return tuple((signer, f"sig:{signer}:{sequence}".encode()) for signer in signers)


def linked_block(chain, digest="d", view=0, txn_count=100, signers=("r0", "r1", "r2")):
    head = chain.head()
    return Block(
        sequence=head.sequence + 1,
        digest=digest,
        view=view,
        proposer=f"r{view}",
        txn_count=txn_count,
        prev_hash=head.block_hash(),
        commit_certificate=make_cert(head.sequence + 1, signers),
    )


# ----------------------------------------------------------------------
# genesis
# ----------------------------------------------------------------------
def test_genesis_anchors_chain():
    chain = Blockchain("r0")
    assert chain.height == 0
    assert len(chain) == 1
    genesis = chain.get(0)
    assert genesis.txn_count == 0
    assert genesis.prev_hash is None


def test_genesis_digest_is_hash_of_first_primary():
    from repro.crypto import digest_bytes

    genesis = make_genesis("r0")
    assert genesis.digest == digest_bytes(b"r0")


# ----------------------------------------------------------------------
# appends
# ----------------------------------------------------------------------
def test_append_extends_chain():
    chain = Blockchain("r0", quorum_size=3)
    chain.append(linked_block(chain))
    chain.append(linked_block(chain))
    assert chain.height == 2
    chain.validate()


def test_non_contiguous_sequence_rejected():
    chain = Blockchain("r0", quorum_size=3)
    block = linked_block(chain)
    skipped = Block(
        sequence=5,
        digest="d",
        view=0,
        proposer="r0",
        txn_count=1,
        prev_hash=block.prev_hash,
        commit_certificate=make_cert(5, ("r0", "r1", "r2")),
    )
    with pytest.raises(ChainViolation):
        chain.append(skipped)


def test_prev_hash_mode_enforces_link():
    chain = Blockchain("r0", mode=CertificationMode.PREV_HASH)
    good = linked_block(chain)
    chain.append(good)
    bad = Block(
        sequence=2,
        digest="d",
        view=0,
        proposer="r0",
        txn_count=1,
        prev_hash="forged",
    )
    with pytest.raises(ChainViolation):
        chain.append(bad)


def test_certificate_mode_requires_quorum():
    chain = Blockchain("r0", mode=CertificationMode.COMMIT_CERTIFICATE, quorum_size=3)
    thin = linked_block(chain, signers=("r0", "r1"))
    with pytest.raises(ChainViolation):
        chain.append(thin)


def test_certificate_mode_rejects_duplicate_signers():
    chain = Blockchain("r0", quorum_size=3)
    head = chain.head()
    block = Block(
        sequence=1,
        digest="d",
        view=0,
        proposer="r0",
        txn_count=1,
        prev_hash=head.block_hash(),
        commit_certificate=(
            ("r0", b"s1"),
            ("r0", b"s2"),
            ("r1", b"s3"),
        ),
    )
    with pytest.raises(ChainViolation):
        chain.append(block)


def test_validate_detects_retrospective_tampering():
    chain = Blockchain("r0", mode=CertificationMode.PREV_HASH)
    for _ in range(3):
        chain.append(linked_block(chain))
    # immutability: replacing a middle block breaks the next link
    tampered = Block(
        sequence=2,
        digest="evil",
        view=0,
        proposer="r0",
        txn_count=1,
        prev_hash=chain.blocks[1].block_hash(),
    )
    chain.blocks[2] = tampered
    with pytest.raises(ChainViolation):
        chain.validate()


def test_block_hash_covers_contents():
    one = Block(sequence=1, digest="d", view=0, proposer="r0", txn_count=10)
    two = Block(sequence=1, digest="d2", view=0, proposer="r0", txn_count=10)
    assert one.block_hash() != two.block_hash()
    assert one.block_hash() == Block(
        sequence=1, digest="d", view=0, proposer="r0", txn_count=10
    ).block_hash()


# ----------------------------------------------------------------------
# pruning (checkpoint GC)
# ----------------------------------------------------------------------
def test_prune_keeps_genesis_and_recent():
    chain = Blockchain("r0", quorum_size=3)
    for _ in range(10):
        chain.append(linked_block(chain))
    dropped = chain.prune_before(8)
    assert dropped == 7  # blocks 1..7
    assert chain.get(0) is not None
    assert chain.get(7) is None
    assert chain.get(8) is not None
    assert chain.height == 10


def test_append_after_prune_still_works():
    chain = Blockchain("r0", quorum_size=3)
    for _ in range(5):
        chain.append(linked_block(chain))
    chain.prune_before(5)
    chain.append(linked_block(chain))
    assert chain.height == 6
