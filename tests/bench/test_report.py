"""Tests for the bench harness: result containers, tables, base config."""

import pytest

from repro.bench import FigureResult, Series, SeriesPoint, run_config
from repro.bench.runner import base_config
from repro.sim.clock import millis


def make_figure():
    series = Series("PBFT")
    series.points = [
        SeriesPoint(x=4, throughput_txns_per_s=100_000.0, latency_s=0.1),
        SeriesPoint(x=16, throughput_txns_per_s=150_000.0, latency_s=0.2),
    ]
    return FigureResult("fig-test", "a test figure", "replicas", [series])


def test_series_accessors():
    figure = make_figure()
    series = figure.get("PBFT")
    assert series.xs() == [4, 16]
    assert series.throughputs() == [100_000.0, 150_000.0]
    assert series.latencies() == [0.1, 0.2]


def test_get_unknown_series_raises():
    figure = make_figure()
    with pytest.raises(KeyError):
        figure.get("ghost")


def test_format_table_contains_everything():
    figure = make_figure()
    figure.note("shape holds")
    table = figure.format_table()
    assert "fig-test" in table
    assert "100.0K" in table and "150.0K" in table
    assert "0.1000" in table and "0.2000" in table
    assert "note: shape holds" in table
    assert "replicas" in table


def test_base_config_defaults_match_paper_regime():
    config = base_config()
    assert config.num_replicas == 16
    assert config.batch_size == 100
    assert config.protocol == "pbft"
    # fidelity knobs that cost host CPU are off for benches
    assert not config.real_auth_tokens
    assert not config.apply_state


def test_base_config_overrides():
    config = base_config(num_replicas=32, protocol="zyzzyva")
    assert config.num_replicas == 32
    assert config.protocol == "zyzzyva"


def test_run_config_executes_and_closes():
    config = base_config(
        num_replicas=4,
        num_clients=64,
        client_groups=4,
        batch_size=8,
        ycsb_records=500,
        warmup=millis(30),
        measure=millis(60),
    )
    result = run_config(config)
    assert result.completed_requests > 0


def test_run_config_with_crashes():
    config = base_config(
        num_replicas=4,
        num_clients=64,
        client_groups=4,
        batch_size=8,
        ycsb_records=500,
        warmup=millis(30),
        measure=millis(60),
    )
    result = run_config(config, crash_backups=1)
    assert result.completed_requests > 0


def test_cumulative_saturation_sums_stages():
    from repro.core.system import ExperimentResult

    result = ExperimentResult(
        throughput_txns_per_s=0,
        throughput_ops_per_s=0,
        latency_mean_s=0,
        latency_p50_s=0,
        latency_p99_s=0,
        latency_max_s=0,
        completed_requests=0,
        completed_txns=0,
        primary_saturation={"worker": 0.5, "batch-0": 0.9},
        backup_saturation={"worker": 0.25},
    )
    assert result.cumulative_saturation("primary") == pytest.approx(1.4)
    assert result.cumulative_saturation("backup") == pytest.approx(0.25)
