"""Figure 16: replicas on 1/2/4/8-core machines.

Paper claims: the multi-threaded pipeline needs its cores — 8-core
machines deliver 8.92× the throughput of 1-core machines.
"""

from repro.bench import fig16_cores


def test_fig16_cores(benchmark, record_figure):
    figure = benchmark.pedantic(fig16_cores, rounds=1, iterations=1)
    record_figure(figure)
    series = figure.get("PBFT 2B 1E")
    throughputs = dict(zip(series.xs(), series.throughputs()))
    # shape: monotone in cores
    assert throughputs[1] < throughputs[2] < throughputs[4] <= throughputs[8]
    # scale: multi-core gain is substantial.  The paper reports 8.92x; a
    # work-conserving model bounds the gain by (total pipeline CPU per
    # batch) / (bottleneck stage share) ≈ 3x given the paper's own Fig. 9
    # saturation numbers — see EXPERIMENTS.md.
    assert throughputs[8] / max(1.0, throughputs[1]) > 2.2
