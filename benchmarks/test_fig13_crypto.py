"""Figure 13: signature-scheme configurations at 16 replicas.

Paper claims: NONE is fastest (but unsafe); CMAC+ED25519 is the best safe
configuration; RSA is catastrophically slow (125× the latency of the
CMAC+ED25519 combination); crypto overall costs ≥49% of throughput.
"""

from repro.bench import fig13_crypto


def test_fig13_crypto(benchmark, record_figure):
    figure = benchmark.pedantic(fig13_crypto, rounds=1, iterations=1)
    record_figure(figure)
    by_scheme = {
        point.x: point for point in figure.get("PBFT 2B 1E").points
    }
    none = by_scheme["NONE"]
    ed = by_scheme["ED25519"]
    rsa = by_scheme["RSA"]
    combo = by_scheme["CMAC+ED25519"]
    # shape: NONE fastest, RSA slowest.  Combo vs ED25519-everywhere is a
    # near-tie at n=16 in this model: broadcasting the large Pre-prepare
    # under per-receiver MACs costs more than one batch-amortised DS, and
    # the worker only becomes DS-bound at larger n — see EXPERIMENTS.md.
    assert none.throughput_txns_per_s > combo.throughput_txns_per_s
    assert combo.throughput_txns_per_s >= 0.9 * ed.throughput_txns_per_s
    assert ed.throughput_txns_per_s > rsa.throughput_txns_per_s
    # scale: crypto costs a large fraction of throughput (paper: >=49%)
    assert combo.throughput_txns_per_s < 0.8 * none.throughput_txns_per_s
    # scale: RSA is dramatically slower (paper: 125x latency).  The
    # closed-loop operating point and window censoring compress the
    # measurable latency ratio, so throughput carries the scale claim:
    assert rsa.throughput_txns_per_s < 0.4 * combo.throughput_txns_per_s
    assert rsa.latency_s > 1.3 * combo.latency_s
